//! MinHash / LSH blocking: sub-quadratic candidate generation for
//! set-similar records, the locality-sensitive-hashing answer the
//! tutorial's scaling section points to when no identifier exists.
//!
//! Each record's title-token set is sketched with `bands × rows` min-wise
//! hashes; records colliding on any full band become candidates. The
//! collision probability of a pair with Jaccard similarity `s` is
//! `1 − (1 − s^rows)^bands` — an S-curve whose threshold is tuned by the
//! band/row split.

use super::Blocker;
use crate::pair::{dedup_pairs, Pair};
use bdi_types::{Dataset, RecordId};
use std::collections::HashMap;

/// MinHash-LSH blocker over title tokens.
#[derive(Clone, Copy, Debug)]
pub struct MinHashBlocking {
    /// Number of bands (each band is one hash table).
    pub bands: usize,
    /// Rows (hash functions) per band.
    pub rows: usize,
    /// Seed for the hash family.
    pub seed: u64,
    /// Drop LSH buckets larger than this (stop-bucket guard).
    pub max_bucket: usize,
}

impl MinHashBlocking {
    /// A sensible default: 8 bands × 4 rows ⇒ the S-curve midpoint sits
    /// near Jaccard 0.5.
    pub fn new(bands: usize, rows: usize) -> Self {
        assert!(bands >= 1 && rows >= 1, "bands and rows must be >= 1");
        Self {
            bands,
            rows,
            seed: 0x5EED_CAFE,
            max_bucket: 200,
        }
    }

    /// The collision probability of a pair at Jaccard similarity `s`.
    pub fn collision_probability(&self, s: f64) -> f64 {
        1.0 - (1.0 - s.powi(self.rows as i32)).powi(self.bands as i32)
    }

    /// MinHash signature of a token set.
    fn signature(&self, tokens: &[String]) -> Vec<u64> {
        let k = self.bands * self.rows;
        let mut sig = vec![u64::MAX; k];
        for t in tokens {
            let base = fxhash(t.as_bytes(), self.seed);
            for (i, slot) in sig.iter_mut().enumerate() {
                // cheap per-function mixing of one strong base hash
                let h = base
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15u64.wrapping_add((i as u64) << 1))
                    .rotate_left((i % 63) as u32 + 1);
                if h < *slot {
                    *slot = h;
                }
            }
        }
        sig
    }
}

/// FNV-style byte hash with seed.
fn fxhash(bytes: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    // final avalanche
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 33;
    h
}

impl Blocker for MinHashBlocking {
    fn candidates(&self, ds: &Dataset) -> Vec<Pair> {
        let records = ds.records();
        // band index -> bucket key -> record ids
        let mut tables: Vec<HashMap<u64, Vec<RecordId>>> =
            (0..self.bands).map(|_| HashMap::new()).collect();
        for r in records {
            let mut tokens = bdi_textsim::tokenize(&r.title);
            tokens.sort_unstable();
            tokens.dedup();
            if tokens.is_empty() {
                continue;
            }
            let sig = self.signature(&tokens);
            for (b, table) in tables.iter_mut().enumerate() {
                let band = &sig[b * self.rows..(b + 1) * self.rows];
                let mut key = 0xcbf29ce484222325u64 ^ (b as u64);
                for &v in band {
                    key = (key ^ v).wrapping_mul(0x100000001b3);
                }
                table.entry(key).or_default().push(r.id);
            }
        }
        let mut out = Vec::new();
        for table in &tables {
            for bucket in table.values() {
                if bucket.len() < 2 || bucket.len() > self.max_bucket {
                    continue;
                }
                for i in 0..bucket.len() {
                    for j in (i + 1)..bucket.len() {
                        if bucket[i].source != bucket[j].source {
                            out.push(Pair::new(bucket[i], bucket[j]));
                        }
                    }
                }
            }
        }
        dedup_pairs(&mut out);
        out
    }

    fn name(&self) -> &'static str {
        "minhash-lsh"
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::tiny_dataset;
    use super::super::{AllPairs, Blocker};
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn similar_titles_collide() {
        let ds = tiny_dataset();
        let pairs = MinHashBlocking::new(8, 2).candidates(&ds);
        // LX-100 titles share most tokens -> should be candidates
        assert!(
            pairs.iter().any(|p| p.lo.seq == 0 && p.hi.seq == 0),
            "LX-100 pair missing: {pairs:?}"
        );
    }

    #[test]
    fn subset_of_all_pairs_and_cross_source() {
        let ds = tiny_dataset();
        let all: std::collections::HashSet<_> = AllPairs.candidates(&ds).into_iter().collect();
        for p in MinHashBlocking::new(8, 3).candidates(&ds) {
            assert!(all.contains(&p));
            assert!(!p.same_source());
        }
    }

    #[test]
    fn more_rows_fewer_candidates() {
        let ds = tiny_dataset();
        let loose = MinHashBlocking::new(8, 1).candidates(&ds).len();
        let strict = MinHashBlocking::new(8, 6).candidates(&ds).len();
        assert!(strict <= loose, "strict {strict} > loose {loose}");
    }

    #[test]
    fn collision_curve_is_s_shaped() {
        let b = MinHashBlocking::new(8, 4);
        assert!(b.collision_probability(0.0) < 1e-9);
        assert!((b.collision_probability(1.0) - 1.0).abs() < 1e-9);
        assert!(b.collision_probability(0.8) > b.collision_probability(0.3));
    }

    #[test]
    fn deterministic() {
        let ds = tiny_dataset();
        let b = MinHashBlocking::new(6, 3);
        assert_eq!(b.candidates(&ds), b.candidates(&ds));
    }

    #[test]
    #[should_panic(expected = "bands and rows")]
    fn zero_bands_rejected() {
        MinHashBlocking::new(0, 3);
    }

    proptest! {
        #[test]
        fn signature_length_is_bands_times_rows(bands in 1usize..6, rows in 1usize..6) {
            let b = MinHashBlocking::new(bands, rows);
            let sig = b.signature(&["alpha".into(), "beta".into()]);
            prop_assert_eq!(sig.len(), bands * rows);
        }

        #[test]
        fn identical_token_sets_identical_signatures(tokens in proptest::collection::vec("[a-z]{2,6}", 1..8)) {
            let b = MinHashBlocking::new(4, 4);
            prop_assert_eq!(b.signature(&tokens), b.signature(&tokens));
        }

        #[test]
        fn collision_probability_monotone(s1 in 0.0f64..1.0, s2 in 0.0f64..1.0) {
            let b = MinHashBlocking::new(8, 4);
            let (lo, hi) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
            prop_assert!(b.collision_probability(lo) <= b.collision_probability(hi) + 1e-12);
        }
    }
}
