//! Q-gram blocking: typo-tolerant candidate generation.

use super::{pairs_from_blocks, Blocker};
use crate::pair::Pair;
use bdi_types::{Dataset, RecordId};
use std::collections::HashMap;

/// Index records by the character q-grams of their identifier (or title
/// when no identifier is present). Two records sharing at least
/// `min_shared` grams become candidates.
///
/// Tolerates single-character identifier typos that defeat exact-key
/// blocking, at the price of more candidates.
#[derive(Clone, Copy, Debug)]
pub struct QGramBlocking {
    /// Gram length (2 or 3 typical).
    pub q: usize,
    /// Minimum number of shared grams to become a candidate pair.
    pub min_shared: usize,
    /// Drop grams indexing more than this many records (stop-grams).
    pub max_postings: usize,
}

impl QGramBlocking {
    /// Sensible defaults: trigrams, ≥ 3 shared, stop-gram cap 200.
    pub fn new(q: usize) -> Self {
        assert!(q >= 1, "q must be >= 1");
        Self {
            q,
            min_shared: 3,
            max_postings: 200,
        }
    }

    fn record_text(r: &bdi_types::Record) -> String {
        match r.primary_identifier() {
            Some(id) => super::normalize_identifier(id),
            None => bdi_textsim::normalize(&r.title).replace(' ', ""),
        }
    }
}

impl Blocker for QGramBlocking {
    fn candidates(&self, ds: &Dataset) -> Vec<Pair> {
        // inverted index gram -> records
        let mut index: HashMap<String, Vec<RecordId>> = HashMap::new();
        for r in ds.records() {
            let text = Self::record_text(r);
            let mut grams = bdi_textsim::qgrams(&text, self.q);
            grams.sort_unstable();
            grams.dedup();
            for g in grams {
                index.entry(g).or_default().push(r.id);
            }
        }
        // count shared grams per pair
        let mut shared: HashMap<Pair, usize> = HashMap::new();
        for postings in index.values() {
            if postings.len() < 2 || postings.len() > self.max_postings {
                continue;
            }
            for i in 0..postings.len() {
                for j in (i + 1)..postings.len() {
                    if postings[i].source != postings[j].source {
                        *shared
                            .entry(Pair::new(postings[i], postings[j]))
                            .or_insert(0) += 1;
                    }
                }
            }
        }
        let mut out: Vec<Pair> = shared
            .into_iter()
            .filter_map(|(p, c)| (c >= self.min_shared).then_some(p))
            .collect();
        out.sort_unstable();
        out
    }

    fn name(&self) -> &'static str {
        "qgram"
    }
}

/// Exposed for meta-blocking experiments: the gram blocks themselves.
pub fn qgram_blocks(ds: &Dataset, q: usize, max_postings: usize) -> Vec<Vec<RecordId>> {
    let mut index: HashMap<String, Vec<RecordId>> = HashMap::new();
    for r in ds.records() {
        let text = QGramBlocking::record_text(r);
        let mut grams = bdi_textsim::qgrams(&text, q);
        grams.sort_unstable();
        grams.dedup();
        for g in grams {
            index.entry(g).or_default().push(r.id);
        }
    }
    let mut blocks: Vec<Vec<RecordId>> = index
        .into_values()
        .filter(|b| b.len() >= 2 && b.len() <= max_postings)
        .collect();
    blocks.sort_unstable();
    blocks
}

/// Convenience: pairs from q-gram blocks without the shared-gram minimum
/// (for comparing pruning schemes).
pub fn qgram_pairs_unpruned(ds: &Dataset, q: usize, max_postings: usize) -> Vec<Pair> {
    pairs_from_blocks(&qgram_blocks(ds, q, max_postings))
}

#[cfg(test)]
mod tests {
    use super::super::tests::tiny_dataset;
    use super::*;
    use bdi_types::{Record, Source, SourceId, SourceKind};

    #[test]
    fn typo_tolerant() {
        let mut ds = Dataset::new();
        ds.add_source(Source::new(SourceId(0), "a", SourceKind::Tail));
        ds.add_source(Source::new(SourceId(1), "b", SourceKind::Tail));
        let mut r0 = Record::new(RecordId::new(SourceId(0), 0), "x");
        r0.identifiers.push("CAM-LUM-01042".into());
        let mut r1 = Record::new(RecordId::new(SourceId(1), 0), "y");
        r1.identifiers.push("CAM-LUM-01043".into()); // one char differs
        ds.add_record(r0).unwrap();
        ds.add_record(r1).unwrap();
        let pairs = QGramBlocking::new(3).candidates(&ds);
        assert_eq!(pairs.len(), 1, "near-identical ids must pair");
    }

    #[test]
    fn min_shared_prunes_weak_pairs() {
        let ds = tiny_dataset();
        let loose = QGramBlocking {
            q: 3,
            min_shared: 1,
            max_postings: 200,
        }
        .candidates(&ds);
        let strict = QGramBlocking {
            q: 3,
            min_shared: 6,
            max_postings: 200,
        }
        .candidates(&ds);
        assert!(strict.len() <= loose.len());
    }

    #[test]
    fn cross_source_only() {
        let ds = tiny_dataset();
        for p in QGramBlocking::new(2).candidates(&ds) {
            assert!(!p.same_source());
        }
    }

    #[test]
    fn blocks_exposed_for_meta() {
        let ds = tiny_dataset();
        let blocks = qgram_blocks(&ds, 3, 200);
        assert!(!blocks.is_empty());
        assert!(blocks.iter().all(|b| b.len() >= 2));
    }
}
