//! Sorted-neighborhood blocking.

use super::Blocker;
use crate::pair::{dedup_pairs, Pair};
use bdi_types::{Dataset, Record};

/// Sorted-neighborhood method: sort all records by a sorting key, slide a
/// window of size `w`, and emit every cross-source pair inside the window.
///
/// Candidate count is `O(n·w)` regardless of key distribution — the
/// selling point over hash blocking when keys are noisy: near-equal keys
/// end up adjacent even when not byte-equal.
#[derive(Clone, Copy, Debug)]
pub struct SortedNeighborhood {
    /// Window size (≥ 2).
    pub window: usize,
}

impl SortedNeighborhood {
    /// Create with the given window.
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "window must be >= 2");
        Self { window }
    }

    /// The sorting key: normalized primary identifier when present
    /// (digit-run first so format variants sort together), else the
    /// normalized title.
    pub fn sort_key(r: &Record) -> String {
        match r.primary_identifier() {
            Some(id) => match super::longest_digit_run(id) {
                Some(d) => format!("{d}#{}", super::normalize_identifier(id)),
                None => super::normalize_identifier(id),
            },
            None => bdi_textsim::normalize(&r.title),
        }
    }
}

impl Blocker for SortedNeighborhood {
    fn candidates(&self, ds: &Dataset) -> Vec<Pair> {
        let mut keyed: Vec<(String, bdi_types::RecordId)> = ds
            .records()
            .iter()
            .map(|r| (Self::sort_key(r), r.id))
            .collect();
        keyed.sort();
        let mut out = Vec::new();
        for i in 0..keyed.len() {
            for j in (i + 1)..(i + self.window).min(keyed.len()) {
                let (a, b) = (keyed[i].1, keyed[j].1);
                if a.source != b.source {
                    out.push(Pair::new(a, b));
                }
            }
        }
        dedup_pairs(&mut out);
        out
    }

    fn name(&self) -> &'static str {
        "sorted-neighborhood"
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::tiny_dataset;
    use super::super::{AllPairs, Blocker};
    use super::*;

    #[test]
    fn window_bounds_candidates() {
        let ds = tiny_dataset();
        let n = ds.len();
        let w = 2;
        let pairs = SortedNeighborhood::new(w).candidates(&ds);
        assert!(pairs.len() <= n * (w - 1));
    }

    #[test]
    fn adjacent_ids_pair_up() {
        let ds = tiny_dataset();
        let pairs = SortedNeighborhood::new(3).candidates(&ds);
        // LX-100 records share the digit prefix "00100", so at least one
        // cross-source LX-100 pair must be adjacent in sort order
        let has_lx = pairs.iter().any(|p| {
            let (a, b) = p.members();
            a.seq == 0 && b.seq == 0
        });
        assert!(has_lx, "{pairs:?}");
    }

    #[test]
    fn large_window_approaches_all_pairs() {
        let ds = tiny_dataset();
        let all = AllPairs.candidates(&ds).len();
        let wide = SortedNeighborhood::new(ds.len()).candidates(&ds).len();
        assert_eq!(wide, all);
    }

    #[test]
    #[should_panic(expected = "window must be >= 2")]
    fn tiny_window_rejected() {
        SortedNeighborhood::new(1);
    }
}
