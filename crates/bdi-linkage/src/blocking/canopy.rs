//! Canopy clustering blocking (McCallum-Nigam-Ungar style).

use super::Blocker;
use crate::pair::{dedup_pairs, Pair};
use bdi_types::{Dataset, RecordId};
use std::collections::{HashMap, HashSet};

/// Canopy blocking: repeatedly pick an unprocessed record as a canopy
/// center; every record whose *cheap* similarity to the center exceeds
/// `t_loose` joins the canopy (and pairs with its members); records above
/// `t_tight` are removed from further consideration as centers.
///
/// The cheap similarity is token-overlap over title tokens, evaluated via
/// an inverted index so each canopy touches only records sharing ≥ 1
/// token with the center.
#[derive(Clone, Copy, Debug)]
pub struct CanopyBlocking {
    /// Loose threshold (canopy membership). Must be ≤ `t_tight`.
    pub t_loose: f64,
    /// Tight threshold (center removal).
    pub t_tight: f64,
}

impl CanopyBlocking {
    /// Create with validation.
    pub fn new(t_loose: f64, t_tight: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&t_loose) && (0.0..=1.0).contains(&t_tight),
            "thresholds must be in [0,1]"
        );
        assert!(t_loose <= t_tight, "need t_loose <= t_tight");
        Self { t_loose, t_tight }
    }
}

impl Blocker for CanopyBlocking {
    fn candidates(&self, ds: &Dataset) -> Vec<Pair> {
        let recs = ds.records();
        // tokenize once
        let tokens: Vec<Vec<String>> = recs
            .iter()
            .map(|r| {
                let mut t = bdi_textsim::tokenize(&r.title);
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        // inverted index token -> record indices
        let mut index: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, ts) in tokens.iter().enumerate() {
            for t in ts {
                index.entry(t.as_str()).or_default().push(i);
            }
        }
        let mut removed: HashSet<usize> = HashSet::new();
        let mut out: Vec<Pair> = Vec::new();
        for center in 0..recs.len() {
            if removed.contains(&center) {
                continue;
            }
            // gather candidates sharing >= 1 token with the center
            let mut cand: HashSet<usize> = HashSet::new();
            for t in &tokens[center] {
                if let Some(posting) = index.get(t.as_str()) {
                    cand.extend(posting.iter().copied());
                }
            }
            cand.remove(&center);
            let mut members: Vec<RecordId> = vec![recs[center].id];
            for &j in &cand {
                if removed.contains(&j) {
                    continue;
                }
                let sim = bdi_textsim::jaccard_sim(&tokens[center], &tokens[j]);
                if sim >= self.t_loose {
                    members.push(recs[j].id);
                    if sim >= self.t_tight {
                        removed.insert(j);
                    }
                }
            }
            removed.insert(center);
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    if members[i].source != members[j].source {
                        out.push(Pair::new(members[i], members[j]));
                    }
                }
            }
        }
        dedup_pairs(&mut out);
        out
    }

    fn name(&self) -> &'static str {
        "canopy"
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::tiny_dataset;
    use super::super::{AllPairs, Blocker};
    use super::*;

    #[test]
    fn finds_similar_titles() {
        let ds = tiny_dataset();
        let pairs = CanopyBlocking::new(0.3, 0.7).candidates(&ds);
        // LX-100 titles share most tokens
        assert!(
            pairs.iter().any(|p| p.lo.seq == 0 && p.hi.seq == 0),
            "LX-100 canopy missing: {pairs:?}"
        );
    }

    #[test]
    fn loose_zero_covers_token_sharers() {
        let ds = tiny_dataset();
        let all = AllPairs.candidates(&ds).len();
        let loose = CanopyBlocking::new(0.0, 1.0).candidates(&ds).len();
        // with t_loose 0 every token-sharing pair is a candidate; tiny
        // dataset titles all share "camera"-ish tokens except some
        assert!(loose <= all);
        assert!(loose > 0);
    }

    #[test]
    fn tight_threshold_reduces_candidates() {
        let ds = tiny_dataset();
        let few = CanopyBlocking::new(0.8, 0.8).candidates(&ds).len();
        let many = CanopyBlocking::new(0.1, 1.0).candidates(&ds).len();
        assert!(few <= many);
    }

    #[test]
    #[should_panic(expected = "t_loose <= t_tight")]
    fn inverted_thresholds_rejected() {
        CanopyBlocking::new(0.9, 0.1);
    }
}
