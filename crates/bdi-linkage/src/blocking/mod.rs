//! Candidate generation: comparing every record to every other is O(n²)
//! and dead on arrival at web scale, so every linkage run starts by
//! *blocking* — cheaply grouping records so that only within-group pairs
//! are ever scored.
//!
//! All blockers produce deduplicated **cross-source** pairs (a source
//! publishes each product once, so same-source pairs are non-matches by
//! assumption). Quality is measured by pair completeness (recall of true
//! pairs) and reduction ratio (fraction of the all-pairs budget avoided) —
//! see [`crate::eval`].

pub mod canopy;
pub mod meta;
pub mod minhash;
pub mod qgram;
pub mod sorted_neighborhood;
pub mod standard;

pub use canopy::CanopyBlocking;
pub use meta::MetaBlocking;
pub use minhash::MinHashBlocking;
pub use qgram::QGramBlocking;
pub use sorted_neighborhood::SortedNeighborhood;
pub use standard::StandardBlocking;

use crate::pair::{dedup_pairs, Pair};
use bdi_types::{Dataset, Record, RecordId};
use std::collections::HashMap;

/// A candidate-pair generator.
pub trait Blocker {
    /// Produce deduplicated cross-source candidate pairs.
    fn candidates(&self, ds: &Dataset) -> Vec<Pair>;
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The no-blocking baseline: every cross-source pair.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllPairs;

impl Blocker for AllPairs {
    fn candidates(&self, ds: &Dataset) -> Vec<Pair> {
        let recs = ds.records();
        let mut out = Vec::new();
        for i in 0..recs.len() {
            for j in (i + 1)..recs.len() {
                if recs[i].id.source != recs[j].id.source {
                    out.push(Pair::new(recs[i].id, recs[j].id));
                }
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "all-pairs"
    }
}

/// How a blocker derives keys from a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockingKey {
    /// Normalized product identifiers (uppercased, non-alphanumerics
    /// stripped) — the "products are named entities" opportunity.
    Identifier,
    /// The longest digit run of each identifier — robust to the
    /// dash-dropping / reshuffling formatting variants sources apply.
    IdentifierDigits,
    /// Every title token of length ≥ 3.
    TitleTokens,
    /// Soundex code of the first title token (brand-phonetic blocking).
    TitleSoundex,
}

impl BlockingKey {
    /// Extract this key's values from a record.
    pub fn keys(&self, r: &Record) -> Vec<String> {
        match self {
            BlockingKey::Identifier => r
                .identifiers
                .iter()
                .map(|s| normalize_identifier(s))
                .collect(),
            BlockingKey::IdentifierDigits => r
                .identifiers
                .iter()
                .filter_map(|s| longest_digit_run(s))
                .collect(),
            BlockingKey::TitleTokens => bdi_textsim::tokenize(&r.title)
                .into_iter()
                .filter(|t| t.len() >= 3)
                .collect(),
            BlockingKey::TitleSoundex => bdi_textsim::soundex(&r.title).into_iter().collect(),
        }
    }

    /// [`Self::keys`] from a precomputed fingerprint: the same key
    /// *set* (callers sort + dedup anyway; `TitleTokens` comes back
    /// presorted and deduplicated here), with no tokenization or
    /// normalization — the fingerprint already holds every key form.
    pub fn keys_fp(&self, fp: &crate::fingerprint::RecordFingerprint) -> Vec<String> {
        match self {
            BlockingKey::Identifier => fp.ids_norm.clone(),
            BlockingKey::IdentifierDigits => fp.id_digits.clone(),
            BlockingKey::TitleTokens => fp
                .title_token_set
                .iter()
                .filter(|t| t.len() >= 3)
                .cloned()
                .collect(),
            BlockingKey::TitleSoundex => fp.title_soundex.iter().cloned().collect(),
        }
    }
}

/// Uppercase and strip non-alphanumerics: `cam-lum-01042` → `CAMLUM01042`.
pub fn normalize_identifier(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .map(|c| c.to_ascii_uppercase())
        .collect()
}

/// The longest maximal run of ASCII digits in `s`, if any.
pub fn longest_digit_run(s: &str) -> Option<String> {
    let mut best: Option<&str> = None;
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let run = &s[start..i];
            if best.is_none_or(|b| run.len() > b.len()) {
                best = Some(run);
            }
        } else {
            i += 1;
        }
    }
    best.map(str::to_string)
}

/// Group records into blocks by key. Blocks larger than `max_block_size`
/// are dropped entirely (they are stop-word blocks: enormous cost, almost
/// no signal).
pub fn blocks_by_key(ds: &Dataset, key: BlockingKey, max_block_size: usize) -> Vec<Vec<RecordId>> {
    let mut map: HashMap<String, Vec<RecordId>> = HashMap::new();
    for r in ds.records() {
        let mut ks = key.keys(r);
        ks.sort_unstable();
        ks.dedup();
        for k in ks {
            if k.is_empty() {
                continue;
            }
            map.entry(k).or_default().push(r.id);
        }
    }
    let mut blocks: Vec<Vec<RecordId>> = map
        .into_values()
        .filter(|b| b.len() >= 2 && b.len() <= max_block_size)
        .collect();
    // deterministic order for reproducible candidate lists
    blocks.sort_unstable();
    blocks
}

/// Expand blocks into deduplicated cross-source pairs.
pub fn pairs_from_blocks(blocks: &[Vec<RecordId>]) -> Vec<Pair> {
    let mut out = Vec::new();
    for b in blocks {
        for i in 0..b.len() {
            for j in (i + 1)..b.len() {
                if b[i].source != b[j].source {
                    out.push(Pair::new(b[i], b[j]));
                }
            }
        }
    }
    dedup_pairs(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_types::{Record, RecordId, Source, SourceId, SourceKind};

    pub(crate) fn tiny_dataset() -> Dataset {
        let mut ds = Dataset::new();
        for s in 0..3u32 {
            ds.add_source(Source::new(SourceId(s), format!("s{s}"), SourceKind::Tail));
        }
        let mk = |s: u32, q: u32, title: &str, id: Option<&str>| {
            let mut r = Record::new(RecordId::new(SourceId(s), q), title);
            if let Some(i) = id {
                r.identifiers.push(i.to_string());
            }
            r
        };
        ds.add_record(mk(0, 0, "Lumetra LX-100 camera", Some("CAM-LUM-00100")))
            .unwrap();
        ds.add_record(mk(1, 0, "Lumetra LX-100", Some("camlum00100")))
            .unwrap();
        ds.add_record(mk(2, 0, "camera LX-100 by Lumetra", Some("00100-LUM")))
            .unwrap();
        ds.add_record(mk(0, 1, "Fotonix F-200 camera", Some("CAM-FOT-00200")))
            .unwrap();
        ds.add_record(mk(1, 1, "Fotonix F-200", None)).unwrap();
        ds
    }

    #[test]
    fn all_pairs_excludes_same_source() {
        let ds = tiny_dataset();
        let pairs = AllPairs.candidates(&ds);
        // 5 records -> 10 pairs, minus same-source (0,0)-(0,1) and (1,0)-(1,1)
        assert_eq!(pairs.len(), 8);
        assert!(pairs.iter().all(|p| !p.same_source()));
    }

    #[test]
    fn identifier_normalization() {
        assert_eq!(normalize_identifier("cam-lum-01042"), "CAMLUM01042");
        assert_eq!(normalize_identifier("CAMLUM01042"), "CAMLUM01042");
        assert_eq!(normalize_identifier("--"), "");
    }

    #[test]
    fn digit_run_extraction() {
        assert_eq!(longest_digit_run("CAM-LUM-01042").as_deref(), Some("01042"));
        assert_eq!(longest_digit_run("a1b22c333").as_deref(), Some("333"));
        assert_eq!(longest_digit_run("abc"), None);
    }

    #[test]
    fn digit_key_bridges_format_variants() {
        let ds = tiny_dataset();
        let blocks = blocks_by_key(&ds, BlockingKey::IdentifierDigits, 50);
        // all three LX-100 records share the "00100" digit run (and the
        // two Fotonix ones "00200", but one has no id)
        let big = blocks.iter().find(|b| b.len() == 3).expect("LX-100 block");
        assert_eq!(big.len(), 3);
    }

    #[test]
    fn oversized_blocks_dropped() {
        let ds = tiny_dataset();
        let blocks = blocks_by_key(&ds, BlockingKey::TitleTokens, 2);
        for b in &blocks {
            assert!(b.len() <= 2);
        }
    }

    #[test]
    fn pairs_from_blocks_dedups_cross_source() {
        let ds = tiny_dataset();
        let blocks = blocks_by_key(&ds, BlockingKey::TitleTokens, 50);
        let pairs = pairs_from_blocks(&blocks);
        let mut seen = std::collections::HashSet::new();
        for p in &pairs {
            assert!(!p.same_source());
            assert!(seen.insert(*p), "duplicate pair {p:?}");
        }
    }

    #[test]
    fn soundex_key_present() {
        let ds = tiny_dataset();
        let r = &ds.records()[0];
        let ks = BlockingKey::TitleSoundex.keys(r);
        assert_eq!(ks.len(), 1);
        assert_eq!(ks[0].len(), 4);
    }
}
