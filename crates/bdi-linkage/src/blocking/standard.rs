//! Standard (key-equality) blocking.

use super::{blocks_by_key, pairs_from_blocks, Blocker, BlockingKey};
use crate::pair::Pair;
use bdi_types::Dataset;

/// Classic hash blocking: records sharing a key land in one block; only
/// within-block pairs become candidates.
///
/// With [`BlockingKey::Identifier`]-family keys this is the
/// identifier-driven blocking the product domain makes possible — near
/// perfect precision of candidates at a tiny fraction of the all-pairs
/// cost.
#[derive(Clone, Copy, Debug)]
pub struct StandardBlocking {
    /// Key extractor.
    pub key: BlockingKey,
    /// Blocks larger than this are dropped (stop-word guard).
    pub max_block_size: usize,
}

impl StandardBlocking {
    /// Identifier-digit blocking with a sane block cap — the recommended
    /// default for product records.
    pub fn identifier() -> Self {
        Self {
            key: BlockingKey::IdentifierDigits,
            max_block_size: 100,
        }
    }

    /// Title-token blocking — the fallback when identifiers are missing.
    pub fn title() -> Self {
        Self {
            key: BlockingKey::TitleTokens,
            max_block_size: 200,
        }
    }

    /// The raw blocks (used by meta-blocking).
    pub fn blocks(&self, ds: &Dataset) -> Vec<Vec<bdi_types::RecordId>> {
        blocks_by_key(ds, self.key, self.max_block_size)
    }
}

impl Blocker for StandardBlocking {
    fn candidates(&self, ds: &Dataset) -> Vec<Pair> {
        pairs_from_blocks(&self.blocks(ds))
    }

    fn name(&self) -> &'static str {
        match self.key {
            BlockingKey::Identifier => "standard(identifier)",
            BlockingKey::IdentifierDigits => "standard(id-digits)",
            BlockingKey::TitleTokens => "standard(title-tokens)",
            BlockingKey::TitleSoundex => "standard(soundex)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::tiny_dataset;
    use super::*;

    #[test]
    fn identifier_blocking_finds_format_variants() {
        let ds = tiny_dataset();
        let pairs = StandardBlocking::identifier().candidates(&ds);
        // the three LX-100 variants pair with each other: 3 pairs
        assert!(pairs.len() >= 3, "got {pairs:?}");
    }

    #[test]
    fn title_blocking_recovers_id_less_records() {
        let ds = tiny_dataset();
        let id_pairs = StandardBlocking::identifier().candidates(&ds);
        let title_pairs = StandardBlocking::title().candidates(&ds);
        // the Fotonix record without identifier can only pair via title
        let f_pair_in_titles = title_pairs.iter().any(|p| {
            let (a, b) = p.members();
            (a.seq == 1) && (b.seq == 1)
        });
        assert!(f_pair_in_titles);
        let f_pair_in_ids = id_pairs.iter().any(|p| {
            let (a, b) = p.members();
            (a.seq == 1) && (b.seq == 1)
        });
        assert!(!f_pair_in_ids);
    }

    #[test]
    fn fewer_candidates_than_all_pairs() {
        let ds = tiny_dataset();
        let all = super::super::AllPairs.candidates(&ds).len();
        let blocked = StandardBlocking::identifier().candidates(&ds).len();
        assert!(blocked < all);
    }
}
