//! From pairwise match decisions to entity clusters.
//!
//! Pairwise matchers are noisy and their decisions need not be
//! transitive; a clustering step resolves the conflicts. Three standard
//! strategies with different noise behaviour (experiment E11):
//!
//! * [`transitive`] — union-find closure: cheap, but one false positive
//!   edge merges two whole entities (over-merge under noise).
//! * [`center`] — CENTER clustering: each cluster grows around the
//!   highest-scoring node, resisting chain merges.
//! * [`correlation`] — greedy pivot correlation clustering: approximates
//!   minimizing disagreement with the pairwise evidence.
//! * [`swoosh`] — R-Swoosh generic match-merge ER: merged records carry
//!   unioned evidence and can match what no member could alone.

pub mod center;
pub mod correlation;
pub mod swoosh;
pub mod transitive;
pub mod union_find;

pub use center::center_clustering;
pub use correlation::correlation_clustering;
pub use swoosh::{merge_records, r_swoosh, SwooshResult};
pub use transitive::transitive_closure;
pub use union_find::UnionFind;

use bdi_types::RecordId;
use std::collections::HashMap;

/// A partition of records into entity clusters.
#[derive(Clone, Debug, Default)]
pub struct Clustering {
    clusters: Vec<Vec<RecordId>>,
    assignment: HashMap<RecordId, usize>,
}

impl Clustering {
    /// Build from explicit clusters. Records may appear at most once;
    /// empty clusters are dropped; members are sorted for determinism.
    pub fn from_clusters(mut clusters: Vec<Vec<RecordId>>) -> Self {
        clusters.retain(|c| !c.is_empty());
        for c in &mut clusters {
            c.sort_unstable();
        }
        clusters.sort_unstable();
        let mut assignment = HashMap::new();
        for (i, c) in clusters.iter().enumerate() {
            for &r in c {
                let prev = assignment.insert(r, i);
                assert!(prev.is_none(), "record {r} in two clusters");
            }
        }
        Self {
            clusters,
            assignment,
        }
    }

    /// The clusters, each sorted, in deterministic order.
    pub fn clusters(&self) -> &[Vec<RecordId>] {
        &self.clusters
    }

    /// Cluster index of a record, if clustered.
    pub fn cluster_of(&self, r: RecordId) -> Option<usize> {
        self.assignment.get(&r).copied()
    }

    /// Are two records in the same cluster?
    pub fn same_cluster(&self, a: RecordId, b: RecordId) -> bool {
        match (self.cluster_of(a), self.cluster_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True when there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Total records covered.
    pub fn record_count(&self) -> usize {
        self.assignment.len()
    }

    /// Number of within-cluster pairs (the "predicted matches" count for
    /// pairwise evaluation).
    pub fn pair_count(&self) -> u64 {
        self.clusters
            .iter()
            .map(|c| {
                let n = c.len() as u64;
                n * (n - 1) / 2
            })
            .sum()
    }
}

/// Ensure every record of `universe` appears, adding singletons for the
/// unclustered — evaluation needs total coverage.
pub fn with_singletons(clustering: Clustering, universe: &[RecordId]) -> Clustering {
    let mut clusters = clustering.clusters;
    for &r in universe {
        if !clustering.assignment.contains_key(&r) {
            clusters.push(vec![r]);
        }
    }
    Clustering::from_clusters(clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_types::SourceId;

    fn rid(s: u32, q: u32) -> RecordId {
        RecordId::new(SourceId(s), q)
    }

    #[test]
    fn from_clusters_basics() {
        let c =
            Clustering::from_clusters(vec![vec![rid(0, 0), rid(1, 0)], vec![rid(2, 0)], vec![]]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.record_count(), 3);
        assert!(c.same_cluster(rid(0, 0), rid(1, 0)));
        assert!(!c.same_cluster(rid(0, 0), rid(2, 0)));
        assert_eq!(c.pair_count(), 1);
    }

    #[test]
    #[should_panic(expected = "in two clusters")]
    fn duplicate_membership_rejected() {
        Clustering::from_clusters(vec![vec![rid(0, 0)], vec![rid(0, 0)]]);
    }

    #[test]
    fn singleton_completion() {
        let base = Clustering::from_clusters(vec![vec![rid(0, 0), rid(1, 0)]]);
        let uni = vec![rid(0, 0), rid(1, 0), rid(2, 0), rid(3, 0)];
        let full = with_singletons(base, &uni);
        assert_eq!(full.record_count(), 4);
        assert_eq!(full.len(), 3);
    }
}
