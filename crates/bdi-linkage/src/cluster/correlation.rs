//! Greedy pivot correlation clustering (KwikCluster-style).

use super::Clustering;
use crate::pair::Pair;
use bdi_types::RecordId;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Correlation clustering over the "positive" match edges: visit records
/// in deterministic id order; each unassigned record becomes a pivot and
/// absorbs its unassigned positive neighbors.
///
/// KwikCluster is a 3-approximation to minimizing disagreements with the
/// pairwise evidence in expectation (under random pivots); with sorted
/// pivots it stays a strong practical heuristic and is fully
/// reproducible. Compared to transitive closure it refuses to merge two
/// records connected only through a chain of intermediaries.
pub fn correlation_clustering(matches: &[Pair], universe: &[RecordId]) -> Clustering {
    let mut adj: HashMap<RecordId, BTreeSet<RecordId>> = HashMap::new();
    let mut nodes: BTreeSet<RecordId> = universe.iter().copied().collect();
    for p in matches {
        adj.entry(p.lo).or_default().insert(p.hi);
        adj.entry(p.hi).or_default().insert(p.lo);
        nodes.insert(p.lo);
        nodes.insert(p.hi);
    }
    let mut assigned: HashSet<RecordId> = HashSet::new();
    let mut clusters: Vec<Vec<RecordId>> = Vec::new();
    for &pivot in &nodes {
        if assigned.contains(&pivot) {
            continue;
        }
        let mut cluster = vec![pivot];
        assigned.insert(pivot);
        if let Some(neigh) = adj.get(&pivot) {
            for &n in neigh {
                if !assigned.contains(&n) {
                    assigned.insert(n);
                    cluster.push(n);
                }
            }
        }
        clusters.push(cluster);
    }
    Clustering::from_clusters(clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_types::SourceId;

    fn rid(s: u32, q: u32) -> RecordId {
        RecordId::new(SourceId(s), q)
    }

    #[test]
    fn pivot_absorbs_neighbors_only() {
        // path a-b-c: pivot a absorbs b; c not adjacent to a, so it
        // becomes its own pivot
        let matches = vec![
            Pair::new(rid(0, 0), rid(1, 0)),
            Pair::new(rid(1, 0), rid(2, 0)),
        ];
        let uni: Vec<_> = (0..3).map(|s| rid(s, 0)).collect();
        let c = correlation_clustering(&matches, &uni);
        assert!(c.same_cluster(rid(0, 0), rid(1, 0)));
        assert!(!c.same_cluster(rid(0, 0), rid(2, 0)));
    }

    #[test]
    fn clique_stays_whole() {
        let ids: Vec<_> = (0..4).map(|s| rid(s, 0)).collect();
        let mut matches = Vec::new();
        for i in 0..4 {
            for j in (i + 1)..4 {
                matches.push(Pair::new(ids[i], ids[j]));
            }
        }
        let c = correlation_clustering(&matches, &ids);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn deterministic() {
        let matches = vec![
            Pair::new(rid(0, 0), rid(1, 0)),
            Pair::new(rid(2, 0), rid(3, 0)),
            Pair::new(rid(1, 0), rid(2, 0)),
        ];
        let uni: Vec<_> = (0..4).map(|s| rid(s, 0)).collect();
        assert_eq!(
            correlation_clustering(&matches, &uni).clusters(),
            correlation_clustering(&matches, &uni).clusters()
        );
    }

    #[test]
    fn isolated_records_singletons() {
        let uni: Vec<_> = (0..2).map(|s| rid(s, 0)).collect();
        let c = correlation_clustering(&[], &uni);
        assert_eq!(c.len(), 2);
    }
}
