//! Disjoint-set forest with union by rank and path compression.

/// Union-find over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // compress
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Extract the sets as sorted groups of element indices.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut map: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for i in 0..n {
            let r = self.find(i);
            map.entry(r).or_default().push(i);
        }
        let mut out: Vec<Vec<usize>> = map.into_values().collect();
        out.sort_unstable();
        out
    }

    /// Grow the structure by one singleton, returning its index.
    pub fn push(&mut self) -> usize {
        let i = self.parent.len();
        self.parent.push(i);
        self.rank.push(0);
        self.components += 1;
        i
    }

    /// The raw forest state: `(parent, rank)` clones. Together with
    /// [`UnionFind::from_parts`] this round-trips the structure exactly
    /// (same roots, same future union behaviour) — the contract the
    /// serve-path snapshots rely on to keep cluster ids stable across a
    /// restart.
    pub fn parts(&self) -> (Vec<usize>, Vec<u8>) {
        (self.parent.clone(), self.rank.clone())
    }

    /// Rebuild from raw `(parent, rank)` state previously taken with
    /// [`UnionFind::parts`]. Returns `None` when the arrays are
    /// inconsistent (length mismatch or a parent index out of range).
    pub fn from_parts(parent: Vec<usize>, rank: Vec<u8>) -> Option<Self> {
        if parent.len() != rank.len() {
            return None;
        }
        let n = parent.len();
        if parent.iter().any(|&p| p >= n) {
            return None;
        }
        let components = parent.iter().enumerate().filter(|&(i, &p)| i == p).count();
        Some(Self {
            parent,
            rank,
            components,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_union_find() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already connected");
        assert_eq!(uf.components(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn groups_cover_all() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(4, 5);
        let g = uf.groups();
        let total: usize = g.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
        assert_eq!(g.len(), uf.components());
    }

    #[test]
    fn push_extends() {
        let mut uf = UnionFind::new(2);
        let i = uf.push();
        assert_eq!(i, 2);
        assert_eq!(uf.components(), 3);
        uf.union(i, 0);
        assert!(uf.connected(2, 0));
    }

    #[test]
    fn parts_round_trip_preserves_roots_and_unions() {
        let mut uf = UnionFind::new(8);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 3);
        let roots: Vec<usize> = (0..8).map(|i| uf.find(i)).collect();
        let (parent, rank) = uf.parts();
        let mut back = UnionFind::from_parts(parent, rank).expect("consistent parts");
        assert_eq!(back.components(), uf.components());
        let back_roots: Vec<usize> = (0..8).map(|i| back.find(i)).collect();
        assert_eq!(back_roots, roots, "restored forest keeps the same roots");
        // the restored structure keeps working as a union-find
        back.union(4, 5);
        assert!(back.connected(4, 5));
        assert_eq!(back.components(), uf.components() - 1);
    }

    #[test]
    fn from_parts_rejects_inconsistent_state() {
        assert!(UnionFind::from_parts(vec![0, 1], vec![0]).is_none());
        assert!(UnionFind::from_parts(vec![0, 9], vec![0, 0]).is_none());
    }

    proptest! {
        #[test]
        fn components_equals_group_count(unions in proptest::collection::vec((0usize..20, 0usize..20), 0..40)) {
            let mut uf = UnionFind::new(20);
            for (a, b) in unions {
                uf.union(a, b);
            }
            prop_assert_eq!(uf.components(), uf.groups().len());
        }

        #[test]
        fn union_is_idempotent_and_symmetric(a in 0usize..10, b in 0usize..10) {
            let mut uf1 = UnionFind::new(10);
            let mut uf2 = UnionFind::new(10);
            uf1.union(a, b);
            uf2.union(b, a);
            prop_assert_eq!(uf1.groups(), uf2.groups());
        }
    }
}
