//! R-Swoosh: generic match-merge entity resolution (Benjelloun et al.,
//! the "Swoosh" family).
//!
//! Unlike pairwise-then-cluster linkage, Swoosh *merges* matched records
//! immediately and lets the merged record — which carries the union of
//! the members' identifiers and attributes — match records neither member
//! could match alone (merge dominance). R-Swoosh is the standard
//! one-buffer formulation: pull a record, compare against the resolved
//! set, merge on first hit and recycle, otherwise retire it as resolved.

use super::Clustering;
use crate::matcher::Matcher;
use bdi_types::{Record, RecordId};
use std::collections::VecDeque;

/// Merge two records: the union of their content.
///
/// * identifiers: concatenated, deduplicated, first record's primary kept
///   first (primary position is meaningful — see `matcher::features`);
/// * title: the longer one (more tokens = more match evidence);
/// * attributes: union; on a name clash the first record wins (value
///   conflict resolution is fusion's job, not linkage's);
/// * id: the smaller member id (stable, deterministic).
pub fn merge_records(a: &Record, b: &Record) -> Record {
    let (first, second) = if a.id <= b.id { (a, b) } else { (b, a) };
    let mut out = first.clone();
    if second.title.len() > out.title.len() {
        out.title = second.title.clone();
    }
    for id in &second.identifiers {
        if !out.identifiers.contains(id) {
            out.identifiers.push(id.clone());
        }
    }
    for (k, v) in &second.attributes {
        out.attributes.entry(k.clone()).or_insert_with(|| v.clone());
    }
    out
}

/// The result of an R-Swoosh run.
#[derive(Clone, Debug)]
pub struct SwooshResult {
    /// The resolved (merged) records.
    pub records: Vec<Record>,
    /// Which input records each resolved record absorbed
    /// (index-aligned with `records`).
    pub provenance: Vec<Vec<RecordId>>,
    /// Pairwise comparisons performed.
    pub comparisons: u64,
}

impl SwooshResult {
    /// View the provenance as a [`Clustering`] for evaluation.
    pub fn clustering(&self) -> Clustering {
        Clustering::from_clusters(self.provenance.clone())
    }
}

/// Run R-Swoosh over the records with a pairwise matcher and threshold.
///
/// Deterministic: records are processed in id order and the resolved set
/// is scanned in insertion order.
pub fn r_swoosh<M: Matcher>(records: &[Record], matcher: &M, threshold: f64) -> SwooshResult {
    let mut input: VecDeque<(Record, Vec<RecordId>)> = {
        let mut sorted: Vec<&Record> = records.iter().collect();
        sorted.sort_by_key(|r| r.id);
        sorted
            .into_iter()
            .map(|r| (r.clone(), vec![r.id]))
            .collect()
    };
    let mut resolved: Vec<(Record, Vec<RecordId>)> = Vec::new();
    let mut comparisons = 0u64;
    while let Some((rec, prov)) = input.pop_front() {
        let mut hit = None;
        for (i, (other, _)) in resolved.iter().enumerate() {
            comparisons += 1;
            if matcher.score(other, &rec) >= threshold {
                hit = Some(i);
                break;
            }
        }
        match hit {
            Some(i) => {
                let (other, mut other_prov) = resolved.swap_remove(i);
                let merged = merge_records(&other, &rec);
                other_prov.extend(prov);
                input.push_back((merged, other_prov));
            }
            None => resolved.push((rec, prov)),
        }
    }
    let (records, mut provenance): (Vec<Record>, Vec<Vec<RecordId>>) = resolved.into_iter().unzip();
    for p in &mut provenance {
        p.sort_unstable();
        p.dedup();
    }
    SwooshResult {
        records,
        provenance,
        comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::IdentifierRule;
    use bdi_types::{SourceId, Value};

    fn rec(s: u32, q: u32, title: &str, ids: &[&str]) -> Record {
        let mut r = Record::new(RecordId::new(SourceId(s), q), title);
        r.identifiers = ids.iter().map(|x| x.to_string()).collect();
        r
    }

    #[test]
    fn clique_merges_to_one() {
        let records = vec![
            rec(0, 0, "Lumetra LX-100 camera", &["CAM-LUM-00100"]),
            rec(1, 0, "Lumetra LX-100", &["camlum00100"]),
            rec(2, 0, "camera LX-100 by Lumetra", &["CAM-LUM-00100"]),
        ];
        let out = r_swoosh(&records, &IdentifierRule::default(), 0.9);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.provenance[0].len(), 3);
        // merged record unions identifiers
        assert!(out.records[0].identifiers.len() >= 2);
    }

    #[test]
    fn non_matches_stay_separate() {
        let records = vec![
            rec(0, 0, "Lumetra LX-100 camera", &["CAM-LUM-00100"]),
            rec(1, 0, "Visionex V-900 monitor", &["MON-VIS-00900"]),
        ];
        let out = r_swoosh(&records, &IdentifierRule::default(), 0.9);
        assert_eq!(out.records.len(), 2);
    }

    #[test]
    fn merge_unions_attributes_first_wins_conflicts() {
        let a = rec(0, 0, "short", &["X-000111"])
            .with_attr("color", Value::str("black"))
            .with_attr("weight", Value::num(1.0));
        let b = rec(1, 0, "a much longer title", &["Y-000222"])
            .with_attr("color", Value::str("white"))
            .with_attr("size", Value::num(2.0));
        let m = merge_records(&a, &b);
        assert_eq!(m.id, a.id, "smaller member id kept");
        assert_eq!(m.title, "a much longer title");
        assert_eq!(m.get("color"), Some(&Value::str("black")), "first wins");
        assert!(m.get("size").is_some() && m.get("weight").is_some());
        assert_eq!(
            m.identifiers,
            vec!["X-000111".to_string(), "Y-000222".to_string()]
        );
    }

    #[test]
    fn merge_is_commutative_on_content() {
        let a = rec(0, 0, "alpha title", &["X-000111"]).with_attr("k", Value::num(1.0));
        let b = rec(1, 0, "beta", &["Y-000222"]).with_attr("k", Value::num(2.0));
        assert_eq!(merge_records(&a, &b), merge_records(&b, &a));
    }

    #[test]
    fn partition_at_least_as_coarse_as_transitive_closure() {
        // swoosh can only merge more (merged evidence), never less
        let records = vec![
            rec(0, 0, "Lumetra LX-100 camera", &["CAM-LUM-00100"]),
            rec(1, 0, "Lumetra LX-100", &["camlum00100"]),
            rec(2, 0, "Fotonix F-200 camera", &["CAM-FOT-00200"]),
            rec(3, 0, "Fotonix F-200", &["CAMFOT00200"]),
        ];
        let matcher = IdentifierRule::default();
        let out = r_swoosh(&records, &matcher, 0.9);
        // compute the pairwise match graph partition
        let mut edges = Vec::new();
        for i in 0..records.len() {
            for j in (i + 1)..records.len() {
                if matcher.score(&records[i], &records[j]) >= 0.9 {
                    edges.push(crate::Pair::new(records[i].id, records[j].id));
                }
            }
        }
        let universe: Vec<RecordId> = records.iter().map(|r| r.id).collect();
        let tc = super::super::transitive_closure(&edges, &universe);
        let sw = out.clustering();
        assert!(
            sw.len() <= tc.len(),
            "swoosh {} coarser than tc {}",
            sw.len(),
            tc.len()
        );
        // and in this clean case they agree exactly
        assert_eq!(sw.clusters(), tc.clusters());
    }

    #[test]
    fn provenance_partitions_input() {
        let records: Vec<Record> = (0..6)
            .map(|i| {
                rec(
                    i,
                    0,
                    &format!("Product {i} gadget"),
                    &[&format!("GAD-XXX-{i:05}")],
                )
            })
            .collect();
        let out = r_swoosh(&records, &IdentifierRule::default(), 0.9);
        let total: usize = out.provenance.iter().map(Vec::len).sum();
        assert_eq!(total, records.len());
        assert_eq!(out.clustering().record_count(), records.len());
    }

    #[test]
    fn deterministic() {
        let records = vec![
            rec(0, 0, "Lumetra LX-100 camera", &["CAM-LUM-00100"]),
            rec(1, 0, "Lumetra LX-100", &["camlum00100"]),
            rec(2, 0, "Fotonix F-200 camera", &["CAM-FOT-00200"]),
        ];
        let a = r_swoosh(&records, &IdentifierRule::default(), 0.9);
        let b = r_swoosh(&records, &IdentifierRule::default(), 0.9);
        assert_eq!(a.records, b.records);
        assert_eq!(a.provenance, b.provenance);
    }

    #[test]
    fn empty_input() {
        let out = r_swoosh(&[], &IdentifierRule::default(), 0.9);
        assert!(out.records.is_empty());
        assert_eq!(out.comparisons, 0);
    }
}
