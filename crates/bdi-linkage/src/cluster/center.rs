//! CENTER clustering (Haveliwala et al. / star clustering variant).

use super::Clustering;
use crate::pair::Pair;
use bdi_types::RecordId;
use std::collections::HashMap;

/// Cluster by scanning scored match edges in descending score order:
/// when both endpoints are unassigned, the first becomes a *center* and
/// the second its member; later edges can only attach unassigned records
/// to existing centers — member-to-member edges are ignored, which blocks
/// the chain merges that plague transitive closure.
pub fn center_clustering(scored: &[(Pair, f64)], universe: &[RecordId]) -> Clustering {
    let mut edges: Vec<(Pair, f64)> = scored.to_vec();
    edges.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0)) // deterministic tiebreak
    });

    #[derive(Clone, Copy, PartialEq)]
    enum Role {
        Center(usize),
        Member(usize),
    }
    let mut role: HashMap<RecordId, Role> = HashMap::new();
    let mut clusters: Vec<Vec<RecordId>> = Vec::new();

    for (p, _) in edges {
        let (a, b) = p.members();
        match (role.get(&a).copied(), role.get(&b).copied()) {
            (None, None) => {
                let idx = clusters.len();
                clusters.push(vec![a, b]);
                role.insert(a, Role::Center(idx));
                role.insert(b, Role::Member(idx));
            }
            (Some(Role::Center(i)), None) => {
                clusters[i].push(b);
                role.insert(b, Role::Member(i));
            }
            (None, Some(Role::Center(i))) => {
                clusters[i].push(a);
                role.insert(a, Role::Member(i));
            }
            // member-to-anything and center-to-center edges are dropped
            _ => {}
        }
    }
    for &r in universe {
        if !role.contains_key(&r) {
            clusters.push(vec![r]);
        }
    }
    Clustering::from_clusters(clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_types::SourceId;

    fn rid(s: u32, q: u32) -> RecordId {
        RecordId::new(SourceId(s), q)
    }

    #[test]
    fn resists_chain_merge() {
        // a-b strong, b-c strong, but a-b first makes a the center; c can
        // only join via an edge to the CENTER a, not to member b
        let scored = vec![
            (Pair::new(rid(0, 0), rid(1, 0)), 0.9),
            (Pair::new(rid(1, 0), rid(2, 0)), 0.8),
        ];
        let uni = vec![rid(0, 0), rid(1, 0), rid(2, 0)];
        let c = center_clustering(&scored, &uni);
        assert!(c.same_cluster(rid(0, 0), rid(1, 0)));
        assert!(
            !c.same_cluster(rid(1, 0), rid(2, 0)),
            "member edge must not merge"
        );
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn center_absorbs_direct_edges() {
        let scored = vec![
            (Pair::new(rid(0, 0), rid(1, 0)), 0.9),
            (Pair::new(rid(0, 0), rid(2, 0)), 0.8),
        ];
        let uni: Vec<_> = (0..3).map(|s| rid(s, 0)).collect();
        let c = center_clustering(&scored, &uni);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn deterministic_under_score_ties() {
        let scored = vec![
            (Pair::new(rid(0, 0), rid(1, 0)), 0.9),
            (Pair::new(rid(2, 0), rid(3, 0)), 0.9),
        ];
        let uni: Vec<_> = (0..4).map(|s| rid(s, 0)).collect();
        let a = center_clustering(&scored, &uni);
        let b = center_clustering(&scored, &uni);
        assert_eq!(a.clusters(), b.clusters());
    }

    #[test]
    fn empty_input_all_singletons() {
        let uni: Vec<_> = (0..3).map(|s| rid(s, 0)).collect();
        let c = center_clustering(&[], &uni);
        assert_eq!(c.len(), 3);
    }
}
