//! Transitive-closure clustering (connected components of match edges).

use super::{Clustering, UnionFind};
use crate::pair::Pair;
use bdi_types::RecordId;
use std::collections::HashMap;

/// Connected components over the matched pairs, with singletons for every
/// universe record that matched nothing.
///
/// The cheapest consolidation and the default at scale — but a single
/// false-positive edge glues two entities together, so its pairwise
/// precision collapses first as matcher noise grows (experiment E11).
pub fn transitive_closure(matches: &[Pair], universe: &[RecordId]) -> Clustering {
    let mut index: HashMap<RecordId, usize> = HashMap::new();
    let mut ids: Vec<RecordId> = Vec::new();
    let mut intern = |r: RecordId, ids: &mut Vec<RecordId>| -> usize {
        *index.entry(r).or_insert_with(|| {
            ids.push(r);
            ids.len() - 1
        })
    };
    for &r in universe {
        intern(r, &mut ids);
    }
    for p in matches {
        intern(p.lo, &mut ids);
        intern(p.hi, &mut ids);
    }
    let mut uf = UnionFind::new(ids.len());
    for p in matches {
        uf.union(index[&p.lo], index[&p.hi]);
    }
    let clusters = uf
        .groups()
        .into_iter()
        .map(|g| g.into_iter().map(|i| ids[i]).collect())
        .collect();
    Clustering::from_clusters(clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_types::SourceId;

    fn rid(s: u32, q: u32) -> RecordId {
        RecordId::new(SourceId(s), q)
    }

    #[test]
    fn chains_merge() {
        let matches = vec![
            Pair::new(rid(0, 0), rid(1, 0)),
            Pair::new(rid(1, 0), rid(2, 0)),
        ];
        let uni = vec![rid(0, 0), rid(1, 0), rid(2, 0), rid(3, 0)];
        let c = transitive_closure(&matches, &uni);
        assert_eq!(c.len(), 2); // {0,1,2} and singleton {3}
        assert!(c.same_cluster(rid(0, 0), rid(2, 0)));
        assert!(!c.same_cluster(rid(0, 0), rid(3, 0)));
    }

    #[test]
    fn no_matches_all_singletons() {
        let uni = vec![rid(0, 0), rid(1, 0)];
        let c = transitive_closure(&[], &uni);
        assert_eq!(c.len(), 2);
        assert_eq!(c.pair_count(), 0);
    }

    #[test]
    fn matches_outside_universe_still_clustered() {
        let matches = vec![Pair::new(rid(5, 0), rid(6, 0))];
        let c = transitive_closure(&matches, &[]);
        assert_eq!(c.record_count(), 2);
        assert!(c.same_cluster(rid(5, 0), rid(6, 0)));
    }
}
