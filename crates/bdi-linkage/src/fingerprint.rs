//! Record fingerprints: every per-record computation the hot comparison
//! loop needs, done **once** at insert time.
//!
//! [`crate::matcher::pair_features`] re-tokenizes both titles,
//! re-normalizes both identifiers, and re-renders both value bags on
//! *every* candidate comparison — an arriving record with 50 blocking
//! candidates pays that 50 times over. A [`RecordFingerprint`] hoists
//! all of it to insert time: the incremental linker computes one
//! fingerprint per record (and rebuilds them on restore — they are
//! derived state, never serialized), after which
//! [`crate::matcher::pair_features_fp`] is pure merge-intersection over
//! presorted token sets plus string similarity over preextracted
//! identifiers, with zero per-comparison allocation.
//!
//! The fingerprint also carries every [`crate::blocking::BlockingKey`]'s
//! raw material, so candidate-index registration reuses the same pass
//! instead of tokenizing the title a second time.

use crate::blocking::{longest_digit_run, normalize_identifier};
use bdi_types::Record;

/// Precomputed comparison state for one record. Construction is the only
/// place tokenization / normalization / value rendering happens; all
/// fields are ready-to-compare forms.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordFingerprint {
    /// Normalized identifiers, in the record's (best-first) order.
    pub ids_norm: Vec<String>,
    /// Longest digit run of each identifier that has one, in order.
    pub id_digits: Vec<String>,
    /// Normalized **primary** identifier (empty when the record has
    /// none) — the identifier the matcher compares.
    pub primary_id: String,
    /// Longest digit run of the primary identifier.
    pub primary_digits: Option<String>,
    /// Title tokens in order, duplicates kept (Monge-Elkan input).
    pub title_tokens: Vec<String>,
    /// Title tokens sorted + deduplicated (Jaccard set input).
    pub title_token_set: Vec<String>,
    /// Rendered canonical non-null attribute values, sorted +
    /// deduplicated (value-overlap set input). Empty exactly when the
    /// record has no non-null attribute.
    pub value_set: Vec<String>,
    /// Soundex code of the title's first token, if any (phonetic
    /// blocking key).
    pub title_soundex: Option<String>,
}

impl RecordFingerprint {
    /// Fingerprint one record.
    pub fn of(record: &Record) -> Self {
        let ids_norm: Vec<String> = record
            .identifiers
            .iter()
            .map(|s| normalize_identifier(s))
            .collect();
        let id_digits: Vec<String> = record
            .identifiers
            .iter()
            .filter_map(|s| longest_digit_run(s))
            .collect();
        let primary_id = ids_norm.first().cloned().unwrap_or_default();
        let primary_digits = record.primary_identifier().and_then(longest_digit_run);

        let title_tokens = bdi_textsim::tokenize(&record.title);
        let mut title_token_set = title_tokens.clone();
        title_token_set.sort_unstable();
        title_token_set.dedup();

        let mut value_set: Vec<String> = record
            .attributes
            .values()
            .filter(|v| !v.is_null())
            .map(|v| v.canonical().render())
            .collect();
        value_set.sort_unstable();
        value_set.dedup();

        let title_soundex = bdi_textsim::soundex(&record.title);

        Self {
            ids_norm,
            id_digits,
            primary_id,
            primary_digits,
            title_tokens,
            title_token_set,
            value_set,
            title_soundex,
        }
    }
}

/// A record together with its fingerprint — what fingerprint-aware
/// matchers ([`crate::matcher::Matcher::score_prepared`]) compare. Plain
/// borrowed pair, `Copy`, so passing it around is free.
#[derive(Clone, Copy, Debug)]
pub struct PreparedRecord<'a> {
    /// The record itself (fallback for matchers without a fingerprint
    /// fast path).
    pub record: &'a Record,
    /// Its precomputed fingerprint.
    pub fingerprint: &'a RecordFingerprint,
}

impl<'a> PreparedRecord<'a> {
    /// Pair a record with its fingerprint.
    pub fn new(record: &'a Record, fingerprint: &'a RecordFingerprint) -> Self {
        Self {
            record,
            fingerprint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_types::{RecordId, SourceId, Value};

    fn rec(title: &str, ids: &[&str]) -> Record {
        let mut r = Record::new(RecordId::new(SourceId(0), 0), title);
        r.identifiers = ids.iter().map(|s| s.to_string()).collect();
        r
    }

    #[test]
    fn fingerprint_precomputes_all_forms() {
        let mut r = rec("Lumetra LX-100 camera camera", &["CAM-LUM-00100", "ABC"]);
        r.attributes.insert("color".into(), Value::str("Black"));
        r.attributes.insert("ghost".into(), Value::Null);
        let fp = RecordFingerprint::of(&r);
        assert_eq!(fp.ids_norm, vec!["CAMLUM00100", "ABC"]);
        assert_eq!(fp.id_digits, vec!["00100"]);
        assert_eq!(fp.primary_id, "CAMLUM00100");
        assert_eq!(fp.primary_digits.as_deref(), Some("00100"));
        assert_eq!(
            fp.title_tokens,
            vec!["lumetra", "lx", "100", "camera", "camera"]
        );
        assert_eq!(fp.title_token_set, vec!["100", "camera", "lumetra", "lx"]);
        assert_eq!(fp.value_set, vec![Value::str("Black").canonical().render()]);
        assert!(fp.title_soundex.is_some());
    }

    #[test]
    fn empty_record_fingerprints_cleanly() {
        let fp = RecordFingerprint::of(&rec("", &[]));
        assert!(fp.ids_norm.is_empty());
        assert!(fp.primary_id.is_empty());
        assert_eq!(fp.primary_digits, None);
        assert!(fp.title_tokens.is_empty());
        assert!(fp.value_set.is_empty());
        assert_eq!(fp.title_soundex, None);
    }

    #[test]
    fn value_set_empty_iff_no_nonnull_attributes() {
        let mut r = rec("x", &[]);
        r.attributes.insert("a".into(), Value::Null);
        assert!(RecordFingerprint::of(&r).value_set.is_empty());
        r.attributes.insert("b".into(), Value::num(3.0));
        assert!(!RecordFingerprint::of(&r).value_set.is_empty());
    }
}
