//! Candidate record pairs.

use bdi_types::RecordId;

/// An unordered pair of record ids, stored normalized (`lo <= hi`) so the
/// same pair never appears twice under different orderings.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pair {
    /// The smaller id.
    pub lo: RecordId,
    /// The larger id.
    pub hi: RecordId,
}

impl Pair {
    /// Build a normalized pair. Panics if `a == b` (a record is not a
    /// candidate match of itself).
    pub fn new(a: RecordId, b: RecordId) -> Self {
        assert!(a != b, "self-pair {a}");
        if a < b {
            Self { lo: a, hi: b }
        } else {
            Self { lo: b, hi: a }
        }
    }

    /// Both members.
    pub fn members(self) -> (RecordId, RecordId) {
        (self.lo, self.hi)
    }

    /// True when the two records come from the same source. Linkage
    /// normally skips these: a source publishes each product once.
    pub fn same_source(self) -> bool {
        self.lo.source == self.hi.source
    }
}

/// Deduplicate a candidate list in place (sort + dedup).
pub fn dedup_pairs(pairs: &mut Vec<Pair>) {
    pairs.sort_unstable();
    pairs.dedup();
}

/// Number of distinct cross-source pairs among `n` records — the
/// all-pairs comparison budget blocking is measured against.
pub fn all_pairs_count(n: usize) -> u64 {
    let n = n as u64;
    n * n.saturating_sub(1) / 2
}

/// Number of distinct *cross-source* pairs in a dataset: `C(n,2)` minus
/// the within-source pairs, which linkage never compares.
pub fn cross_source_pair_count(ds: &bdi_types::Dataset) -> u64 {
    let total = all_pairs_count(ds.len());
    let within: u64 = ds
        .sources()
        .map(|s| all_pairs_count(ds.records_of(s.id).count()))
        .sum();
    total - within
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_types::SourceId;

    fn rid(s: u32, q: u32) -> RecordId {
        RecordId::new(SourceId(s), q)
    }

    #[test]
    fn pair_normalizes_order() {
        let a = rid(2, 0);
        let b = rid(1, 5);
        assert_eq!(Pair::new(a, b), Pair::new(b, a));
        assert_eq!(Pair::new(a, b).lo, b);
    }

    #[test]
    #[should_panic(expected = "self-pair")]
    fn self_pair_rejected() {
        Pair::new(rid(1, 1), rid(1, 1));
    }

    #[test]
    fn same_source_detection() {
        assert!(Pair::new(rid(1, 0), rid(1, 1)).same_source());
        assert!(!Pair::new(rid(1, 0), rid(2, 0)).same_source());
    }

    #[test]
    fn dedup_removes_reorderings() {
        let mut v = vec![
            Pair::new(rid(1, 0), rid(2, 0)),
            Pair::new(rid(2, 0), rid(1, 0)),
            Pair::new(rid(1, 0), rid(3, 0)),
        ];
        dedup_pairs(&mut v);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn all_pairs_formula() {
        assert_eq!(all_pairs_count(0), 0);
        assert_eq!(all_pairs_count(1), 0);
        assert_eq!(all_pairs_count(10), 45);
    }
}
