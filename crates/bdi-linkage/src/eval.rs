//! Linkage evaluation against ground truth.

use crate::cluster::Clustering;
use crate::pair::Pair;
use bdi_types::{GroundTruth, RecordId};
use std::collections::HashMap;

/// Blocking quality: how many true pairs survive, at what candidate cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockingQuality {
    /// Candidate pairs emitted.
    pub candidates: u64,
    /// Pair completeness: fraction of true matching pairs that are
    /// candidates (blocking recall).
    pub pair_completeness: f64,
    /// Reduction ratio: `1 - candidates / all_pairs`.
    pub reduction_ratio: f64,
    /// Pairs quality (blocking precision): fraction of candidates that
    /// truly match.
    pub pairs_quality: f64,
}

/// Evaluate a candidate set against the oracle. `total_cross` is the
/// number of cross-source pairs in the dataset (the comparison budget a
/// blocker is saving against) — see
/// [`crate::pair::cross_source_pair_count`].
pub fn blocking_quality(
    candidates: &[Pair],
    truth: &GroundTruth,
    total_cross: u64,
) -> BlockingQuality {
    let total_true = truth.matching_pair_count();
    let mut true_candidates = 0u64;
    for p in candidates {
        if truth.same_entity(p.lo, p.hi) == Some(true) {
            true_candidates += 1;
        }
    }
    let all = total_cross.max(1);
    BlockingQuality {
        candidates: candidates.len() as u64,
        pair_completeness: if total_true == 0 {
            1.0
        } else {
            true_candidates as f64 / total_true as f64
        },
        reduction_ratio: 1.0 - candidates.len() as f64 / all as f64,
        pairs_quality: if candidates.is_empty() {
            0.0
        } else {
            true_candidates as f64 / candidates.len() as f64
        },
    }
}

/// Precision / recall / F1 triple.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Prf {
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
}

impl Prf {
    /// From raw counts.
    pub fn from_counts(tp: u64, fp: u64, fn_: u64) -> Self {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
        }
    }
}

/// Pairwise clustering quality: precision/recall/F1 over record pairs,
/// counting a pair as predicted-positive when clustered together.
pub fn pairwise_quality(clustering: &Clustering, truth: &GroundTruth) -> Prf {
    let mut tp = 0u64;
    let mut fp = 0u64;
    for cluster in clustering.clusters() {
        for i in 0..cluster.len() {
            for j in (i + 1)..cluster.len() {
                match truth.same_entity(cluster[i], cluster[j]) {
                    Some(true) => tp += 1,
                    _ => fp += 1,
                }
            }
        }
    }
    let total_true = truth
        .record_entity
        .keys()
        .filter(|r| clustering.cluster_of(**r).is_some())
        .fold(HashMap::<_, u64>::new(), |mut m, r| {
            *m.entry(truth.record_entity[r]).or_insert(0) += 1;
            m
        })
        .values()
        .map(|&n| n * (n - 1) / 2)
        .sum::<u64>();
    let fn_ = total_true.saturating_sub(tp);
    Prf::from_counts(tp, fp, fn_)
}

/// B-cubed clustering quality: per-record precision/recall averaged over
/// records — robust to cluster-size skew, the standard complement to
/// pairwise F1.
pub fn bcubed_quality(clustering: &Clustering, truth: &GroundTruth) -> Prf {
    let records: Vec<RecordId> = clustering
        .clusters()
        .iter()
        .flatten()
        .copied()
        .filter(|r| truth.record_entity.contains_key(r))
        .collect();
    if records.is_empty() {
        return Prf::default();
    }
    // entity -> count per cluster for recall denominator
    let mut entity_sizes: HashMap<bdi_types::EntityId, u64> = HashMap::new();
    for r in &records {
        *entity_sizes.entry(truth.record_entity[r]).or_insert(0) += 1;
    }
    let mut p_sum = 0.0;
    let mut r_sum = 0.0;
    for cluster in clustering.clusters() {
        // entity histogram within this cluster (truth-known members only)
        let mut hist: HashMap<bdi_types::EntityId, u64> = HashMap::new();
        let known: Vec<_> = cluster
            .iter()
            .filter(|r| truth.record_entity.contains_key(r))
            .collect();
        for r in &known {
            *hist.entry(truth.record_entity[r]).or_insert(0) += 1;
        }
        let csize = known.len() as f64;
        for r in &known {
            let e = truth.record_entity[r];
            let same_here = hist[&e] as f64;
            p_sum += same_here / csize;
            r_sum += same_here / entity_sizes[&e] as f64;
        }
    }
    let n = records.len() as f64;
    let precision = p_sum / n;
    let recall = r_sum / n;
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    Prf {
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_types::{EntityId, SourceId};

    fn rid(s: u32, q: u32) -> RecordId {
        RecordId::new(SourceId(s), q)
    }

    fn truth_two_entities() -> GroundTruth {
        let mut gt = GroundTruth::default();
        // entity 0: records (0,0),(1,0),(2,0); entity 1: (0,1),(1,1)
        for s in 0..3u32 {
            gt.record_entity.insert(rid(s, 0), EntityId(0));
        }
        for s in 0..2u32 {
            gt.record_entity.insert(rid(s, 1), EntityId(1));
        }
        gt
    }

    #[test]
    fn perfect_clustering_scores_one() {
        let gt = truth_two_entities();
        let c = Clustering::from_clusters(vec![
            vec![rid(0, 0), rid(1, 0), rid(2, 0)],
            vec![rid(0, 1), rid(1, 1)],
        ]);
        let pw = pairwise_quality(&c, &gt);
        assert_eq!(
            pw,
            Prf {
                precision: 1.0,
                recall: 1.0,
                f1: 1.0
            }
        );
        let b3 = bcubed_quality(&c, &gt);
        assert!((b3.f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn over_merge_hurts_precision_not_recall() {
        let gt = truth_two_entities();
        let c = Clustering::from_clusters(vec![vec![
            rid(0, 0),
            rid(1, 0),
            rid(2, 0),
            rid(0, 1),
            rid(1, 1),
        ]]);
        let pw = pairwise_quality(&c, &gt);
        assert_eq!(pw.recall, 1.0);
        assert!(pw.precision < 1.0);
    }

    #[test]
    fn under_merge_hurts_recall_not_precision() {
        let gt = truth_two_entities();
        let c = Clustering::from_clusters(vec![
            vec![rid(0, 0), rid(1, 0)],
            vec![rid(2, 0)],
            vec![rid(0, 1)],
            vec![rid(1, 1)],
        ]);
        let pw = pairwise_quality(&c, &gt);
        assert_eq!(pw.precision, 1.0);
        assert!(pw.recall < 1.0);
    }

    #[test]
    fn blocking_quality_counts() {
        let gt = truth_two_entities();
        // candidates: one true pair, one false pair
        let cands = vec![
            Pair::new(rid(0, 0), rid(1, 0)),
            Pair::new(rid(0, 0), rid(1, 1)),
        ];
        let q = blocking_quality(&cands, &gt, 10);
        assert_eq!(q.candidates, 2);
        // total true pairs = C(3,2)+C(2,2) = 3+1 = 4
        assert!((q.pair_completeness - 0.25).abs() < 1e-12);
        assert!((q.pairs_quality - 0.5).abs() < 1e-12);
        assert!((q.reduction_ratio - (1.0 - 2.0 / 10.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_candidates_quality() {
        let gt = truth_two_entities();
        let q = blocking_quality(&[], &gt, 10);
        assert_eq!(q.pair_completeness, 0.0);
        assert_eq!(q.reduction_ratio, 1.0);
    }

    #[test]
    fn prf_zero_division_safe() {
        assert_eq!(
            Prf::from_counts(0, 0, 0),
            Prf {
                precision: 0.0,
                recall: 0.0,
                f1: 0.0
            }
        );
    }
}
