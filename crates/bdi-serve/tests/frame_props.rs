//! Property tests for the binary frame codec and the WAL's torn-tail
//! recovery:
//!
//! * any generated record — every `Value` variant, every `Unit`,
//!   non-ASCII text, nested lists — survives the record-body round
//!   trip byte-exactly;
//! * a full `ingest_batch` wire frame round-trips through
//!   `frame_len`/`open_frame`/`read_records`;
//! * flipping **any single byte** of a framed message makes
//!   `open_frame` reject it (the CRC covers everything the header
//!   checks don't);
//! * no strict prefix of a frame ever opens (truncation is detected,
//!   never misread);
//! * corrupting a synced WAL at any byte past the segment header
//!   recovers a clean *prefix* of the appended records and leaves the
//!   log appendable — the `kill -9` contract, generalized.

use bdi_serve::frame::{
    encode_ingest_batch, frame_len, open_frame, read_records, Reader, HEADER_LEN, OP_INGEST_BATCH,
};
use bdi_serve::wal::{replay_from, Wal};
use bdi_types::{OrderedF64, Record, RecordId, SourceId, Unit, Value};
use proptest::prelude::*;

const UNITS: [Unit; 19] = [
    Unit::Millimeter,
    Unit::Centimeter,
    Unit::Meter,
    Unit::Inch,
    Unit::Gram,
    Unit::Kilogram,
    Unit::Ounce,
    Unit::Pound,
    Unit::Megabyte,
    Unit::Gigabyte,
    Unit::Terabyte,
    Unit::Hertz,
    Unit::Kilohertz,
    Unit::Megahertz,
    Unit::Gigahertz,
    Unit::Watt,
    Unit::Usd,
    Unit::Eur,
    Unit::Count,
];

/// Raw material for one attribute value: `(kind, magnitude, tag, text)`
/// decoded by [`value_from`]. Kept as plain tuples because the vendored
/// proptest shim composes ranges/tuples/vecs, not mapped strategies.
type ValueSeed = (u64, f64, u64, String);

fn value_seed() -> impl Strategy<Value = ValueSeed> {
    (0u64..6, -1.0e15f64..1.0e15, 0u64..64, ".{0,12}")
}

fn value_from(seed: &ValueSeed, depth: usize) -> Value {
    let (kind, magnitude, tag, text) = seed;
    match kind % if depth == 0 { 6 } else { 5 } {
        0 => Value::Null,
        1 => Value::Str(text.clone()),
        2 => Value::Num(OrderedF64::unwrap_new(*magnitude)),
        3 => Value::Bool(*tag % 2 == 0),
        4 => Value::Quantity {
            magnitude: OrderedF64::unwrap_new(*magnitude),
            unit: UNITS[(*tag as usize) % UNITS.len()],
        },
        // lists recurse one level, re-seeding the kind so sub-values
        // span the scalar variants
        _ => Value::List(
            (0..*tag % 4)
                .map(|i| value_from(&(kind + i + 1, *magnitude, tag + i, text.clone()), 1))
                .collect(),
        ),
    }
}

/// Raw material for one record, nested in pairs because the vendored
/// proptest shim only composes tuples up to arity 4.
type RecordSeed = (
    (u32, u32, String),                      // source, seq, title
    (Vec<String>, Vec<(String, ValueSeed)>), // identifiers, attributes
    u32,                                     // timestamp
);

fn record_seed() -> impl Strategy<Value = RecordSeed> {
    (
        (0u32..1000, 0u32..100_000, ".{0,20}"),
        (
            proptest::collection::vec("[A-Z0-9-]{1,14}", 0..4),
            proptest::collection::vec(("[a-z_]{1,10}", value_seed()), 0..6),
        ),
        0u32..5000,
    )
}

fn record_from(seed: &RecordSeed) -> Record {
    let ((source, seq, title), (identifiers, attrs), timestamp) = seed;
    let mut record = Record::new(RecordId::new(SourceId(*source), *seq), title.clone());
    for ident in identifiers {
        record = record.with_identifier(ident.clone());
    }
    for (name, value) in attrs {
        record = record.with_attr(name.clone(), value_from(value, 0));
    }
    record.timestamp = *timestamp;
    record
}

fn batch_from(seeds: &[RecordSeed]) -> Vec<Record> {
    seeds.iter().map(record_from).collect()
}

proptest! {
    #[test]
    fn record_body_roundtrips(seed in record_seed()) {
        let record = record_from(&seed);
        let body = bdi_serve::frame::encode_record_body(&record);
        let back = bdi_serve::frame::decode_record_body(&body)
            .expect("own encoding decodes");
        prop_assert_eq!(record, back);
    }

    #[test]
    fn ingest_batch_frame_roundtrips(seeds in proptest::collection::vec(record_seed(), 0..5)) {
        let records = batch_from(&seeds);
        let mut buf = Vec::new();
        encode_ingest_batch(&mut buf, &records);
        prop_assert_eq!(
            frame_len(&buf).expect("well-formed header"),
            Some(buf.len()),
            "framed length matches the encoding"
        );
        let (opcode, payload) = open_frame(&buf).expect("own frame opens");
        prop_assert_eq!(opcode, OP_INGEST_BATCH);
        let mut r = Reader::new(payload);
        let back = read_records(&mut r).expect("payload decodes");
        prop_assert_eq!(r.remaining(), 0, "payload fully consumed");
        prop_assert_eq!(records, back);
    }

    #[test]
    fn any_single_byte_flip_is_rejected(
        seeds in proptest::collection::vec(record_seed(), 0..3),
        at in 0usize..1_000_000,
        mask in 1u64..256,
    ) {
        let records = batch_from(&seeds);
        let mut buf = Vec::new();
        encode_ingest_batch(&mut buf, &records);
        let at = at % buf.len();
        buf[at] ^= mask as u8;
        prop_assert!(
            open_frame(&buf).is_err(),
            "flipped byte {} of {} went undetected",
            at,
            buf.len()
        );
    }

    #[test]
    fn no_strict_prefix_opens(
        seeds in proptest::collection::vec(record_seed(), 0..3),
        cut in 0usize..1_000_000,
    ) {
        let records = batch_from(&seeds);
        let mut buf = Vec::new();
        encode_ingest_batch(&mut buf, &records);
        let cut = cut % buf.len(); // strictly shorter than the frame
        prop_assert!(
            open_frame(&buf[..cut]).is_err(),
            "a {}-byte prefix of a {}-byte frame opened",
            cut,
            buf.len()
        );
    }

    #[test]
    fn wal_corruption_recovers_a_clean_prefix(
        seeds in proptest::collection::vec(record_seed(), 1..12),
        seg_pick in 0usize..1_000_000,
        at in 0usize..1_000_000,
        mask in 1u64..256,
    ) {
        let records = batch_from(&seeds);
        let dir = std::env::temp_dir().join(format!(
            "bdi-frame-props-{}-{}",
            std::process::id(),
            seg_pick ^ at ^ (mask as usize) ^ records.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // tiny capacity so multi-segment logs appear in small cases
        let mut wal = Wal::open_with_capacity(&dir, 512).unwrap().wal;
        for record in &records {
            wal.append(record).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        // flip one byte past the 16-byte header of one segment file
        let mut segs: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                p.file_name()?.to_str()?.starts_with("wal-").then_some(p)
            })
            .collect();
        segs.sort();
        let seg = &segs[seg_pick % segs.len()];
        let mut bytes = std::fs::read(seg).unwrap();
        if bytes.len() > 16 {
            let at = 16 + at % (bytes.len() - 16);
            bytes[at] ^= mask as u8;
            std::fs::write(seg, &bytes).unwrap();
        }

        // recovery: a clean prefix, never an error, never reordering
        let opened = Wal::open_with_capacity(&dir, 512).unwrap();
        let recovered: Vec<Record> =
            opened.entries.iter().map(|(_, r)| r.clone()).collect();
        prop_assert!(
            recovered.len() <= records.len(),
            "recovered more records than were written"
        );
        prop_assert_eq!(
            &records[..recovered.len()],
            &recovered[..],
            "recovered tail is not a prefix of what was appended"
        );

        // and the log stays appendable from wherever recovery landed
        let mut wal = opened.wal;
        let extra = record_from(&((9999, 0, "post-crash".into()), (vec![], vec![]), 1));
        let pos = wal.append(&extra).unwrap();
        wal.sync().unwrap();
        let replayed = replay_from(&dir, pos).unwrap();
        prop_assert_eq!(replayed.len(), 1, "post-recovery append replays");
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `HEADER_LEN` is load-bearing for the corruption properties: bytes
/// before it are header (magic/version/opcode/len), everything after is
/// CRC-covered payload + trailer. Pin it so a layout change forces a
/// look at the properties above.
#[test]
fn header_layout_is_pinned() {
    assert_eq!(HEADER_LEN, 8);
    let mut buf = Vec::new();
    encode_ingest_batch(&mut buf, &[]);
    assert_eq!(buf[0], bdi_serve::frame::FRAME_MAGIC);
    assert_eq!(buf[1], bdi_serve::frame::FRAME_VERSION);
    assert_eq!(buf[2], OP_INGEST_BATCH);
    assert_eq!(buf[3], 0, "reserved byte");
}
