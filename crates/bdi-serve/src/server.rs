//! The TCP daemon: accept loop, connection handlers, ingest worker.
//!
//! Threading model:
//!
//! * one **accept** thread hands each connection to its own handler
//!   thread (queries are read-only against a loaded generation, so any
//!   number can run concurrently);
//! * one **ingest worker** owns the [`Engine`]. Handlers forward
//!   `ingest` records through a bounded crossbeam channel — when the
//!   worker falls behind, the channel fills and senders block, which is
//!   the backpressure surfacing to clients as a slow `ack`;
//! * the worker drains up to `refresh_batch` queued records per cycle,
//!   refreshes the dirty clusters once, and publishes the new generation
//!   through the [`Swap`] — readers pay one `Arc` clone, never a lock
//!   held across a query.

use crate::engine::Engine;
use crate::gen::{Generation, ShardedIndex, Swap};
use crate::protocol::{Request, Response, StatsBody};
use bdi_types::Record;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Linkage match threshold.
    pub threshold: f64,
    /// Ingest queue capacity — the backpressure bound.
    pub queue_capacity: usize,
    /// Max records linked per refresh/publish cycle.
    pub refresh_batch: usize,
    /// Identifier-index shards per generation.
    pub shards: usize,
    /// Records integrated before the server starts accepting.
    pub preload: Vec<Record>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threshold: 0.9,
            queue_capacity: 256,
            refresh_batch: 64,
            shards: 8,
            preload: Vec::new(),
        }
    }
}

/// State shared by handlers and the ingest worker.
struct Shared {
    current: Swap<Generation>,
    submitted: AtomicU64,
    applied: AtomicU64,
    shutdown: AtomicBool,
    shards: usize,
}

/// A running integration service.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    ingest_tx: Option<Sender<Record>>,
    accept: Option<JoinHandle<()>>,
    worker: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, integrate any preload, and start serving.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(cfg.addr.as_str())?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            current: Swap::new(Generation::empty(cfg.shards)),
            submitted: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            shards: cfg.shards,
        });

        let mut engine = Engine::new(cfg.threshold);
        if !cfg.preload.is_empty() {
            let n = cfg.preload.len() as u64;
            for r in cfg.preload {
                engine.ingest(r);
            }
            publish(&shared, &mut engine, 1);
            shared.submitted.store(n, Ordering::SeqCst);
            shared.applied.store(n, Ordering::SeqCst);
        }

        let (tx, rx) = bounded(cfg.queue_capacity.max(1));
        let worker = {
            let shared = Arc::clone(&shared);
            let batch = cfg.refresh_batch.max(1);
            std::thread::spawn(move || ingest_worker(engine, shared, rx, batch))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            std::thread::spawn(move || accept_loop(listener, addr, shared, tx))
        };
        Ok(Server {
            addr,
            shared,
            ingest_tx: Some(tx),
            accept: Some(accept),
            worker: Some(worker),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The published generation readers currently see.
    pub fn generation(&self) -> u64 {
        self.shared.current.load().seq
    }

    /// Request shutdown and wait for the accept loop and ingest worker
    /// to drain. Open connections must be closed by their clients (a
    /// handler holding an ingest sender keeps the worker alive).
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // unblock the accept loop
        let _ = TcpStream::connect(self.addr);
        self.join();
    }

    /// Block until a client issues `shutdown` (which stops the accept
    /// loop) and the ingest worker drains. This is what `bdi serve`
    /// parks on.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        drop(self.ingest_tx.take());
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

/// Publish the engine's current state as the next generation.
fn publish(shared: &Shared, engine: &mut Engine, seq: u64) {
    let catalog = Arc::new(engine.refresh());
    let index = ShardedIndex::build(&catalog, shared.shards);
    shared.current.store(Arc::new(Generation {
        seq,
        catalog,
        index,
        records: engine.records(),
    }));
}

fn ingest_worker(mut engine: Engine, shared: Arc<Shared>, rx: Receiver<Record>, batch: usize) {
    let mut seq = shared.current.load().seq;
    while let Ok(first) = rx.recv() {
        let mut n = 1u64;
        engine.ingest(first);
        while (n as usize) < batch {
            match rx.try_recv() {
                Ok(r) => {
                    engine.ingest(r);
                    n += 1;
                }
                Err(_) => break,
            }
        }
        seq += 1;
        publish(&shared, &mut engine, seq);
        // applied counts only after the records are queryable
        shared.applied.fetch_add(n, Ordering::SeqCst);
    }
}

fn accept_loop(listener: TcpListener, addr: SocketAddr, shared: Arc<Shared>, tx: Sender<Record>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        let tx = tx.clone();
        std::thread::spawn(move || handle_connection(stream, addr, shared, tx));
    }
}

fn handle_connection(stream: TcpStream, addr: SocketAddr, shared: Arc<Shared>, tx: Sender<Record>) {
    // one small JSON line per response: never hold it back for Nagle
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = dispatch(&line, &shared, &tx, addr);
        let done = matches!(response, Response::Bye);
        let Ok(body) = serde_json::to_string(&response) else {
            break;
        };
        if writeln!(writer, "{body}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if done || shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
}

fn dispatch(line: &str, shared: &Shared, tx: &Sender<Record>, addr: SocketAddr) -> Response {
    let request: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            return Response::Error {
                message: format!("bad request: {e}"),
            }
        }
    };
    match request {
        Request::Lookup { identifier } => {
            let current = shared.current.load();
            Response::Entry {
                generation: current.seq,
                entry: current.lookup(&identifier).cloned(),
            }
        }
        Request::Filter {
            attribute,
            min,
            max,
            limit,
        } => {
            let current = shared.current.load();
            let entries: Vec<_> = current
                .catalog
                .filter(&attribute, |v| {
                    v.base_magnitude().is_some_and(|m| {
                        min.is_none_or(|lo| m >= lo) && max.is_none_or(|hi| m <= hi)
                    })
                })
                .take(limit.unwrap_or(100))
                .cloned()
                .collect();
            Response::Entries {
                generation: current.seq,
                entries,
            }
        }
        Request::TopK { attribute, k } => {
            let current = shared.current.load();
            let entries: Vec<_> = current
                .catalog
                .top_k_by(&attribute, k)
                .into_iter()
                .cloned()
                .collect();
            Response::Entries {
                generation: current.seq,
                entries,
            }
        }
        Request::Ingest { record } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Response::Error {
                    message: "shutting down".to_string(),
                };
            }
            match tx.send(record) {
                Ok(()) => {
                    let submitted = shared.submitted.fetch_add(1, Ordering::SeqCst) + 1;
                    Response::Ack { submitted }
                }
                Err(_) => Response::Error {
                    message: "ingest queue closed".to_string(),
                },
            }
        }
        Request::Flush => {
            let target = shared.submitted.load(Ordering::SeqCst);
            while shared.applied.load(Ordering::SeqCst) < target {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_micros(500));
            }
            let current = shared.current.load();
            Response::Flushed {
                generation: current.seq,
                applied: shared.applied.load(Ordering::SeqCst),
            }
        }
        Request::Stats => {
            let current = shared.current.load();
            Response::Stats(StatsBody {
                generation: current.seq,
                products: current.catalog.len(),
                records: current.records,
                submitted: shared.submitted.load(Ordering::SeqCst),
                applied: shared.applied.load(Ordering::SeqCst),
                shards: shared.shards,
            })
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // unblock the accept loop so it observes the flag
            let _ = TcpStream::connect(addr);
            Response::Bye
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use bdi_types::{RecordId, SourceId, Value};

    fn rec(s: u32, q: u32, title: &str, id: &str, price: f64) -> Record {
        let mut r = Record::new(RecordId::new(SourceId(s), q), title);
        r.identifiers.push(id.into());
        r.attributes.insert("price".into(), Value::num(price));
        r
    }

    #[test]
    fn end_to_end_session() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();

        assert_eq!(
            client
                .ingest(rec(0, 0, "Lumetra LX-100 camera", "CAM-LUM-00100", 499.0))
                .unwrap(),
            1
        );
        client
            .ingest(rec(1, 0, "Lumetra LX-100", "camlum00100", 489.0))
            .unwrap();
        client
            .ingest(rec(0, 1, "Visionex V-900 monitor", "MON-VIS-00900", 199.0))
            .unwrap();
        let (generation, applied) = client.flush().unwrap();
        assert!(generation >= 1);
        assert_eq!(applied, 3);

        let entry = client
            .lookup("cam lum 00100")
            .unwrap()
            .expect("camera resolves");
        assert_eq!(entry.pages.len(), 2);

        let top = client.top_k("price", 5).unwrap();
        assert_eq!(top.len(), 2, "two products have a fused price");
        assert!(
            top[0].attributes["price"].base_magnitude()
                >= top[1].attributes["price"].base_magnitude()
        );

        let within = client
            .filter("price", Some(400.0), Some(600.0), None)
            .unwrap();
        assert_eq!(within.len(), 1);

        let stats = client.stats().unwrap();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.applied, 3);
        assert_eq!(stats.products, 2);
        assert_eq!(stats.records, 3);

        client.shutdown().unwrap();
        drop(client);
        server.shutdown();
    }

    #[test]
    fn preload_is_queryable_before_any_ingest() {
        let cfg = ServerConfig {
            preload: vec![
                rec(0, 0, "Lumetra LX-100 camera", "CAM-LUM-00100", 499.0),
                rec(1, 0, "Lumetra LX-100", "CAM-LUM-00100", 479.0),
            ],
            ..Default::default()
        };
        let server = Server::start(cfg).unwrap();
        assert_eq!(server.generation(), 1);
        let mut client = Client::connect(server.addr()).unwrap();
        let entry = client.lookup("CAM-LUM-00100").unwrap().expect("preloaded");
        assert_eq!(entry.pages.len(), 2);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn tiny_queue_still_delivers_everything() {
        // queue capacity 1 forces the backpressure path on every send
        let cfg = ServerConfig {
            queue_capacity: 1,
            refresh_batch: 1,
            ..Default::default()
        };
        let server = Server::start(cfg).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        for i in 0..40u32 {
            client
                .ingest(rec(
                    i % 4,
                    i / 4,
                    &format!("Gadget{i} model{i}"),
                    &format!("XXX-YYY-{i:05}"),
                    f64::from(i),
                ))
                .unwrap();
        }
        let (_, applied) = client.flush().unwrap();
        assert_eq!(applied, 40);
        let stats = client.stats().unwrap();
        assert_eq!(stats.records, 40);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn concurrent_readers_see_consistent_generations() {
        let server = Server::start(ServerConfig {
            refresh_batch: 4,
            ..Default::default()
        })
        .unwrap();
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut last_gen = 0u64;
                    let mut queries = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        let (generation, entry) = client.lookup_traced("CAM-LUM-00042").unwrap();
                        assert!(
                            generation >= last_gen,
                            "generations are monotone per reader"
                        );
                        if let Some(e) = &entry {
                            assert!(!e.pages.is_empty(), "no half-applied entries");
                        }
                        last_gen = generation;
                        queries += 1;
                    }
                    queries
                })
            })
            .collect();

        let mut writer = Client::connect(addr).unwrap();
        for i in 0..60u32 {
            writer
                .ingest(rec(
                    i % 3,
                    i / 3,
                    "Lumetra LX-42 camera",
                    "CAM-LUM-00042",
                    100.0 + f64::from(i),
                ))
                .unwrap();
        }
        writer.flush().unwrap();
        stop.store(true, Ordering::SeqCst);
        let total: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "readers made progress during ingest");
        let entry = writer
            .lookup("CAM-LUM-00042")
            .unwrap()
            .expect("resolves after flush");
        assert_eq!(entry.pages.len(), 60);
        drop(writer);
        server.shutdown();
    }
}
