//! The TCP daemon: connection front-end, dispatch, ingest worker.
//!
//! Threading model:
//!
//! * the **front-end** owns the sockets. The default is the readiness
//!   loop ([`crate::nio`]): one epoll thread multiplexing every
//!   connection (JSON lines and HTTP/1.1, auto-detected per
//!   connection) plus a small dispatch worker pool, so tens of
//!   thousands of mostly-idle connections cost buffers, not threads.
//!   [`FrontEndKind::Threaded`] retains the original
//!   thread-per-connection accept loop (JSON lines only) as the
//!   `serve_c10k` bench baseline and an escape hatch — both call the
//!   same [`dispatch`] via the same `handle_line`, so responses are
//!   byte-identical;
//! * one **ingest worker** owns the [`Engine`]. Handlers forward
//!   `ingest` records through a bounded crossbeam channel — when the
//!   worker falls behind, the channel fills and senders block, which is
//!   the backpressure surfacing to clients as a slow `ack`;
//! * the worker drains up to `refresh_batch` queued records per cycle,
//!   refreshes the dirty clusters once, and publishes the new generation
//!   through the [`Swap`] — readers pay one `Arc` clone, never a lock
//!   held across a query.
//!
//! With a [`DurabilityConfig`], the worker also appends every record to
//! a write-ahead log *before* linking it ([`crate::wal`]), fsyncs in
//! batches, and periodically captures the engine into a snapshot
//! ([`crate::snapshot`]) before compacting the log — so
//! [`Server::start`] on the same data directory rebuilds the exact
//! pre-crash state from one snapshot load plus the WAL tail.
//!
//! A panic anywhere on a connection's request path (malformed input
//! reaching a deep invariant, say) is caught and answered with an
//! `error` response instead of killing the handler thread; a panic while
//! applying one record is caught, counted in `stats.rejected`, and the
//! worker keeps draining.

use crate::engine::{Engine, EngineMetrics};
use crate::frame;
use crate::gen::{Generation, ShardedIndex, Swap};
use crate::http::{self, HttpMetrics};
use crate::nio;
use crate::protocol::{
    CommandLatency, MetricsBody, Request, Response, SpanBody, StatsBody, TraceBody, TracedRequest,
    PROTOCOL_VERSION,
};
use crate::snapshot::Snapshot;
use crate::wal::{Wal, WalMetrics};
use bdi_obs::{Counter, Gauge, Histogram, Registry, RegistrySnapshot, TraceContext, Tracer};
use bdi_types::Record;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Durability tunables: where state lives and how eagerly it hits disk.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding `wal.log` and `snapshot.json` (created if
    /// missing). Reusing a directory resumes its state.
    pub data_dir: PathBuf,
    /// fsync the WAL after this many appended records (1 = every
    /// record). Larger batches keep the hot path off the disk's fsync
    /// latency at the cost of losing up to that many acked records on a
    /// hard crash. The log is also always synced when the ingest queue
    /// drains, so a quiescent server is fully durable.
    pub sync_every: usize,
    /// Snapshot + compact once the WAL tail exceeds this many records —
    /// the bound on replay work a restart can face.
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    /// Durability in `data_dir` with the default batching (fsync every
    /// 64 records, snapshot every 4096).
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        Self {
            data_dir: data_dir.into(),
            sync_every: 64,
            snapshot_every: 4096,
        }
    }
}

/// Which connection front-end owns the sockets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FrontEndKind {
    /// The readiness loop ([`crate::nio`], the default): one epoll
    /// thread plus a dispatch worker pool. Serves JSON lines *and*
    /// HTTP/1.1 on the same port (protocol sniffed from a connection's
    /// first bytes) and holds tens of thousands of idle connections.
    #[default]
    Readiness,
    /// The original thread-per-connection accept loop (JSON lines
    /// only). Retained as the `serve_c10k` bench baseline and an
    /// escape hatch; dispatch and responses are identical.
    Threaded,
}

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Connection front-end (readiness loop by default).
    pub front_end: FrontEndKind,
    /// Dispatch worker threads for the readiness front-end (0 = a
    /// small default). This bounds how many *blocking* commands (flush
    /// barriers, backpressured ingests) run at once — queries are
    /// cheap and rarely queue.
    pub workers: usize,
    /// Additional dedicated HTTP listener address. Optional: the
    /// readiness front-end already answers HTTP on the main port via
    /// autodetection; this serves deployments that want the human/API
    /// port firewalled separately. Served by the same loop.
    pub http_addr: Option<String>,
    /// Linkage match threshold.
    pub threshold: f64,
    /// Ingest queue capacity — the backpressure bound.
    pub queue_capacity: usize,
    /// Max records linked per refresh/publish cycle.
    pub refresh_batch: usize,
    /// Identifier-index shards per generation.
    pub shards: usize,
    /// Engine worker threads for candidate scoring and refresh fan-out
    /// (0 = one per host core). Purely a throughput knob — results are
    /// identical at any value. Multi-backend deployments on one host
    /// (the sharded bench, a local router fleet) set this so backends
    /// split the cores instead of all oversubscribing them.
    pub engine_threads: usize,
    /// Records integrated before the server starts accepting.
    pub preload: Vec<Record>,
    /// Write-ahead log + snapshots; `None` serves purely in memory.
    pub durability: Option<DurabilityConfig>,
    /// Log a structured one-line record to stderr for every request
    /// slower than this many milliseconds. `None` disables the log.
    /// Also arms the flight recorder's slow-exemplar capture: every
    /// request is force-traced, and the full span tree is retained
    /// whenever the request crosses the threshold — so `trace <id>`
    /// works on exactly the requests the slow log names.
    pub slow_ms: Option<u64>,
    /// Head-sample one request in this many into the flight recorder
    /// (`0` disables sampling; `1` traces everything). Requests that
    /// arrive with an upstream trace context are always recorded —
    /// sampling decisions are made once, at the edge.
    pub trace_sample: u64,
    /// Rewrite this file with the Prometheus text exposition of the
    /// metrics registry every [`ServerConfig::metrics_interval`]
    /// (atomic tmp + rename, so scrapers never read a torn file).
    pub metrics_file: Option<PathBuf>,
    /// How often the metrics file is rewritten.
    pub metrics_interval: Duration,
    /// Accept binary frames and advertise `binary-frames` in `hello`
    /// (the default). `false` (`bdi serve --no-binary`) keeps this node
    /// JSON-only — peers that autonegotiate fall back, which is how a
    /// mixed-format fleet runs during a staged rollout.
    pub binary_wire: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            front_end: FrontEndKind::default(),
            workers: 0,
            http_addr: None,
            threshold: 0.9,
            queue_capacity: 256,
            refresh_batch: 64,
            shards: 8,
            engine_threads: 0,
            preload: Vec::new(),
            durability: None,
            slow_ms: None,
            metrics_file: None,
            metrics_interval: Duration::from_secs(5),
            binary_wire: true,
            trace_sample: 0,
        }
    }
}

/// Wire names of every request command, in [`command_slot`] order.
const COMMAND_KINDS: [&str; 15] = [
    "lookup",
    "filter",
    "top_k",
    "ingest",
    "ingest_batch",
    "flush",
    "stats",
    "metrics",
    "shutdown",
    "hello",
    "sync",
    "restore",
    "split",
    "replace",
    "trace",
];

/// The wire features this build advertises in its `hello` reply. A
/// router checks for the ones it depends on (`ingest_batch` for the
/// pipelined lanes, `sync` for replacement bootstrap) instead of
/// discovering their absence as unknown-command errors mid-stream.
/// `binary-frames` is dropped from the reply when
/// [`ServerConfig::binary_wire`] is off — peers negotiate the format
/// off this list, never by trial and error.
pub const FEATURES: [&str; 6] = [
    "ingest_batch",
    "flush_barrier",
    "sync",
    "restore",
    "binary-frames",
    "trace-context",
];

/// The `hello` feature gating the binary frame format.
pub const FEATURE_BINARY: &str = "binary-frames";

/// The `hello` feature gating trace-context propagation: peers that
/// advertise it accept the binary frame trace extension and the
/// JSON-lines `trace` envelope; peers that don't get plain requests.
pub const FEATURE_TRACE: &str = "trace-context";

/// Index of a command kind in the per-command metric handle arrays.
fn command_slot(kind: &str) -> usize {
    COMMAND_KINDS
        .iter()
        .position(|&k| k == kind)
        .expect("Request::kind returns a known command")
}

/// Every serve-path metric handle, resolved once at startup so the
/// request and ingest hot paths never take the registry's name lock.
/// The nine counters/gauges that used to be ad-hoc `AtomicU64`s on
/// `Shared` live here now — `stats` and `metrics` read the same cells
/// and can never disagree.
pub(crate) struct ServeMetrics {
    registry: Registry,
    /// Per-command request latency, ns ([`command_slot`] order).
    request_ns: [Arc<Histogram>; COMMAND_KINDS.len()],
    /// Per-command request payload size, bytes (the JSON line).
    request_bytes: [Arc<Histogram>; COMMAND_KINDS.len()],
    /// Unparseable requests plus error responses.
    request_errors: Counter,
    /// HTTP-adapter counters and per-endpoint latency (`serve.http.*`).
    http: HttpMetrics,
    /// Open connections right now (both front-ends count here).
    conn_open: Gauge,
    /// Connections accepted since start.
    conn_accepted: Counter,
    /// Records per `ingest_batch` request (a size, not a latency).
    ingest_batch_records: Arc<Histogram>,
    /// Records accepted into the ingest queue.
    submitted: Counter,
    /// Records applied and queryable.
    applied: Counter,
    /// Records whose apply panicked.
    rejected: Counter,
    /// Linker comparisons as of the published generation.
    comparisons: Counter,
    /// Candidates skipped by the root filter (already merged with the
    /// arriving record), as of the published generation.
    pruned_root: Counter,
    /// Candidates skipped by the admissible score-bound filter, as of
    /// the published generation.
    pruned_bound: Counter,
    /// Posting-list entries skipped by the hot-key cap, as of the
    /// published generation.
    postings_skipped: Counter,
    /// Published generation number.
    generation: Gauge,
    /// Products in the published generation.
    products: Gauge,
    /// Records in the published generation.
    records: Gauge,
    /// WAL append position (absolute records).
    wal_position: Gauge,
    /// WAL fsync'd position (absolute records).
    wal_synced: Gauge,
    /// WAL replay-tail length (records past the last snapshot).
    wal_tail: Gauge,
    /// Records covered by the last snapshot.
    snapshot_records: Gauge,
    /// Generation the last snapshot captured.
    snapshot_generation: Gauge,
    /// One refresh + index build + generation swap, ns.
    publish_ns: Arc<Histogram>,
    /// One atomic snapshot persist, ns.
    snapshot_write_ns: Arc<Histogram>,
    /// WAL-tail replay at recovery, ns (one sample per restart).
    recovery_replay_ns: Arc<Histogram>,
    /// Records replayed from the WAL tail at recovery.
    recovery_replayed: Counter,
}

impl ServeMetrics {
    fn new(registry: Registry) -> Self {
        let request_ns = COMMAND_KINDS
            .map(|kind| registry.histogram(&format!("serve.request.{kind}.latency_ns")));
        let request_bytes =
            COMMAND_KINDS.map(|kind| registry.histogram(&format!("serve.request.{kind}.bytes")));
        Self {
            request_ns,
            request_bytes,
            request_errors: registry.counter("serve.request.errors"),
            http: HttpMetrics::register(&registry, "serve"),
            conn_open: registry.gauge("serve.conn.open"),
            conn_accepted: registry.counter("serve.conn.accepted"),
            ingest_batch_records: registry.histogram("serve.ingest.batch_records"),
            submitted: registry.counter("serve.ingest.submitted"),
            applied: registry.counter("serve.ingest.applied"),
            rejected: registry.counter("serve.ingest.rejected"),
            comparisons: registry.counter("serve.linkage.comparisons"),
            pruned_root: registry.counter("serve.engine.candidates.pruned.root"),
            pruned_bound: registry.counter("serve.engine.candidates.pruned.bound"),
            postings_skipped: registry.counter("serve.linkage.postings.skipped"),
            generation: registry.gauge("serve.catalog.generation"),
            products: registry.gauge("serve.catalog.products"),
            records: registry.gauge("serve.catalog.records"),
            wal_position: registry.gauge("serve.wal.position"),
            wal_synced: registry.gauge("serve.wal.synced"),
            wal_tail: registry.gauge("serve.wal.tail"),
            snapshot_records: registry.gauge("serve.snapshot.records"),
            snapshot_generation: registry.gauge("serve.snapshot.generation"),
            publish_ns: registry.histogram("serve.publish.latency_ns"),
            snapshot_write_ns: registry.histogram("serve.snapshot.write.latency_ns"),
            recovery_replay_ns: registry.histogram("serve.recovery.replay.latency_ns"),
            recovery_replayed: registry.counter("serve.recovery.replayed_records"),
            registry,
        }
    }
}

/// One unit of work on the ingest worker's queue. Control jobs
/// (`sync`, `restore`) ride the same channel as records, so they
/// observe the queue position they were submitted at: by the time the
/// worker reaches one, every record enqueued before it has been
/// appended and applied — which is what makes a `sync` reply a
/// consistent cut of the stream.
enum Job {
    /// One record to append + apply (the ingest hot path), with the
    /// trace context of the request that submitted it — carried across
    /// the queue so the worker's WAL/engine/publish spans land in the
    /// originating request's trace.
    Record(Record, Option<TraceContext>),
    /// A whole wire `ingest_batch` to append + apply as one
    /// transactional unit: one WAL group append, one apply pass, one
    /// deferred publish — so an N-record batch pays one cycle of
    /// shared work instead of N. State after the cycle is bit-identical
    /// to N `Record` jobs (an integration test pins it, WAL replay and
    /// snapshot included).
    Batch(Vec<Record>, Option<TraceContext>),
    /// Ship a consistent snapshot/tail cut back to the handler.
    Sync { from: u64, reply: Sender<Response> },
    /// Install shipped state in place of the current engine.
    Restore(Box<RestoreJob>),
}

/// The restore payload (boxed: a full engine snapshot dwarfs a record).
struct RestoreJob {
    snapshot: Option<Snapshot>,
    tail: Vec<Record>,
    position: u64,
    reply: Sender<Response>,
}

/// State shared by handlers and the ingest worker.
struct Shared {
    current: Swap<Generation>,
    metrics: ServeMetrics,
    /// The flight recorder: a fixed ring of span events every request
    /// path writes into (when sampled/forced) and `trace` reads out.
    tracer: Tracer,
    shutdown: AtomicBool,
    shards: usize,
    durable: bool,
    slow_ms: Option<u64>,
    binary_wire: bool,
}

/// A running integration service.
pub struct Server {
    addr: SocketAddr,
    http_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    ingest_tx: Option<Sender<Job>>,
    accept: Option<JoinHandle<()>>,
    worker: Option<JoinHandle<()>>,
    metrics_writer: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, recover any durable state, integrate any preload, and start
    /// serving. With a [`DurabilityConfig`], recovery loads the last
    /// snapshot (if present) and replays the WAL tail through the engine
    /// before the first connection is accepted — queries never observe a
    /// partially recovered catalog.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(cfg.addr.as_str())?;
        let addr = listener.local_addr()?;
        let registry = Registry::new();
        let tracer = Tracer::new();
        // slow-request logging doubles as slow-exemplar capture: force-
        // trace everything, retain only what crosses the threshold
        tracer.configure(cfg.trace_sample, cfg.slow_ms.is_some());
        let shared = Arc::new(Shared {
            current: Swap::new(Generation::empty(cfg.shards)),
            metrics: ServeMetrics::new(registry.clone()),
            tracer,
            shutdown: AtomicBool::new(false),
            shards: cfg.shards,
            durable: cfg.durability.is_some(),
            slow_ms: cfg.slow_ms,
            binary_wire: cfg.binary_wire,
        });

        let engine_threads = if cfg.engine_threads == 0 {
            bdi_linkage::parallel::default_threads()
        } else {
            cfg.engine_threads
        };
        let (mut engine, mut seq, mut durable) = match cfg.durability {
            Some(d) => {
                let (engine, seq, durable) = recover(d, cfg.threshold, engine_threads, &shared)?;
                (engine, seq, Some(durable))
            }
            None => (Engine::with_threads(cfg.threshold, engine_threads), 0, None),
        };
        engine.set_metrics(EngineMetrics::register(&registry));
        if seq > 0 || engine.records() > 0 {
            let n = engine.records() as u64;
            seq = seq.max(1);
            publish(&shared, &mut engine, seq);
            shared.metrics.submitted.store(n);
            shared.metrics.applied.store(n);
        }
        if !cfg.preload.is_empty() {
            let n = cfg.preload.len() as u64;
            for r in cfg.preload {
                if let Some(log) = &mut durable {
                    log.append(&r, &shared)?;
                }
                engine.ingest(r);
            }
            if let Some(log) = &mut durable {
                log.sync(&shared)?;
            }
            seq += 1;
            publish(&shared, &mut engine, seq);
            shared.metrics.submitted.add(n);
            shared.metrics.applied.add(n);
        }

        let (tx, rx) = bounded(cfg.queue_capacity.max(1));
        let worker = {
            let shared = Arc::clone(&shared);
            let opts = WorkerOpts {
                batch: cfg.refresh_batch.max(1),
                threshold: cfg.threshold,
                engine_threads,
            };
            std::thread::spawn(move || ingest_worker(engine, shared, rx, seq, durable, opts))
        };
        let http_listener = match &cfg.http_addr {
            Some(a) => Some(TcpListener::bind(a.as_str())?),
            None => None,
        };
        let http_addr = match &http_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let accept = match cfg.front_end {
            FrontEndKind::Readiness => {
                let mut listeners = vec![listener];
                listeners.extend(http_listener);
                let service = Arc::new(ServeService {
                    shared: Arc::clone(&shared),
                    tx: tx.clone(),
                    addr,
                });
                nio::spawn_front_end(listeners, service, &registry, "serve", cfg.workers)?
            }
            FrontEndKind::Threaded => {
                // a dedicated HTTP port still gets a readiness loop of
                // its own, so `--http` works under either front-end
                if let Some(l) = http_listener {
                    let service = Arc::new(ServeService {
                        shared: Arc::clone(&shared),
                        tx: tx.clone(),
                        addr,
                    });
                    // joined transitively: it exits on the same
                    // shutdown flag the accept loop watches
                    nio::spawn_front_end(vec![l], service, &registry, "serve", cfg.workers)?;
                }
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::spawn(move || accept_loop(listener, addr, shared, tx))
            }
        };
        let metrics_writer = cfg.metrics_file.map(|path| {
            let shared = Arc::clone(&shared);
            let interval = cfg.metrics_interval.max(Duration::from_millis(100));
            std::thread::spawn(move || metrics_file_writer(path, shared, interval))
        });
        Ok(Server {
            addr,
            http_addr,
            shared,
            ingest_tx: Some(tx),
            accept: Some(accept),
            worker: Some(worker),
            metrics_writer,
        })
    }

    /// A point-in-time snapshot of the server's metrics registry — what
    /// the `metrics` wire command returns, without a connection.
    pub fn metrics(&self) -> RegistrySnapshot {
        self.shared.metrics.registry.snapshot()
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound dedicated-HTTP address, when
    /// [`ServerConfig::http_addr`] was set. The main [`Server::addr`]
    /// also answers HTTP under the readiness front-end.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// The published generation readers currently see.
    pub fn generation(&self) -> u64 {
        self.shared.current.load().seq
    }

    /// Request shutdown and wait for the accept loop and ingest worker
    /// to drain. Open connections must be closed by their clients (a
    /// handler holding an ingest sender keeps the worker alive).
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // unblock the accept loop
        let _ = TcpStream::connect(self.addr);
        self.join();
    }

    /// Block until a client issues `shutdown` (which stops the accept
    /// loop) and the ingest worker drains. This is what `bdi serve`
    /// parks on.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        drop(self.ingest_tx.take());
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
        // the writer exits on the shutdown flag (set by both shutdown
        // paths before join) after one final rewrite
        if let Some(h) = self.metrics_writer.take() {
            let _ = h.join();
        }
    }
}

/// Rewrite `path` with the Prometheus exposition of the registry every
/// `interval` until shutdown, then once more on the way out. Each
/// rewrite is atomic (tmp + rename) so a scraper never reads a torn
/// exposition.
fn metrics_file_writer(path: PathBuf, shared: Arc<Shared>, interval: Duration) {
    let write = |shared: &Shared| {
        let text = shared.metrics.registry.snapshot().to_prometheus();
        let tmp = match path.file_name() {
            Some(name) => {
                let mut tmp_name = name.to_os_string();
                tmp_name.push(".tmp");
                path.with_file_name(tmp_name)
            }
            None => return, // unusable path; nothing sane to write
        };
        let result = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = result {
            eprintln!("bdi-serve: metrics file write failed: {e}");
        }
    };
    write(&shared);
    let tick = Duration::from_millis(50);
    let mut since_write = Duration::ZERO;
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        since_write += tick;
        if since_write >= interval {
            write(&shared);
            since_write = Duration::ZERO;
        }
    }
    write(&shared);
}

/// The worker's durability handle: the open WAL plus the policy knobs.
struct DurableLog {
    wal: Wal,
    data_dir: PathBuf,
    sync_every: u64,
    snapshot_every: u64,
}

impl DurableLog {
    /// Append one record (buffered) and mirror the position into stats.
    fn append(&mut self, record: &Record, shared: &Shared) -> std::io::Result<()> {
        self.wal.append(record)?;
        shared.metrics.wal_position.set(self.wal.position());
        shared.metrics.wal_tail.set(self.wal.tail_len());
        Ok(())
    }

    /// Group-append a whole batch (one staged write per segment, one
    /// append-latency sample) and mirror the position into stats once.
    fn append_batch(&mut self, records: &[Record], shared: &Shared) -> std::io::Result<()> {
        self.wal.append_batch(records)?;
        shared.metrics.wal_position.set(self.wal.position());
        shared.metrics.wal_tail.set(self.wal.tail_len());
        Ok(())
    }

    /// Force an fsync and mirror the synced position into stats.
    fn sync(&mut self, shared: &Shared) -> std::io::Result<()> {
        self.wal.sync()?;
        shared.metrics.wal_synced.set(self.wal.synced());
        Ok(())
    }

    /// fsync when the batch policy says so (or the queue has drained, so
    /// a quiescent server is always fully durable). Returns whether a
    /// sync actually ran — the worker hangs the `wal.fsync` span on it.
    fn sync_if_due(&mut self, queue_empty: bool, shared: &Shared) -> std::io::Result<bool> {
        if self.wal.pending_sync() >= self.sync_every.max(1)
            || (queue_empty && self.wal.pending_sync() > 0)
        {
            self.sync(shared)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Snapshot the engine and compact the WAL when the tail has grown
    /// past the policy bound (or unconditionally, at shutdown).
    fn snapshot_if_due(
        &mut self,
        engine: &Engine,
        seq: u64,
        force: bool,
        shared: &Shared,
    ) -> std::io::Result<()> {
        if !force && self.wal.tail_len() < self.snapshot_every.max(1) {
            return Ok(());
        }
        self.sync(shared)?;
        let snapshot = Snapshot::capture(engine, seq);
        let covered = snapshot.records;
        let took = snapshot.write_timed(&self.data_dir)?;
        shared.metrics.snapshot_write_ns.record_duration(took);
        self.wal.compact_through(covered)?;
        shared.metrics.snapshot_records.set(covered);
        shared.metrics.snapshot_generation.set(seq);
        shared.metrics.wal_tail.set(self.wal.tail_len());
        Ok(())
    }
}

/// Rebuild the engine from the data directory: snapshot load (exact
/// state, no re-linking) plus a WAL-tail replay through the incremental
/// linker. Returns the recovered engine, the generation to publish it
/// at, and the opened log positioned for appending.
fn recover(
    cfg: DurabilityConfig,
    threshold: f64,
    engine_threads: usize,
    shared: &Shared,
) -> std::io::Result<(Engine, u64, DurableLog)> {
    let (mut engine, mut seq, covered) = match Snapshot::load(&cfg.data_dir)? {
        Some(snapshot) => snapshot.restore_engine()?,
        None => (Engine::with_threads(threshold, engine_threads), 0, 0),
    };
    let opened = Wal::open(&cfg.data_dir)?;
    let mut wal = opened.wal;
    wal.set_metrics(WalMetrics::register(&shared.metrics.registry));
    // Entries below the snapshot position are already inside the engine
    // (a crash between snapshot and compaction leaves such overlap);
    // replay strictly the tail so nothing is applied twice.
    let t0 = Instant::now();
    let mut replayed = 0u64;
    for (pos, record) in opened.entries {
        if pos < covered {
            continue;
        }
        if catch_unwind(AssertUnwindSafe(|| engine.ingest(record))).is_err() {
            shared.metrics.rejected.inc();
        }
        replayed += 1;
    }
    if replayed > 0 {
        seq += 1;
        shared.metrics.recovery_replayed.add(replayed);
        shared
            .metrics
            .recovery_replay_ns
            .record_duration(t0.elapsed());
    }
    if wal.position() < covered {
        // The log was lost or started fresh behind the snapshot; re-base
        // it so future appends get positions past the covered prefix.
        wal.compact_through(covered)?;
    }
    shared.metrics.wal_position.set(wal.position());
    shared.metrics.wal_synced.set(wal.synced());
    shared.metrics.wal_tail.set(wal.tail_len());
    shared.metrics.snapshot_records.set(covered);
    shared.metrics.snapshot_generation.set(seq);
    Ok((
        engine,
        seq,
        DurableLog {
            wal,
            data_dir: cfg.data_dir,
            sync_every: cfg.sync_every as u64,
            snapshot_every: cfg.snapshot_every,
        },
    ))
}

/// Publish the engine's current state as the next generation. The
/// catalog `Arc` comes straight from [`Engine::refresh`] — the engine's
/// retained refresh base and the published generation share one
/// allocation, so publishing never copies the catalog.
fn publish(shared: &Shared, engine: &mut Engine, seq: u64) {
    let _span = shared.metrics.publish_ns.span();
    let catalog = engine.refresh();
    let index = ShardedIndex::build(&catalog, shared.shards);
    shared.metrics.comparisons.store(engine.comparisons());
    shared.metrics.pruned_root.store(engine.pruned_root());
    shared.metrics.pruned_bound.store(engine.pruned_bound());
    shared
        .metrics
        .postings_skipped
        .store(engine.postings_skipped());
    shared.metrics.generation.set(seq);
    shared.metrics.products.set(catalog.len() as u64);
    shared.metrics.records.set(engine.records() as u64);
    shared.current.store(Arc::new(Generation {
        seq,
        catalog,
        index,
        records: engine.records(),
    }));
}

/// Apply one record, converting a panic anywhere down the linkage /
/// fusion stack into a counted rejection instead of a dead worker.
/// A traced record additionally gets an `engine.insert` span whose
/// children break the insert into its candidate / score / fuse stages
/// (synthesized from [`crate::engine::Engine::ingest_timed`]'s stage
/// timings, laid end to end under the insert span).
fn apply_record(engine: &mut Engine, record: Record, ctx: Option<TraceContext>, shared: &Shared) {
    let Some(ctx) = ctx else {
        if catch_unwind(AssertUnwindSafe(|| engine.ingest(record))).is_err() {
            shared.metrics.rejected.inc();
        }
        return;
    };
    let tracer = &shared.tracer;
    let start = tracer.now_ns();
    match catch_unwind(AssertUnwindSafe(|| engine.ingest_timed(record))) {
        Err(_) => {
            shared.metrics.rejected.inc();
            tracer.record(
                ctx,
                "engine.insert",
                start,
                tracer.now_ns(),
                &[("panicked", 1)],
            );
        }
        Ok((_, timings)) => {
            let end = tracer.now_ns();
            let insert = tracer.record(ctx, "engine.insert", start, end, &[]);
            let stage_ctx = TraceContext {
                trace: ctx.trace,
                parent: insert,
            };
            let mut t = start;
            for (name, ns) in [
                ("engine.candidates", timings.candidates_ns),
                ("engine.score", timings.scoring_ns),
                ("engine.fuse", timings.union_ns),
            ] {
                tracer.record(stage_ctx, name, t, t + ns, &[]);
                t += ns;
            }
        }
    }
}

/// Append one record to the WAL, with a `wal.append` span when the
/// record rode in on a traced request.
fn append_traced(
    log: &mut DurableLog,
    record: &Record,
    ctx: Option<TraceContext>,
    shared: &Shared,
) -> std::io::Result<()> {
    let Some(ctx) = ctx else {
        return log.append(record, shared);
    };
    let t0 = shared.tracer.now_ns();
    let result = log.append(record, shared);
    shared
        .tracer
        .record(ctx, "wal.append", t0, shared.tracer.now_ns(), &[]);
    result
}

/// One transactional batch cycle — the engine-side half of the wire
/// `ingest_batch` fast path. The whole batch is group-appended to the
/// WAL (write-ahead, before any record applies), applied in order, and
/// published once, so an N-record batch pays one append call, one
/// fsync decision, and one refresh instead of N. The batch becomes
/// visible atomically: readers see either none of it or all of it.
///
/// Untraced batches take [`Engine::ingest_batch`] whole; a traced
/// batch applies per-record under an `engine.batch` span so every
/// record still gets its `engine.insert` span and stage children.
/// Both routes run the identical per-record insert, so the resulting
/// state cannot depend on which one ran.
fn batch_cycle(
    records: Vec<Record>,
    ctx: Option<TraceContext>,
    engine: &mut Engine,
    seq: &mut u64,
    durable: &mut Option<DurableLog>,
    shared: &Shared,
    rx: &Receiver<Job>,
) {
    let n = records.len() as u64;
    if n == 0 {
        return;
    }
    if let Some(log) = durable.as_mut() {
        let t0 = ctx.map(|_| shared.tracer.now_ns());
        if let Err(e) = log.append_batch(&records, shared) {
            log_io_error(e);
        }
        if let (Some(ctx), Some(t0)) = (ctx, t0) {
            shared.tracer.record(
                ctx,
                "wal.append",
                t0,
                shared.tracer.now_ns(),
                &[("records", n)],
            );
        }
    }
    match ctx {
        None => {
            let (_, rejected) = engine.ingest_batch(records);
            if rejected > 0 {
                shared.metrics.rejected.add(rejected);
            }
        }
        Some(ctx) => {
            let mut span = shared
                .tracer
                .begin(Some(ctx), "engine.batch")
                .expect("ctx is Some");
            span.attr("records", n);
            let child = span.ctx();
            for record in records {
                apply_record(engine, record, Some(child), shared);
            }
            shared.tracer.finish(span);
        }
    }
    if let Some(log) = durable.as_mut() {
        let t0 = shared.tracer.now_ns();
        match log.sync_if_due(rx.is_empty(), shared) {
            Err(e) => log_io_error(e),
            Ok(true) => {
                if let Some(ctx) = ctx {
                    shared.tracer.record(
                        ctx,
                        "wal.fsync",
                        t0,
                        shared.tracer.now_ns(),
                        &[("group", 1)],
                    );
                }
            }
            Ok(false) => {}
        }
    }
    *seq += 1;
    let t0 = shared.tracer.now_ns();
    publish(shared, engine, *seq);
    if let Some(ctx) = ctx {
        shared.tracer.record(
            ctx,
            "publish",
            t0,
            shared.tracer.now_ns(),
            &[("records", n)],
        );
    }
    shared.metrics.applied.add(n);
    if let Some(log) = durable.as_mut() {
        if let Err(e) = log.snapshot_if_due(engine, *seq, false, shared) {
            log_io_error(e);
        }
    }
}

/// Worker knobs beyond the engine itself: the per-cycle batch bound
/// plus what a snapshot-less `restore` needs to build a fresh engine.
struct WorkerOpts {
    batch: usize,
    threshold: f64,
    engine_threads: usize,
}

fn log_io_error(e: std::io::Error) {
    // Durability degraded, service continues: surface loudly, and
    // stats keep reporting the stale synced position.
    eprintln!("bdi-serve: WAL error (durability degraded): {e}");
}

fn ingest_worker(
    mut engine: Engine,
    shared: Arc<Shared>,
    rx: Receiver<Job>,
    mut seq: u64,
    mut durable: Option<DurableLog>,
    opts: WorkerOpts,
) {
    // trace contexts of this batch's traced records: the group-commit
    // fsync and the publish are shared work, so their spans are
    // recorded once per traced requester
    let mut traced: Vec<TraceContext> = Vec::new();
    while let Ok(job) = rx.recv() {
        let first = match job {
            Job::Record(r, ctx) => {
                traced.clear();
                traced.extend(ctx);
                r
            }
            Job::Batch(records, ctx) => {
                batch_cycle(
                    records,
                    ctx,
                    &mut engine,
                    &mut seq,
                    &mut durable,
                    &shared,
                    &rx,
                );
                continue;
            }
            control_job => {
                control(
                    control_job,
                    &mut engine,
                    &mut seq,
                    &mut durable,
                    &shared,
                    &opts,
                );
                continue;
            }
        };
        let mut n = 1u64;
        // a control job pulled mid-batch waits until the batch's records
        // are applied and published — queue order is preserved
        let mut pending: Option<Job> = None;
        let first_ctx = traced.first().copied();
        if let Some(log) = &mut durable {
            if let Err(e) = append_traced(log, &first, first_ctx, &shared) {
                log_io_error(e);
            }
        }
        apply_record(&mut engine, first, first_ctx, &shared);
        while (n as usize) < opts.batch {
            match rx.try_recv() {
                Ok(Job::Record(r, ctx)) => {
                    if let Some(log) = &mut durable {
                        if let Err(e) = append_traced(log, &r, ctx, &shared) {
                            log_io_error(e);
                        }
                    }
                    apply_record(&mut engine, r, ctx, &shared);
                    traced.extend(ctx);
                    n += 1;
                }
                Ok(control_job) => {
                    pending = Some(control_job);
                    break;
                }
                Err(_) => break,
            }
        }
        // write-ahead before publish: a record is only announced as
        // applied once its WAL bytes are (batch-policy) durable
        if let Some(log) = &mut durable {
            let t0 = shared.tracer.now_ns();
            match log.sync_if_due(rx.is_empty(), &shared) {
                Err(e) => log_io_error(e),
                Ok(true) => {
                    let t1 = shared.tracer.now_ns();
                    let batched = traced.len() as u64;
                    for ctx in &traced {
                        shared
                            .tracer
                            .record(*ctx, "wal.fsync", t0, t1, &[("group", batched)]);
                    }
                }
                Ok(false) => {}
            }
        }
        seq += 1;
        let t0 = shared.tracer.now_ns();
        publish(&shared, &mut engine, seq);
        if !traced.is_empty() {
            let t1 = shared.tracer.now_ns();
            for ctx in traced.drain(..) {
                shared
                    .tracer
                    .record(ctx, "publish", t0, t1, &[("records", n)]);
            }
        }
        // applied counts only after the records are queryable
        shared.metrics.applied.add(n);
        if let Some(log) = &mut durable {
            if let Err(e) = log.snapshot_if_due(&engine, seq, false, &shared) {
                log_io_error(e);
            }
        }
        if let Some(job) = pending.take() {
            match job {
                Job::Batch(records, ctx) => batch_cycle(
                    records,
                    ctx,
                    &mut engine,
                    &mut seq,
                    &mut durable,
                    &shared,
                    &rx,
                ),
                job => control(job, &mut engine, &mut seq, &mut durable, &shared, &opts),
            }
        }
    }
    // graceful drain: leave a clean snapshot and an empty tail so the
    // next start skips replay entirely
    if let Some(log) = &mut durable {
        if let Err(e) = log.snapshot_if_due(&engine, seq, true, &shared) {
            log_io_error(e);
        }
    }
}

/// Handle one control job on the worker thread, where exclusive engine
/// and WAL access is free. Replies go back through the job's own
/// channel; a send failure just means the requesting handler went away.
fn control(
    job: Job,
    engine: &mut Engine,
    seq: &mut u64,
    durable: &mut Option<DurableLog>,
    shared: &Shared,
    opts: &WorkerOpts,
) {
    match job {
        Job::Record(..) => unreachable!("records take the batching path"),
        Job::Batch(..) => unreachable!("batches take their own cycle"),
        Job::Sync { from, reply } => {
            let response = handle_sync(from, engine, *seq, durable, shared).unwrap_or_else(|e| {
                Response::Error {
                    message: format!("sync failed: {e}"),
                }
            });
            let _ = reply.send(response);
        }
        Job::Restore(job) => {
            let RestoreJob {
                snapshot,
                tail,
                position,
                reply,
            } = *job;
            let response =
                handle_restore(snapshot, tail, position, engine, seq, durable, shared, opts)
                    .unwrap_or_else(|e| Response::Error {
                        message: format!("restore failed: {e}"),
                    });
            let _ = reply.send(response);
        }
    }
}

/// Build the `sync` reply: a consistent cut of this backend's stream.
/// With a WAL whose retained window still covers `from`, ship the tail
/// alone (cheap delta); otherwise — compacted past `from`, or an
/// in-memory server with no journal at all — ship a full snapshot.
fn handle_sync(
    from: u64,
    engine: &Engine,
    seq: u64,
    durable: &mut Option<DurableLog>,
    shared: &Shared,
) -> std::io::Result<Response> {
    if let Some(log) = durable {
        // everything applied so far must be on disk before it is shipped
        log.sync(shared)?;
        if from >= log.wal.base() && from <= log.wal.position() {
            let tail = crate::wal::replay_from(&log.data_dir, from)?;
            return Ok(Response::SyncState {
                position: log.wal.position(),
                snapshot: None,
                tail,
            });
        }
    }
    let snapshot = Snapshot::capture(engine, seq);
    Ok(Response::SyncState {
        position: snapshot.records,
        snapshot: Some(snapshot),
        tail: Vec::new(),
    })
}

/// Install shipped state: rebuild the engine from the snapshot (or
/// fresh, for a tail-only ship), replay the tail, adopt `position` as
/// the applied count, and publish. Durable backends reset their journal
/// to `position` and write a covering snapshot, so a restart recovers
/// the restored state, not the pre-restore one. Not crash-atomic: a
/// backend that dies mid-restore must be bootstrapped again.
#[allow(clippy::too_many_arguments)]
fn handle_restore(
    snapshot: Option<Snapshot>,
    tail: Vec<Record>,
    position: u64,
    engine: &mut Engine,
    seq: &mut u64,
    durable: &mut Option<DurableLog>,
    shared: &Shared,
    opts: &WorkerOpts,
) -> std::io::Result<Response> {
    let mut fresh = match snapshot {
        Some(s) => s.restore_engine()?.0,
        None => Engine::with_threads(opts.threshold, opts.engine_threads),
    };
    fresh.set_metrics(EngineMetrics::register(&shared.metrics.registry));
    for r in tail {
        if catch_unwind(AssertUnwindSafe(|| fresh.ingest(r))).is_err() {
            shared.metrics.rejected.inc();
        }
    }
    *engine = fresh;
    *seq += 1;
    publish(shared, engine, *seq);
    shared.metrics.submitted.store(position);
    shared.metrics.applied.store(position);
    if let Some(log) = durable {
        log.wal.rebase(position)?;
        let snap = Snapshot::capture(engine, *seq);
        let covered = snap.records;
        let took = snap.write_timed(&log.data_dir)?;
        shared.metrics.snapshot_write_ns.record_duration(took);
        shared.metrics.snapshot_records.set(covered);
        shared.metrics.snapshot_generation.set(*seq);
        shared.metrics.wal_position.set(log.wal.position());
        shared.metrics.wal_synced.set(log.wal.synced());
        shared.metrics.wal_tail.set(log.wal.tail_len());
    }
    Ok(Response::Restored {
        generation: *seq,
        records: engine.records() as u64,
    })
}

/// The backend as a [`nio::Service`]: stateless per connection (every
/// query runs against whatever generation is published), both
/// protocols funneling into the same [`dispatch`].
struct ServeService {
    shared: Arc<Shared>,
    tx: Sender<Job>,
    addr: SocketAddr,
}

impl nio::Service for ServeService {
    type Conn = ();

    fn new_conn(&self) {}

    fn handle_line(&self, _conn: &mut (), line: &str, meta: &nio::RequestMeta) -> (String, bool) {
        handle_line(line, &self.shared, &self.tx, self.addr, meta)
    }

    fn handle_frame(&self, _conn: &mut (), raw: &[u8], meta: &nio::RequestMeta) -> (Vec<u8>, bool) {
        handle_frame(raw, &self.shared, &self.tx, meta)
    }

    fn handle_http(
        &self,
        _conn: &mut (),
        req: http::HttpRequest,
        meta: &nio::RequestMeta,
    ) -> http::HttpResponse {
        http::respond(
            &req,
            &self.shared.metrics.http,
            &self.shared.tracer,
            meta.queued_ns,
            |request, ctx| {
                catch_unwind(AssertUnwindSafe(|| {
                    dispatch(request, &self.shared, &self.tx, self.addr, ctx)
                }))
                .unwrap_or_else(|_| Response::Error {
                    message: "internal error: request handler panicked".to_string(),
                })
            },
        )
    }

    fn shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// The one slow-request log line both wire handlers share (the two
/// front-ends and both formats funnel here, so the format can't
/// drift): command, latency, payload size, generation, peer, and — when
/// the request was traced — the trace id, which is simultaneously
/// retained in the flight recorder so `trace <id>` resolves exactly the
/// requests this log names.
fn note_slow(
    shared: &Shared,
    kind: &str,
    elapsed: Duration,
    bytes: usize,
    peer: Option<SocketAddr>,
    trace: Option<u64>,
) {
    let Some(threshold_ms) = shared.slow_ms else {
        return;
    };
    let elapsed_ms = elapsed.as_millis() as u64;
    if elapsed_ms < threshold_ms {
        return;
    }
    let peer = match peer {
        Some(p) => p.to_string(),
        None => "-".to_string(),
    };
    let trace = match trace {
        Some(t) => {
            // keep the slow exemplar's full span tree readable after
            // the ring wraps
            shared.tracer.retain(t);
            format!("{t:016x}")
        }
        None => "-".to_string(),
    };
    eprintln!(
        "bdi-serve: slow-request cmd={kind} elapsed_ms={elapsed_ms} \
         bytes={bytes} generation={} peer={peer} trace={trace}",
        shared.current.load().seq,
    );
}

/// Mint the `serve.request` span for one wire request: adopt the
/// caller's context when it propagated one (always recorded — the
/// sampling decision was made upstream), otherwise let the head sampler
/// decide. A traced request that waited in the front-end's dispatch
/// queue also gets a synthetic `queue.wait` child covering the wait.
fn request_span(
    shared: &Shared,
    inbound: Option<TraceContext>,
    kind: &'static str,
    meta: &nio::RequestMeta,
) -> Option<bdi_obs::ActiveSpan> {
    let mut span = match inbound {
        Some(ctx) => Some(shared.tracer.adopt(ctx, "serve.request")),
        None => shared.tracer.root("serve.request").map(|r| r.span),
    }?;
    span.set_cmd(kind);
    if meta.queued_ns > 0 {
        let start = span.start_ns().saturating_sub(meta.queued_ns);
        shared
            .tracer
            .record(span.ctx(), "queue.wait", start, span.start_ns(), &[]);
    }
    Some(span)
}

/// Handle one JSON-lines request: parse, meter, dispatch (panics
/// answered as errors), serialize. Returns the response line (no
/// trailing newline) and whether the connection should close after it.
/// Both front-ends call this, which is what keeps their output
/// byte-identical.
fn handle_line(
    line: &str,
    shared: &Shared,
    tx: &Sender<Job>,
    addr: SocketAddr,
    meta: &nio::RequestMeta,
) -> (String, bool) {
    // an optional `trace` envelope prefixes the request with the
    // caller's context — detectable from the leading key, so plain
    // requests never pay a second parse
    let (inbound, parsed) = if line.starts_with("{\"traced\"") {
        match serde_json::from_str::<TracedRequest>(line) {
            Ok(t) => {
                let ctx = (t.trace.id != 0).then(|| t.trace.ctx());
                (ctx, Ok(t.request))
            }
            Err(e) => (None, Err(e)),
        }
    } else {
        (None, serde_json::from_str::<Request>(line))
    };
    let response = match parsed {
        Err(e) => {
            shared.metrics.request_errors.inc();
            Response::Error {
                message: format!("bad request: {e}"),
            }
        }
        Ok(request) => {
            let kind = request.kind();
            let slot = command_slot(kind);
            shared.metrics.request_bytes[slot].record(line.len() as u64);
            let span = request_span(shared, inbound, kind, meta);
            let ctx = span.as_ref().map(|s| s.ctx());
            let trace_id = span.as_ref().map(|s| s.trace_id());
            // a panic anywhere under dispatch (a malformed-but-
            // parseable request tripping a deep invariant) answers
            // this one request with an error instead of tearing
            // down the connection
            let t0 = Instant::now();
            let response = catch_unwind(AssertUnwindSafe(|| {
                dispatch(request, shared, tx, addr, ctx)
            }))
            .unwrap_or_else(|_| Response::Error {
                message: "internal error: request handler panicked".to_string(),
            });
            let elapsed = t0.elapsed();
            if let Some(span) = span {
                shared.tracer.finish(span);
            }
            shared.metrics.request_ns[slot].record_duration(elapsed);
            if matches!(response, Response::Error { .. }) {
                shared.metrics.request_errors.inc();
            }
            note_slow(shared, kind, elapsed, line.len(), meta.peer, trace_id);
            response
        }
    };
    let close = matches!(response, Response::Bye);
    let body = serde_json::to_string(&response).unwrap_or_else(|_| {
        "{\"error\":{\"message\":\"internal error: response serialization failed\"}}".to_string()
    });
    (body, close)
}

/// Handle one binary frame: validate, meter, dispatch (panics answered
/// as error frames), encode the reply frame. The binary twin of
/// [`handle_line`] — both front-ends call this, so replies are
/// byte-identical across them.
fn handle_frame(
    raw: &[u8],
    shared: &Shared,
    tx: &Sender<Job>,
    meta: &nio::RequestMeta,
) -> (Vec<u8>, bool) {
    let mut out = Vec::new();
    if !shared.binary_wire {
        // this node never advertised `binary-frames`; a frame here is a
        // peer that skipped negotiation, and the stream past it cannot
        // be trusted to re-synchronize
        shared.metrics.request_errors.inc();
        frame::encode_error(&mut out, "binary frames are disabled on this server");
        return (out, true);
    }
    let (opcode, wire_trace, payload) = match frame::open_frame_traced(raw) {
        Ok(parts) => parts,
        Err(e) => {
            shared.metrics.request_errors.inc();
            frame::encode_error(&mut out, &format!("bad frame: {e}"));
            return (out, true);
        }
    };
    let kind = match opcode {
        frame::OP_INGEST_BATCH => "ingest_batch",
        frame::OP_FLUSH => "flush",
        frame::OP_SYNC => "sync",
        frame::OP_RESTORE => "restore",
        other => {
            shared.metrics.request_errors.inc();
            frame::encode_error(&mut out, &format!("unexpected request opcode {other:#04x}"));
            return (out, false);
        }
    };
    let inbound = wire_trace
        .filter(|&(trace, _)| trace != 0)
        .map(|(trace, parent)| TraceContext { trace, parent });
    let slot = command_slot(kind);
    shared.metrics.request_bytes[slot].record(raw.len() as u64);
    let span = request_span(shared, inbound, kind, meta);
    let ctx = span.as_ref().map(|s| s.ctx());
    let trace_id = span.as_ref().map(|s| s.trace_id());
    let t0 = Instant::now();
    let response = match catch_unwind(AssertUnwindSafe(|| {
        dispatch_frame(opcode, payload, shared, tx, ctx)
    })) {
        Ok(Ok(response)) => response,
        Ok(Err(e)) => Response::Error {
            message: format!("bad request: {e}"),
        },
        Err(_) => Response::Error {
            message: "internal error: request handler panicked".to_string(),
        },
    };
    let elapsed = t0.elapsed();
    if let Some(span) = span {
        shared.tracer.finish(span);
    }
    shared.metrics.request_ns[slot].record_duration(elapsed);
    if matches!(response, Response::Error { .. }) {
        shared.metrics.request_errors.inc();
    }
    note_slow(shared, kind, elapsed, raw.len(), meta.peer, trace_id);
    if !frame::encode_response(&mut out, &response) {
        frame::encode_error(&mut out, "internal error: unencodable binary reply");
    }
    (out, false)
}

/// Dispatch one binary request. Each arm mirrors the corresponding
/// [`dispatch`] arm exactly — only the decode differs, so the two
/// formats can never diverge in behavior.
fn dispatch_frame(
    opcode: u8,
    payload: &[u8],
    shared: &Shared,
    tx: &Sender<Job>,
    ctx: Option<TraceContext>,
) -> std::io::Result<Response> {
    let mut r = frame::Reader::new(payload);
    let trailing = |r: &frame::Reader| -> std::io::Result<()> {
        if r.remaining() == 0 {
            Ok(())
        } else {
            Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{} trailing bytes after request payload", r.remaining()),
            ))
        }
    };
    Ok(match opcode {
        frame::OP_INGEST_BATCH => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Ok(Response::Error {
                    message: "shutting down".to_string(),
                });
            }
            let records = frame::read_records(&mut r)?;
            trailing(&r)?;
            shared
                .metrics
                .ingest_batch_records
                .record(records.len() as u64);
            // one job for the whole batch: the worker appends and
            // applies it as a single transactional cycle
            let n = records.len() as u64;
            if n > 0 {
                if tx.send(Job::Batch(records, ctx)).is_err() {
                    return Ok(Response::Error {
                        message: "ingest queue closed".to_string(),
                    });
                }
                shared.metrics.submitted.add(n);
            }
            Response::Ack {
                submitted: shared.metrics.submitted.get(),
            }
        }
        frame::OP_FLUSH => {
            trailing(&r)?;
            let target = shared.metrics.submitted.get();
            while shared.metrics.applied.get() < target {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_micros(500));
            }
            let current = shared.current.load();
            Response::Flushed {
                generation: current.seq,
                applied: shared.metrics.applied.get(),
            }
        }
        frame::OP_SYNC => {
            let from = r.read_u64()?;
            trailing(&r)?;
            let (reply, reply_rx) = bounded(1);
            if tx.send(Job::Sync { from, reply }).is_err() {
                return Ok(Response::Error {
                    message: "ingest queue closed".to_string(),
                });
            }
            reply_rx.recv().unwrap_or_else(|_| Response::Error {
                message: "sync worker unavailable".to_string(),
            })
        }
        frame::OP_RESTORE => {
            let (position, snapshot, tail) = frame::read_state_body(&mut r)?;
            trailing(&r)?;
            let (reply, reply_rx) = bounded(1);
            let job = Job::Restore(Box::new(RestoreJob {
                snapshot,
                tail,
                position,
                reply,
            }));
            if tx.send(job).is_err() {
                return Ok(Response::Error {
                    message: "ingest queue closed".to_string(),
                });
            }
            reply_rx.recv().unwrap_or_else(|_| Response::Error {
                message: "restore worker unavailable".to_string(),
            })
        }
        other => unreachable!("opcode {other:#04x} filtered by the caller"),
    })
}

fn accept_loop(listener: TcpListener, addr: SocketAddr, shared: Arc<Shared>, tx: Sender<Job>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // EMFILE and friends: this listener keeps failing until an
            // fd frees up, so back off instead of spinning on it
            Err(_) => {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        let shared = Arc::clone(&shared);
        let tx = tx.clone();
        std::thread::spawn(move || handle_connection(stream, addr, shared, tx));
    }
}

fn handle_connection(stream: TcpStream, addr: SocketAddr, shared: Arc<Shared>, tx: Sender<Job>) {
    // one small JSON line per response: never hold it back for Nagle
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    shared.metrics.conn_accepted.inc();
    shared.metrics.conn_open.inc();
    // requests are handled inline here, so there is no queue wait
    let meta = nio::RequestMeta::direct(stream.peer_addr().ok());
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    let mut raw = Vec::new();
    loop {
        // peek one byte to pick this request's format — the same
        // per-message autodetect the readiness front-end does
        let first = match reader.fill_buf() {
            Ok([]) => break, // EOF
            Ok(buf) => buf[0],
            Err(_) => break,
        };
        let (bytes, done) = if first == frame::FRAME_MAGIC {
            if frame::read_frame(&mut reader, &mut raw).is_err() {
                break;
            }
            let (out, close) = handle_frame(&raw, &shared, &tx, &meta);
            (out, close)
        } else {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {}
                Err(_) => break, // invalid UTF-8 tears the conn down
            }
            // strip the terminator the way `BufRead::lines` does
            if line.ends_with('\n') {
                line.pop();
                if line.ends_with('\r') {
                    line.pop();
                }
            }
            if line.trim().is_empty() {
                continue;
            }
            let (body, close) = handle_line(&line, &shared, &tx, addr, &meta);
            let mut out = body.into_bytes();
            out.push(b'\n');
            (out, close)
        };
        if writer
            .write_all(&bytes)
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if done || shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    shared.metrics.conn_open.dec();
}

fn dispatch(
    request: Request,
    shared: &Shared,
    tx: &Sender<Job>,
    addr: SocketAddr,
    ctx: Option<TraceContext>,
) -> Response {
    match request {
        Request::Lookup { identifier } => {
            let current = shared.current.load();
            Response::Entry {
                generation: current.seq,
                entry: current.lookup(&identifier).cloned(),
            }
        }
        Request::Filter {
            attribute,
            min,
            max,
            limit,
        } => {
            let current = shared.current.load();
            let entries: Vec<_> = current
                .catalog
                .filter(&attribute, |v| {
                    v.base_magnitude().is_some_and(|m| {
                        min.is_none_or(|lo| m >= lo) && max.is_none_or(|hi| m <= hi)
                    })
                })
                .take(limit.unwrap_or(100))
                .cloned()
                .collect();
            Response::Entries {
                generation: current.seq,
                entries,
            }
        }
        Request::TopK { attribute, k } => {
            let current = shared.current.load();
            let entries: Vec<_> = current
                .catalog
                .top_k_by(&attribute, k)
                .into_iter()
                .cloned()
                .collect();
            Response::Entries {
                generation: current.seq,
                entries,
            }
        }
        Request::Ingest { record } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Response::Error {
                    message: "shutting down".to_string(),
                };
            }
            match tx.send(Job::Record(record, ctx)) {
                Ok(()) => Response::Ack {
                    submitted: shared.metrics.submitted.inc(),
                },
                Err(_) => Response::Error {
                    message: "ingest queue closed".to_string(),
                },
            }
        }
        Request::IngestBatch { records } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Response::Error {
                    message: "shutting down".to_string(),
                };
            }
            shared
                .metrics
                .ingest_batch_records
                .record(records.len() as u64);
            // one job for the whole batch: the worker appends and
            // applies it as a single transactional cycle; submitted
            // moves only after the enqueue succeeds so a concurrent
            // flush barriers correctly
            let n = records.len() as u64;
            if n > 0 {
                if tx.send(Job::Batch(records, ctx)).is_err() {
                    return Response::Error {
                        message: "ingest queue closed".to_string(),
                    };
                }
                shared.metrics.submitted.add(n);
            }
            Response::Ack {
                submitted: shared.metrics.submitted.get(),
            }
        }
        Request::Flush => {
            let target = shared.metrics.submitted.get();
            while shared.metrics.applied.get() < target {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_micros(500));
            }
            let current = shared.current.load();
            Response::Flushed {
                generation: current.seq,
                applied: shared.metrics.applied.get(),
            }
        }
        Request::Stats => {
            let current = shared.current.load();
            let m = &shared.metrics;
            let latency = COMMAND_KINDS
                .iter()
                .enumerate()
                .filter_map(|(slot, kind)| {
                    let snap = m.request_ns[slot].snapshot();
                    (snap.count > 0).then(|| {
                        (
                            (*kind).to_string(),
                            CommandLatency {
                                count: snap.count,
                                p50_us: snap.quantile(0.5) / 1_000,
                                p99_us: snap.quantile(0.99) / 1_000,
                            },
                        )
                    })
                })
                .collect();
            Response::Stats(StatsBody {
                generation: current.seq,
                products: current.catalog.len(),
                records: current.records,
                submitted: m.submitted.get(),
                applied: m.applied.get(),
                rejected: m.rejected.get(),
                comparisons: m.comparisons.get(),
                shards: shared.shards,
                durable: shared.durable,
                wal_position: m.wal_position.get(),
                wal_synced: m.wal_synced.get(),
                wal_tail: m.wal_tail.get(),
                snapshot_records: m.snapshot_records.get(),
                snapshot_generation: m.snapshot_generation.get(),
                latency: Some(latency),
            })
        }
        Request::Metrics => {
            Response::Metrics(MetricsBody::from(shared.metrics.registry.snapshot()))
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // unblock the accept loop so it observes the flag
            let _ = TcpStream::connect(addr);
            Response::Bye
        }
        Request::Hello => Response::Hello {
            version: PROTOCOL_VERSION,
            features: FEATURES
                .iter()
                .filter(|f| shared.binary_wire || **f != FEATURE_BINARY)
                .map(|f| (*f).to_string())
                .collect(),
        },
        Request::Sync { from } => {
            let (reply, reply_rx) = bounded(1);
            if tx.send(Job::Sync { from, reply }).is_err() {
                return Response::Error {
                    message: "ingest queue closed".to_string(),
                };
            }
            reply_rx.recv().unwrap_or_else(|_| Response::Error {
                message: "sync worker unavailable".to_string(),
            })
        }
        Request::Restore {
            snapshot,
            tail,
            position,
        } => {
            let (reply, reply_rx) = bounded(1);
            let job = Job::Restore(Box::new(RestoreJob {
                snapshot,
                tail,
                position,
                reply,
            }));
            if tx.send(job).is_err() {
                return Response::Error {
                    message: "ingest queue closed".to_string(),
                };
            }
            reply_rx.recv().unwrap_or_else(|_| Response::Error {
                message: "restore worker unavailable".to_string(),
            })
        }
        Request::Trace { id, recent } => {
            let tracer = &shared.tracer;
            let body = match id {
                Some(id) => TraceBody {
                    spans: tracer.spans(id).into_iter().map(SpanBody::from).collect(),
                    recent: Vec::new(),
                },
                None => TraceBody {
                    spans: Vec::new(),
                    recent: tracer.recent(recent.unwrap_or(16)),
                },
            };
            Response::Trace(body)
        }
        Request::Split { .. } | Request::Replace { .. } => Response::Error {
            message: "router-only command: issue it against `bdi route`, not a backend".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use bdi_types::{RecordId, SourceId, Value};

    fn rec(s: u32, q: u32, title: &str, id: &str, price: f64) -> Record {
        let mut r = Record::new(RecordId::new(SourceId(s), q), title);
        r.identifiers.push(id.into());
        r.attributes.insert("price".into(), Value::num(price));
        r
    }

    #[test]
    fn end_to_end_session() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();

        assert_eq!(
            client
                .ingest(rec(0, 0, "Lumetra LX-100 camera", "CAM-LUM-00100", 499.0))
                .unwrap(),
            1
        );
        client
            .ingest(rec(1, 0, "Lumetra LX-100", "camlum00100", 489.0))
            .unwrap();
        client
            .ingest(rec(0, 1, "Visionex V-900 monitor", "MON-VIS-00900", 199.0))
            .unwrap();
        let (generation, applied) = client.flush().unwrap();
        assert!(generation >= 1);
        assert_eq!(applied, 3);

        let entry = client
            .lookup("cam lum 00100")
            .unwrap()
            .expect("camera resolves");
        assert_eq!(entry.pages.len(), 2);

        let top = client.top_k("price", 5).unwrap();
        assert_eq!(top.len(), 2, "two products have a fused price");
        assert!(
            top[0].attributes["price"].base_magnitude()
                >= top[1].attributes["price"].base_magnitude()
        );

        let within = client
            .filter("price", Some(400.0), Some(600.0), None)
            .unwrap();
        assert_eq!(within.len(), 1);

        let stats = client.stats().unwrap();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.applied, 3);
        assert_eq!(stats.products, 2);
        assert_eq!(stats.records, 3);

        client.shutdown().unwrap();
        drop(client);
        server.shutdown();
    }

    #[test]
    fn preload_is_queryable_before_any_ingest() {
        let cfg = ServerConfig {
            preload: vec![
                rec(0, 0, "Lumetra LX-100 camera", "CAM-LUM-00100", 499.0),
                rec(1, 0, "Lumetra LX-100", "CAM-LUM-00100", 479.0),
            ],
            ..Default::default()
        };
        let server = Server::start(cfg).unwrap();
        assert_eq!(server.generation(), 1);
        let mut client = Client::connect(server.addr()).unwrap();
        let entry = client.lookup("CAM-LUM-00100").unwrap().expect("preloaded");
        assert_eq!(entry.pages.len(), 2);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn ingest_batch_applies_like_single_ingests() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let batch: Vec<Record> = (0..20u32)
            .map(|i| {
                rec(
                    i % 4,
                    i / 4,
                    &format!("Gadget{} model{}", i / 2, i / 2),
                    &format!("XXX-YYY-{:05}", i / 2),
                    f64::from(i),
                )
            })
            .collect();
        let submitted = client.ingest_batch(batch).unwrap();
        assert_eq!(submitted, 20, "one ack covers the whole batch");
        let (_, applied) = client.flush().unwrap();
        assert_eq!(applied, 20);
        let stats = client.stats().unwrap();
        assert_eq!(stats.records, 20);
        assert_eq!(stats.products, 10, "pairs linked across sources");
        // the batch-size histogram saw exactly one sample of 20
        let metrics = client.metrics().unwrap();
        let h = &metrics.histograms["serve.ingest.batch_records"];
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 20);
        // an empty batch is a no-op ack at the current counter
        assert_eq!(client.ingest_batch(Vec::new()).unwrap(), 20);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn tiny_queue_still_delivers_everything() {
        // queue capacity 1 forces the backpressure path on every send
        let cfg = ServerConfig {
            queue_capacity: 1,
            refresh_batch: 1,
            ..Default::default()
        };
        let server = Server::start(cfg).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        for i in 0..40u32 {
            client
                .ingest(rec(
                    i % 4,
                    i / 4,
                    &format!("Gadget{i} model{i}"),
                    &format!("XXX-YYY-{i:05}"),
                    f64::from(i),
                ))
                .unwrap();
        }
        let (_, applied) = client.flush().unwrap();
        assert_eq!(applied, 40);
        let stats = client.stats().unwrap();
        assert_eq!(stats.records, 40);
        drop(client);
        server.shutdown();
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bdi-srv-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_cfg(dir: &std::path::Path, sync_every: usize, snapshot_every: u64) -> ServerConfig {
        ServerConfig {
            durability: Some(DurabilityConfig {
                data_dir: dir.to_path_buf(),
                sync_every,
                snapshot_every,
            }),
            ..Default::default()
        }
    }

    #[test]
    fn durable_server_survives_graceful_restart() {
        let dir = tmp_dir("restart");
        {
            let server = Server::start(durable_cfg(&dir, 1, 4096)).unwrap();
            let mut client = Client::connect(server.addr()).unwrap();
            client
                .ingest(rec(0, 0, "Lumetra LX-100 camera", "CAM-LUM-00100", 499.0))
                .unwrap();
            client
                .ingest(rec(1, 0, "Lumetra LX-100", "camlum00100", 489.0))
                .unwrap();
            client
                .ingest(rec(0, 1, "Visionex V-900 monitor", "MON-VIS-00900", 199.0))
                .unwrap();
            client.flush().unwrap();
            let stats = client.stats().unwrap();
            assert!(stats.durable);
            assert_eq!(stats.wal_position, 3);
            assert_eq!(stats.wal_synced, 3, "sync_every=1 syncs every record");
            drop(client);
            server.shutdown();
        }
        // graceful drain snapshots + compacts: restart replays nothing
        let server = Server::start(durable_cfg(&dir, 1, 4096)).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.records, 3, "all records recovered");
        assert_eq!(stats.products, 2);
        assert_eq!(stats.snapshot_records, 3, "shutdown snapshot found");
        assert_eq!(stats.wal_tail, 0, "WAL compacted at shutdown");
        let entry = client.lookup("CAM-LUM-00100").unwrap().expect("recovered");
        assert_eq!(entry.pages.len(), 2);
        // the recovered engine keeps integrating: merge into the old cluster
        client
            .ingest(rec(2, 0, "Lumetra LX-100 pro", "CAM-LUM-00100", 509.0))
            .unwrap();
        client.flush().unwrap();
        let entry = client.lookup("cam lum 00100").unwrap().expect("merged");
        assert_eq!(entry.pages.len(), 3);
        drop(client);
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_only_recovery_without_snapshot() {
        let dir = tmp_dir("walonly");
        {
            let server = Server::start(durable_cfg(&dir, 1, 1_000_000)).unwrap();
            let mut client = Client::connect(server.addr()).unwrap();
            for i in 0..10u32 {
                client
                    .ingest(rec(
                        i % 2,
                        i / 2,
                        &format!("Gadget{} model{}", i / 2, i / 2),
                        &format!("XXX-YYY-{:05}", i / 2),
                        f64::from(i),
                    ))
                    .unwrap();
            }
            client.flush().unwrap();
            drop(client);
            // simulate a hard stop: drop the handles without shutdown();
            // the synced WAL on disk is all that survives
            std::mem::forget(server);
        }
        std::fs::remove_file(dir.join(crate::snapshot::SNAPSHOT_FILE)).ok();
        let server = Server::start(durable_cfg(&dir, 1, 1_000_000)).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.records, 10, "full WAL replay");
        assert_eq!(stats.products, 5, "pairs re-linked during replay");
        drop(client);
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compaction_bounds_the_tail() {
        let dir = tmp_dir("compaction");
        let cfg = ServerConfig {
            refresh_batch: 4,
            ..durable_cfg(&dir, 4, 8)
        };
        let server = Server::start(cfg).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        for i in 0..64u32 {
            client
                .ingest(rec(
                    i % 4,
                    i / 4,
                    &format!("Gadget{i} model{i}"),
                    &format!("XXX-YYY-{i:05}"),
                    f64::from(i),
                ))
                .unwrap();
        }
        client.flush().unwrap();
        let stats = client.stats().unwrap();
        assert!(stats.snapshot_records > 0, "snapshot triggered");
        assert!(
            stats.wal_tail < 64,
            "tail bounded by compaction, got {}",
            stats.wal_tail
        );
        assert_eq!(stats.wal_position, 64);
        drop(client);
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_readers_see_consistent_generations() {
        let server = Server::start(ServerConfig {
            refresh_batch: 4,
            ..Default::default()
        })
        .unwrap();
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut last_gen = 0u64;
                    let mut queries = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        let (generation, entry) = client.lookup_traced("CAM-LUM-00042").unwrap();
                        assert!(
                            generation >= last_gen,
                            "generations are monotone per reader"
                        );
                        if let Some(e) = &entry {
                            assert!(!e.pages.is_empty(), "no half-applied entries");
                        }
                        last_gen = generation;
                        queries += 1;
                    }
                    queries
                })
            })
            .collect();

        let mut writer = Client::connect(addr).unwrap();
        for i in 0..60u32 {
            writer
                .ingest(rec(
                    i % 3,
                    i / 3,
                    "Lumetra LX-42 camera",
                    "CAM-LUM-00042",
                    100.0 + f64::from(i),
                ))
                .unwrap();
        }
        writer.flush().unwrap();
        stop.store(true, Ordering::SeqCst);
        let total: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "readers made progress during ingest");
        let entry = writer
            .lookup("CAM-LUM-00042")
            .unwrap()
            .expect("resolves after flush");
        assert_eq!(entry.pages.len(), 60);
        drop(writer);
        server.shutdown();
    }
}
