//! Cross-shard cluster bridging for the router tier.
//!
//! Hash-partitioning records across backends by identifier keeps each
//! backend's linkage local — but two records whose identifiers hash to
//! *different* shards can still be the same product (a record carrying
//! both identifiers, a title-token match across shards). Single-node
//! linkage would compare them because they share blocking evidence; a
//! naive router never would, and the sharded clustering would diverge.
//!
//! The [`BridgeIndex`] closes that gap on the write path. The router
//! extracts every record's blocking keys (the same
//! `IdentifierDigits` + `TitleTokens` keys the backend engines block on)
//! and remembers which shard each key has been seen on. When an arriving
//! record's keys hit shards other than its routing home, the record is
//! **replicated** to those shards too: the owning shard re-scores the
//! bridged pairs with the full matcher, exactly as a single node would
//! have. A pair sharing a blocking key therefore always coexists on at
//! least one shard — whichever record arrives later lands (directly or
//! as a replica) on the earlier record's shard and is compared there.
//!
//! The read path joins what replication split. A replicated record is a
//! member of entries on several shards, so bridged entries *share a
//! page* ([`bdi_types::RecordId`]) — [`merge_entries`] unions gathered
//! entries through a union-find overlay keyed on shared pages, which is
//! exact: two entries sharing a member record are the same logical
//! cluster by construction. For single-shard `lookup`, the
//! [`BridgeIndex`] also remembers the normalized primary identifiers of
//! replicated records (`bridged`), so the router knows which extra
//! shards to consult and how to chase a bridge chain to closure.
//!
//! **Selective bridging.** Replication is priced per blocking key, and
//! broad keys are expensive: common title tokens ("camera", "monitor")
//! are shared across *unrelated* entities, and pages routinely leak
//! *related products'* identifiers, so bridging on every key a record
//! carries replicates a large fraction of the stream and scaling
//! collapses. But clustering equality only requires that pairs
//! single-node linkage would *link* coexist on a shard (pairs
//! compared-and-rejected contribute nothing), and with the engine's
//! [`IdentifierRule`] matcher the link paths are narrow:
//!
//! * the title-only score path tops out at [`TITLE_ONLY_CEILING`], so
//!   at any threshold above it a pair can only link through identifier
//!   evidence;
//! * identifier evidence is **primary-only** — the matcher compares
//!   `primary_id` to `primary_id` and `primary_digits` to
//!   `primary_digits`; a *non-primary* identifier (the related-product
//!   leak case) never contributes to a link score;
//! * equal primary identifiers imply equal routing keys, so that pair
//!   **co-homes by construction** and needs no replication at all.
//!
//! The only genuinely cross-shard link path above the ceiling is
//! therefore *different primary identifiers sharing a digit core*, so
//! [`BridgeIndex::for_threshold`] replicates on the primary digit core
//! alone when the threshold clears the ceiling, and falls back to full
//! blocking-key parity (identifier digits + title tokens) below it.
//! Replicated pairs the shard engine would not have compared are
//! harmless: each backend applies the same blocking rules, so
//! coexistence never creates comparisons single-node linkage lacks.
//!
//! Read routing is tracked separately from replication: every
//! normalized identifier a record *publishes* (primary or not) is
//! registered to the shards the record landed on, so a `lookup` of a
//! secondary identifier is routed to a shard that actually indexed it
//! even though the identifier never triggered replication.
//!
//! Limits (documented in `docs/PROTOCOL.md`): replication is keyed on
//! blocking evidence, so a bridged record with *no identifiers* joins
//! clusters on scatter reads (shared pages) but cannot widen a
//! single-identifier `lookup`; and merged entries re-fuse attributes
//! best-effort (dominant entry wins) while cluster *membership* is
//! exact.
//!
//! [`IdentifierRule`]: bdi_linkage::matcher::IdentifierRule

use crate::fleet::RoutingTable;
use crate::protocol::StatsBody;
use bdi_core::catalog::CatalogEntry;
use bdi_linkage::blocking::{normalize_identifier, BlockingKey};
use bdi_linkage::cluster::UnionFind;
use bdi_linkage::fingerprint::RecordFingerprint;
use bdi_types::Record;
use std::collections::HashMap;

/// Set of shards as a bitmask — the router tops out at 64 backends.
pub type ShardMask = u64;

/// Largest backend count the mask representation supports.
pub const MAX_SHARDS: usize = 64;

/// The highest score `IdentifierRule` can produce without identifier
/// evidence (the `0.8 * title_me * title_jaccard` fallback path).
/// Thresholds strictly above this make title-only links impossible, so
/// the bridge can skip title-token replication entirely.
pub const TITLE_ONLY_CEILING: f64 = 0.8;

/// Where one record goes: its routing home plus any shards it must be
/// replicated to because they hold blocking-key evidence for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// The shard the record hashes to.
    pub home: usize,
    /// Shards (excluding `home`) holding records that share a blocking
    /// key with this one — the record is sent there too so the owning
    /// shard can re-score the bridged pairs.
    pub replicas: ShardMask,
}

impl Route {
    /// Every shard the record is sent to, home first.
    pub fn shards(&self) -> impl Iterator<Item = usize> + '_ {
        std::iter::once(self.home).chain(
            (0..MAX_SHARDS).filter(move |&s| s != self.home && self.replicas & (1 << s) != 0),
        )
    }
}

/// The replication keys a bridge decides on (see
/// [`BridgeIndex::for_threshold`]).
enum BridgeKeys {
    /// Exact above [`TITLE_ONLY_CEILING`]: the matcher's only
    /// cross-home link path is equal primary digit cores (equal primary
    /// identifiers co-home via the routing key; non-primary identifiers
    /// never score).
    PrimaryDigits,
    /// Exact at any threshold: the full blocking-key set the backend
    /// engines block on.
    Parity(Vec<BlockingKey>),
}

impl BridgeKeys {
    fn extract(&self, fp: &RecordFingerprint) -> Vec<String> {
        match self {
            // the matcher's digit path requires a run of >= 3 digits
            BridgeKeys::PrimaryDigits => fp
                .primary_digits
                .iter()
                .filter(|d| d.len() >= 3)
                .cloned()
                .collect(),
            BridgeKeys::Parity(keys) => keys.iter().flat_map(|k| k.keys_fp(fp)).collect(),
        }
    }
}

/// The router-side bridge index: blocking key → shards seen, plus the
/// identifiers of replicated records (the read-path join keys).
pub struct BridgeIndex {
    /// Key → home shard mapping; starts identical to flat hashing and
    /// absorbs live shard splits (see [`crate::fleet`]).
    table: RoutingTable,
    /// Blocking key → shards on which a record carrying it was routed.
    keys: HashMap<String, ShardMask>,
    /// Normalized identifier (primary or not) → shards holding a record
    /// that published it: read routing for identifiers that never
    /// triggered replication (a secondary identifier lives wherever its
    /// record's *primary* routed it).
    published: HashMap<String, ShardMask>,
    /// Normalized primary identifier of every replicated record → the
    /// full shard set it lives on. Small: proportional to the number of
    /// bridged records, not the stream.
    bridged: HashMap<String, ShardMask>,
    /// The keys replication is decided on (see [`Self::for_threshold`]).
    blocking: BridgeKeys,
}

impl BridgeIndex {
    /// An empty index over `shards` backends (at most [`MAX_SHARDS`])
    /// with full blocking-key parity — exact at *any* match threshold.
    /// Mirrors `IncrementalLinker::for_products`.
    pub fn new(shards: usize) -> Self {
        Self::with_keys(
            shards,
            BridgeKeys::Parity(vec![
                BlockingKey::IdentifierDigits,
                BlockingKey::TitleTokens,
            ]),
        )
    }

    /// An empty index bridging on the cheapest key set that is still
    /// exact at `threshold`. Above [`TITLE_ONLY_CEILING`] the matcher
    /// can only link cross-home through equal *primary* digit cores
    /// (equal primary identifiers already co-home, non-primary
    /// identifiers never score), so that single key suffices; at or
    /// below the ceiling, title-only links are possible and the full
    /// blocking-key set is used.
    pub fn for_threshold(shards: usize, threshold: f64) -> Self {
        let keys = if threshold > TITLE_ONLY_CEILING {
            BridgeKeys::PrimaryDigits
        } else {
            BridgeKeys::Parity(vec![
                BlockingKey::IdentifierDigits,
                BlockingKey::TitleTokens,
            ])
        };
        Self::with_keys(shards, keys)
    }

    fn with_keys(shards: usize, blocking: BridgeKeys) -> Self {
        assert!(
            (1..=MAX_SHARDS).contains(&shards),
            "1..={MAX_SHARDS} shards"
        );
        Self {
            table: RoutingTable::new(shards),
            keys: HashMap::new(),
            published: HashMap::new(),
            bridged: HashMap::new(),
            blocking,
        }
    }

    /// Number of backends routed over (grows by one per [`Self::split`]).
    pub fn shard_count(&self) -> usize {
        self.table.len()
    }

    /// The live routing table — cloneable, so a split can be *previewed*
    /// (which records would move) before anything is flipped.
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// Split `shard`'s hash range, returning the new shard's id. The
    /// routing table moves half of the shard's keyspace to the new id;
    /// every recorded mask (blocking keys, published identifiers,
    /// bridged records) that covered the split shard is conservatively
    /// widened to cover the new shard too. Widening is *correct*, not
    /// just safe: the split copies the old backend's state onto the new
    /// backend's half, so pre-split evidence genuinely exists on both —
    /// replication keyed on it keeps landing wherever the matching
    /// records live, and lookups keep resolving. Stale copies left on
    /// the old shard are deduplicated on reads by [`merge_entries`]
    /// (shared member pages).
    ///
    /// Call with the router's record routing stalled (the bridge lock
    /// held) — the table flip must be atomic with the backend data move.
    pub fn split(&mut self, shard: usize) -> usize {
        let new = self.table.split(shard);
        assert!(new < MAX_SHARDS, "mask representation caps the fleet");
        let old_bit: ShardMask = 1 << shard;
        let new_bit: ShardMask = 1 << new;
        for mask in self
            .keys
            .values_mut()
            .chain(self.published.values_mut())
            .chain(self.bridged.values_mut())
        {
            if *mask & old_bit != 0 {
                *mask |= new_bit;
            }
        }
        new
    }

    /// The key a record routes on: its normalized primary identifier, or
    /// the raw title for identifier-less records. Deterministic across
    /// router restarts (FNV-1a, no per-process hash state).
    pub fn routing_key(record: &Record) -> String {
        match record.primary_identifier() {
            Some(id) if !normalize_identifier(id).is_empty() => normalize_identifier(id),
            _ => record.title.to_lowercase(),
        }
    }

    /// Route one record: compute its home shard, decide which shards it
    /// must additionally be replicated to, and register its blocking
    /// keys under its home. Call under one lock per record — the
    /// check-then-register must be atomic so that of any two records
    /// sharing a key, the later-routed one always sees the earlier's
    /// registration.
    pub fn route(&mut self, record: &Record, fp: &RecordFingerprint) -> Route {
        let home = self.table.home(&Self::routing_key(record));
        let home_bit: ShardMask = 1 << home;
        let mut replicas: ShardMask = 0;
        for k in self.blocking.extract(fp) {
            if k.is_empty() {
                continue;
            }
            let mask = self.keys.entry(k).or_insert(0);
            replicas |= *mask;
            *mask |= home_bit;
        }
        replicas &= !home_bit;
        if replicas != 0 {
            // remember the replicated record's primary identifier: the
            // join key single-shard lookups chase bridges through
            if !fp.primary_id.is_empty() {
                *self.bridged.entry(fp.primary_id.clone()).or_insert(0) |= home_bit | replicas;
            }
        }
        // read routing: every identifier the record publishes is now
        // indexed on every shard the record landed on
        for id in &fp.ids_norm {
            if !id.is_empty() {
                *self.published.entry(id.clone()).or_insert(0) |= home_bit | replicas;
            }
        }
        Route { home, replicas }
    }

    /// Shards a `lookup` for this identifier must consult: the hash
    /// shard, widened by the shards of every record that published the
    /// identifier (a secondary identifier lives wherever its record's
    /// primary routed it) and by any shards a replicated record
    /// carrying it reached.
    pub fn lookup_shards(&self, identifier: &str) -> ShardMask {
        let norm = normalize_identifier(identifier);
        let mut mask: ShardMask = 1 << self.table.home(&norm);
        if let Some(holders) = self.published.get(&norm) {
            mask |= holders;
        }
        if let Some(extra) = self.bridged.get(&norm) {
            mask |= extra;
        }
        mask
    }

    /// The shard set of a replicated record's identifier, if that
    /// identifier belongs to one (`None` for never-replicated
    /// identifiers) — the expansion step of bridge-chasing lookups.
    pub fn bridged_mask(&self, norm_identifier: &str) -> Option<ShardMask> {
        self.bridged.get(norm_identifier).copied()
    }

    /// Replicated records registered so far (monitoring).
    pub fn bridged_len(&self) -> usize {
        self.bridged.len()
    }
}

/// Iterate the shard indices set in a mask.
pub fn mask_shards(mask: ShardMask) -> impl Iterator<Item = usize> {
    (0..MAX_SHARDS).filter(move |&s| mask & (1 << s) != 0)
}

/// Merge entries gathered from several shards into logical clusters:
/// entries sharing any member page are the same cluster (a replicated
/// record is a member on every shard it reached) and are unioned through
/// a union-find overlay. Within a merged group, pages and identifiers
/// union (sorted, deduplicated); title, id and attribute values come
/// from the *dominant* entry — most pages, ties toward the lower shard
/// then lower entry id — with the other entries' attributes filling in
/// names the dominant lacks. Output order: groups by their dominant
/// entry's (shard, id), ascending — deterministic for any gather order.
pub fn merge_entries(gathered: Vec<(usize, CatalogEntry)>) -> Vec<CatalogEntry> {
    if gathered.len() <= 1 {
        return gathered.into_iter().map(|(_, e)| e).collect();
    }
    let mut uf = UnionFind::new(gathered.len());
    let mut by_page: HashMap<bdi_types::RecordId, usize> = HashMap::new();
    for (i, (_, entry)) in gathered.iter().enumerate() {
        for &page in &entry.pages {
            match by_page.entry(page) {
                std::collections::hash_map::Entry::Occupied(o) => {
                    uf.union(*o.get(), i);
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(i);
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..gathered.len() {
        groups.entry(uf.find(i)).or_default().push(i);
    }
    let mut merged: Vec<((usize, usize), CatalogEntry)> = groups
        .into_values()
        .map(|members| merge_group(&gathered, members))
        .collect();
    merged.sort_by_key(|a| a.0);
    merged.into_iter().map(|(_, e)| e).collect()
}

/// Merge one union-found group; returns the dominant (shard, id) sort
/// key alongside the merged entry.
fn merge_group(
    gathered: &[(usize, CatalogEntry)],
    mut members: Vec<usize>,
) -> ((usize, usize), CatalogEntry) {
    // dominant: most pages, then lower shard, then lower entry id
    members.sort_by(|&a, &b| {
        let (sa, ea) = &gathered[a];
        let (sb, eb) = &gathered[b];
        eb.pages
            .len()
            .cmp(&ea.pages.len())
            .then_with(|| sa.cmp(sb))
            .then_with(|| ea.id.cmp(&eb.id))
    });
    let (dom_shard, dominant) = &gathered[members[0]];
    let mut out = dominant.clone();
    for &m in &members[1..] {
        let (_, e) = &gathered[m];
        out.pages.extend(e.pages.iter().copied());
        out.identifiers.extend(e.identifiers.iter().cloned());
        for (name, value) in &e.attributes {
            out.attributes
                .entry(name.clone())
                .or_insert_with(|| value.clone());
        }
    }
    out.pages.sort_unstable();
    out.pages.dedup();
    out.identifiers.sort_unstable();
    out.identifiers.dedup();
    ((*dom_shard, dominant.id), out)
}

/// Merge per-shard stats into the fleet view: every counter sums (a
/// replicated record legitimately counts on each shard holding it);
/// `durable` is the conjunction — the fleet is durable only when every
/// backend is.
pub fn merge_stats(gathered: &[StatsBody]) -> StatsBody {
    let mut out = StatsBody {
        durable: !gathered.is_empty(),
        ..StatsBody::default()
    };
    for s in gathered {
        out.generation += s.generation;
        out.products += s.products;
        out.records += s.records;
        out.submitted += s.submitted;
        out.applied += s.applied;
        out.rejected += s.rejected;
        out.comparisons += s.comparisons;
        out.shards += s.shards;
        out.durable &= s.durable;
        out.wal_position += s.wal_position;
        out.wal_synced += s.wal_synced;
        out.wal_tail += s.wal_tail;
        out.snapshot_records += s.snapshot_records;
        out.snapshot_generation += s.snapshot_generation;
        // per-command latency: counts sum across the fleet; quantiles
        // can't be merged exactly, so report the worst shard's
        if let Some(latency) = &s.latency {
            let merged = out.latency.get_or_insert_with(Default::default);
            for (cmd, l) in latency {
                let slot = merged.entry(cmd.clone()).or_default();
                slot.count += l.count;
                slot.p50_us = slot.p50_us.max(l.p50_us);
                slot.p99_us = slot.p99_us.max(l.p99_us);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::shard_of;
    use bdi_types::{RecordId, SourceId, Value};
    use std::collections::BTreeMap;

    fn rec(s: u32, q: u32, title: &str, ids: &[&str]) -> Record {
        let mut r = Record::new(RecordId::new(SourceId(s), q), title);
        for id in ids {
            r.identifiers.push((*id).to_string());
        }
        r
    }

    fn route(b: &mut BridgeIndex, r: &Record) -> Route {
        let fp = RecordFingerprint::of(r);
        b.route(r, &fp)
    }

    fn entry(id: usize, pages: &[(u32, u32)], idents: &[&str]) -> CatalogEntry {
        CatalogEntry {
            id,
            title: format!("p{id}"),
            pages: pages
                .iter()
                .map(|&(s, q)| RecordId::new(SourceId(s), q))
                .collect(),
            attributes: BTreeMap::from([("w".to_string(), Value::num(id as f64))]),
            identifiers: idents.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Two identifiers that provably hash to different shards at n=2.
    fn split_identifiers(n: usize) -> (String, String) {
        let a = "CAM-LUM-00100".to_string();
        let home = shard_of(&normalize_identifier(&a), n);
        for i in 0..10_000u32 {
            let b = format!("TRI-ORB-{i:05}");
            if shard_of(&normalize_identifier(&b), n) != home {
                return (a, b);
            }
        }
        panic!("no split pair found");
    }

    #[test]
    fn unrelated_records_never_replicate() {
        let mut b = BridgeIndex::new(2);
        let r1 = route(
            &mut b,
            &rec(0, 0, "Lumetra LX-100 camera", &["CAM-LUM-00100"]),
        );
        let r2 = route(
            &mut b,
            &rec(1, 0, "Visionex V-900 monitor", &["MON-VIS-00900"]),
        );
        assert_eq!(r1.replicas, 0);
        assert_eq!(r2.replicas, 0);
        assert_eq!(b.bridged_len(), 0);
    }

    #[test]
    fn shared_key_on_another_shard_replicates_the_later_record() {
        let n = 2;
        let (ida, idb) = split_identifiers(n);
        let mut b = BridgeIndex::new(n);
        let ra = route(&mut b, &rec(0, 0, "Lumetra LX-100 camera", &[&ida]));
        let rb = route(&mut b, &rec(1, 0, "Orbix O-55 tripod", &[&idb]));
        assert_ne!(ra.home, rb.home, "identifiers chosen to split");
        assert_eq!(ra.replicas | rb.replicas, 0, "distinct evidence so far");
        // a record carrying both identifiers bridges the two shards
        let bridge = rec(2, 0, "Lumetra LX-100 with tripod", &[&ida, &idb]);
        let rb2 = route(&mut b, &bridge);
        assert_eq!(rb2.home, ra.home, "routes by primary identifier");
        assert_eq!(
            rb2.replicas,
            1 << rb.home,
            "replicated to the shard holding the other identifier"
        );
        assert_eq!(
            rb2.shards().collect::<Vec<_>>(),
            vec![ra.home, rb.home].into_iter().collect::<Vec<_>>()
        );
        // the read path now knows lookups of either identifier span both
        let mask = (1 << ra.home) | (1 << rb.home);
        assert_eq!(b.lookup_shards(&ida) & mask, mask);
        assert_eq!(b.bridged_mask(&normalize_identifier(&ida)), Some(mask));
    }

    #[test]
    fn title_evidence_bridges_identifierless_records() {
        let mut b = BridgeIndex::new(2);
        // force records onto different shards via their routing titles
        let mut first = None;
        let mut replicated = false;
        for i in 0..50u32 {
            let r = rec(i, 0, &format!("Quantaflux widget mk{i}"), &[]);
            let plan = route(&mut b, &r);
            match first {
                None => first = Some(plan.home),
                Some(h) if plan.home != h => {
                    // shares the "quantaflux"/"widget" title tokens seen
                    // on the other shard → must be replicated there
                    assert_ne!(plan.replicas & (1 << h), 0);
                    replicated = true;
                    break;
                }
                _ => {}
            }
        }
        assert!(replicated, "some title hashed to the other shard");
    }

    #[test]
    fn threshold_gates_title_bridging() {
        // above the ceiling title-only pairs cannot link, so shared
        // title tokens must not replicate…
        let mut hi = BridgeIndex::for_threshold(2, 0.9);
        for i in 0..50u32 {
            let r = rec(i, 0, &format!("Quantaflux widget mk{i}"), &[]);
            let plan = route(&mut hi, &r);
            assert_eq!(plan.replicas, 0, "no title replication at 0.9");
        }
        // …and neither do *secondary* identifiers: the matcher scores
        // primary against primary only, so a record whose second
        // identifier hashes elsewhere cannot link there and must not
        // be replicated there — but a lookup of that secondary
        // identifier is still routed to the record's shard
        let n = 2;
        let mut hi = BridgeIndex::for_threshold(n, 0.9);
        let (ida, idb) = {
            // find two letters-only ids hashing to different shards
            let a = "ABCDEFG".to_string();
            let home = shard_of(&normalize_identifier(&a), n);
            let mut b = None;
            for i in 0..26u8 {
                for j in 0..26u8 {
                    let cand = format!("ZYX{}{}", char::from(b'A' + i), char::from(b'A' + j));
                    if shard_of(&normalize_identifier(&cand), n) != home {
                        b = Some(cand);
                        break;
                    }
                }
                if b.is_some() {
                    break;
                }
            }
            (a, b.expect("some letters-only id lands on the other shard"))
        };
        route(&mut hi, &rec(0, 0, "Alpha thing", &[&ida]));
        route(&mut hi, &rec(1, 0, "Beta thing", &[&idb]));
        let plan = route(&mut hi, &rec(2, 0, "Alpha beta combo", &[&ida, &idb]));
        assert_eq!(
            plan.replicas, 0,
            "secondary identifiers never score, so they never replicate"
        );
        assert_ne!(
            hi.lookup_shards(&idb) & (1 << plan.home),
            0,
            "lookups of the secondary identifier still reach the record"
        );
        // what *does* bridge above the ceiling: different primary
        // identifiers sharing a digit core, hashing to different shards
        let mut hi = BridgeIndex::for_threshold(n, 0.9);
        let dig_a = "CAM-LUM-00321".to_string();
        let dig_home = shard_of(&normalize_identifier(&dig_a), n);
        let dig_b = (b'A'..=b'Z')
            .map(|c| format!("{}XX-TRI-00321", char::from(c)))
            .find(|cand| shard_of(&normalize_identifier(cand), n) != dig_home)
            .expect("some prefix hashes to the other shard");
        let ra = route(&mut hi, &rec(0, 0, "Lumetra LX-321 camera", &[&dig_a]));
        let rb = route(&mut hi, &rec(1, 0, "Lumetra LX-321 camera kit", &[&dig_b]));
        assert_eq!(
            rb.replicas,
            1 << ra.home,
            "shared primary digit core bridges across shards"
        );
        // at or below the ceiling the full blocking-key set is back
        let mut lo = BridgeIndex::for_threshold(2, 0.8);
        let mut first = None;
        let mut replicated = false;
        for i in 0..50u32 {
            let r = rec(i, 0, &format!("Quantaflux widget mk{i}"), &[]);
            let plan = route(&mut lo, &r);
            match first {
                None => first = Some(plan.home),
                Some(h) if plan.home != h => {
                    assert_ne!(plan.replicas & (1 << h), 0);
                    replicated = true;
                    break;
                }
                _ => {}
            }
        }
        assert!(replicated, "title bridging active at 0.8");
    }

    #[test]
    fn merge_entries_joins_on_shared_pages_only() {
        // shard 0 and shard 1 both hold the replicated record (2,0);
        // shard 1 also holds an unrelated entry
        let gathered = vec![
            (0, entry(0, &[(0, 0), (2, 0)], &["CAMLUM00100"])),
            (1, entry(0, &[(1, 0), (2, 0)], &["TRIORB00100"])),
            (1, entry(1, &[(3, 0)], &["MONVIS00900"])),
        ];
        let merged = merge_entries(gathered);
        assert_eq!(merged.len(), 2, "bridged pair joined, unrelated kept");
        let joined = &merged[0];
        assert_eq!(joined.pages.len(), 3, "pages union, replica deduped");
        assert_eq!(
            joined.identifiers,
            vec!["CAMLUM00100".to_string(), "TRIORB00100".to_string()]
        );
        assert_eq!(merged[1].pages, vec![RecordId::new(SourceId(3), 0)]);
    }

    #[test]
    fn merge_entries_is_transitive_across_shards() {
        // A↔B share page (9,0), B↔C share page (9,1): one cluster
        let gathered = vec![
            (0, entry(0, &[(0, 0), (9, 0)], &["A"])),
            (1, entry(0, &[(1, 0), (9, 0), (9, 1)], &["B"])),
            (2, entry(0, &[(2, 0), (9, 1)], &["C"])),
        ];
        let merged = merge_entries(gathered);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].pages.len(), 5);
        // dominant = most pages = the shard-1 entry
        assert_eq!(merged[0].title, "p0");
    }

    #[test]
    fn merge_stats_sums_counters() {
        let a = StatsBody {
            generation: 3,
            products: 10,
            records: 20,
            submitted: 20,
            applied: 20,
            durable: true,
            ..StatsBody::default()
        };
        let b = StatsBody {
            generation: 2,
            products: 5,
            records: 9,
            submitted: 9,
            applied: 9,
            durable: false,
            ..StatsBody::default()
        };
        let m = merge_stats(&[a, b]);
        assert_eq!(m.generation, 5);
        assert_eq!(m.products, 15);
        assert_eq!(m.records, 29);
        assert_eq!(m.submitted, 29);
        assert!(!m.durable, "fleet durable only when every backend is");
    }

    #[test]
    fn split_widens_masks_and_keeps_lookups_resolving() {
        let n = 2;
        let (ida, idb) = split_identifiers(n);
        let mut b = BridgeIndex::new(n);
        route(&mut b, &rec(0, 0, "Lumetra LX-100 camera", &[&ida]));
        route(&mut b, &rec(1, 0, "Orbix O-55 tripod", &[&idb]));
        route(
            &mut b,
            &rec(2, 0, "Lumetra LX-100 with tripod", &[&ida, &idb]),
        );
        let pre_a = b.lookup_shards(&ida);
        let home_a = shard_of(&normalize_identifier(&ida), n);

        let new = b.split(home_a);
        assert_eq!(new, 2);
        assert_eq!(b.shard_count(), 3);
        // every pre-split shard set covering the split shard now covers
        // the new shard too — a lookup still reaches whichever of the
        // two now holds the record
        let widened = b.lookup_shards(&ida);
        assert_eq!(widened & pre_a, pre_a, "no shard was dropped");
        assert_ne!(widened & (1 << new), 0, "the new shard is consulted");
        // identifiers homed on the *unsplit* shard are untouched unless
        // they were bridged onto the split one
        let mask_b = b.lookup_shards(&idb);
        assert_ne!(mask_b & (1 << shard_of(&normalize_identifier(&idb), n)), 0);
        // future records route through the split table: homes stay in
        // range and the split shard's keyspace is genuinely divided
        let mut homes = [0usize; 3];
        for i in 0..200u32 {
            let r = rec(
                3,
                i,
                &format!("Probe item {i}"),
                &[&format!("PRB-ITM-{i:05}")],
            );
            let plan = route(&mut b, &r);
            homes[plan.home] += 1;
        }
        assert!(homes[new] > 0, "some new keys home on the split-off shard");
    }

    #[test]
    fn routing_key_falls_back_to_title() {
        assert_eq!(
            BridgeIndex::routing_key(&rec(0, 0, "Lumetra LX-100", &["CAM-LUM-00100"])),
            "CAMLUM00100"
        );
        assert_eq!(
            BridgeIndex::routing_key(&rec(0, 0, "Lumetra LX-100", &[])),
            "lumetra lx-100"
        );
    }
}
