//! The router tier: one process that makes N backends look like one.
//!
//! `bdi route` binds the same JSON-lines protocol a single backend
//! speaks and hash-partitions work across `bdi serve` processes, so a
//! client needs no sharding awareness at all — point `bdi load` at the
//! router and the stream fans out.
//!
//! **Write path.** Every ingested record is routed by the FNV-1a hash
//! of its routing key ([`BridgeIndex::routing_key`]) through the
//! [`crate::fleet::RoutingTable`] to a home shard, widened by the
//! bridge index to any shards holding blocking-key evidence for it
//! (see [`crate::bridge`]). With `--replicas R` each shard is R
//! backends, and the record is mirrored onto every live replica.
//! Records travel over one long-lived *lane* per replica
//! ([`crate::replica::ReplicaLane`]): a bounded channel drained by a
//! worker thread that packs records into `ingest_batch` requests and
//! **pipelines** them — up to [`RouterConfig::pipeline`] batches are in
//! flight before the worker stops to read acks. Client
//! `ingest`/`ingest_batch` acks mean *accepted and routed*; `flush` is
//! the delivery barrier — it waits until every lane has settled every
//! routed record, then flushes every replica of every shard (each copy
//! is its own engine) while summing one representative replica per
//! shard.
//!
//! **Read path.** `lookup` consults the shard its identifier hashes to,
//! widened (and chased to closure) through the bridge index; `filter`,
//! `top_k`, `stats` and `metrics` scatter to every shard and
//! gather/merge. Each shard is queried on one preferred replica; an
//! I/O error *fails over* to the next replica in order (reads are
//! idempotent, so the request is simply re-sent) and only when every
//! replica of a shard fails does the client see an error naming that
//! shard. Failovers count on `route.read.failovers`.
//!
//! **Failure.** A dead backend never hangs the router: lane workers
//! mark their lane down on any I/O error and keep draining (so barriers
//! terminate). Writes are never retried — the protocol has no request
//! ids, so a resend could double-apply; a down replica is instead
//! rebuilt via `replace` (WAL shipping, see [`crate::fleet`]). A shard
//! only errors when *all* of its replicas are down.
//!
//! **Elasticity.** The `split` and `replace` admin commands
//! ([`crate::fleet`]) grow the fleet and replace dead replicas live,
//! under the same bridge-lock barrier the write path routes through.
//!
//! [`RegistrySnapshot`]: bdi_obs::RegistrySnapshot

use crate::bridge::{mask_shards, merge_entries, merge_stats, BridgeIndex, ShardMask, MAX_SHARDS};
use crate::frame;
use crate::http::{self, HttpMetrics};
use crate::nio;
use crate::protocol::{
    MetricsBody, Request, Response, SpanBody, StatsBody, TraceBody, TracedRequest, PROTOCOL_VERSION,
};
use crate::replica::{spawn_lane, LaneConn, ReplicaLane, ShardState};
use bdi_core::catalog::CatalogEntry;
use bdi_linkage::blocking::normalize_identifier;
use bdi_linkage::fingerprint::RecordFingerprint;
use bdi_obs::{Counter, Gauge, Histogram, Registry, TraceContext, Tracer};
use bdi_types::Record;
use parking_lot::{Mutex, RwLock};
use std::collections::{BinaryHeap, HashMap};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Wire features this router tier itself advertises on `hello`.
pub const ROUTER_FEATURES: [&str; 6] = [
    "ingest_batch",
    "flush_barrier",
    "split",
    "replace",
    "binary-frames",
    "trace-context",
];

/// Router tunables.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Bind address; use port 0 for an ephemeral port. The readiness
    /// front-end answers JSON lines and HTTP/1.1 on this one port
    /// (protocol sniffed per connection).
    pub addr: String,
    /// Additional dedicated HTTP listener (served by the same loop).
    pub http_addr: Option<String>,
    /// Dispatch worker threads (0 = a small default). Bounds how many
    /// blocking fleet operations (flush barriers, splits) run at once.
    pub workers: usize,
    /// Backend `bdi serve` addresses. With `replicas == R`, consecutive
    /// groups of R addresses form one shard: `backends[s*R..(s+1)*R]`
    /// are shard `s`'s replicas. Shard index is group position — keep
    /// the order stable across router restarts or records will re-home.
    pub backends: Vec<String>,
    /// Replicas per shard (1..). `backends.len()` must divide evenly.
    pub replicas: usize,
    /// Match threshold the backends were started with. Routing
    /// correctness depends on it: above the title-only score ceiling
    /// the bridge replicates on identifier evidence alone (see
    /// [`BridgeIndex::for_threshold`]).
    pub threshold: f64,
    /// Records per `ingest_batch` request sent to a backend.
    pub batch: usize,
    /// Batches in flight per backend before the lane worker stops to
    /// read acks — the pipelining depth.
    pub pipeline: usize,
    /// Buffered records per lane — the router-side backpressure bound.
    pub queue_capacity: usize,
    /// Extra connect attempts (exponential backoff) before a backend
    /// that refuses connections is declared dead.
    pub retries: u32,
    /// Head-sample one client request in this many into the router's
    /// flight recorder (`0` disables). The decision propagates: a
    /// sampled request's context rides to the backends, whose spans
    /// merge back through the `trace` command.
    pub trace_sample: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            http_addr: None,
            workers: 0,
            backends: Vec::new(),
            replicas: 1,
            threshold: 0.9,
            batch: 64,
            pipeline: 4,
            queue_capacity: 1024,
            retries: 2,
            trace_sample: 0,
        }
    }
}

/// Router-side metric handles, resolved once at startup. All names live
/// under `route.*` so a merged `metrics` response keeps them distinct
/// from the backends' `serve.*` families.
pub(crate) struct RouteMetrics {
    pub(crate) registry: Registry,
    /// Records routed (counted once each, copies excluded).
    pub(crate) submitted: Counter,
    /// Extra copies sent to non-home shards for bridging (per shard,
    /// not per replica — replica mirroring is not bridging).
    pub(crate) replicated: Counter,
    /// Record copies skipped because the target lane was down.
    pub(crate) replicas_dropped: Counter,
    /// Unparseable requests plus error responses.
    pub(crate) request_errors: Counter,
    /// HTTP-adapter counters and per-endpoint latency (`route.http.*`).
    pub(crate) http: HttpMetrics,
    /// Backend connect attempts retried after a transient failure.
    pub(crate) retries: Counter,
    /// Reads re-sent to another replica after an I/O error.
    pub(crate) read_failovers: Counter,
    /// Records replayed onto new shards by `split`.
    pub(crate) split_moved: Counter,
    /// Records per client-facing `ingest_batch` request.
    pub(crate) batch_records: Arc<Histogram>,
    /// Records per `ingest_batch` request sent to a backend lane.
    pub(crate) backend_batch_records: Arc<Histogram>,
    /// Wall time of `sync` state transfers (flush + snapshot + tail).
    pub(crate) sync_ns: Arc<Histogram>,
    /// Wall time of whole `split` operations (barrier through flip).
    pub(crate) split_ns: Arc<Histogram>,
    /// Replicated records the bridge currently tracks.
    pub(crate) bridged_records: Gauge,
    /// Lanes currently marked down.
    pub(crate) backends_down: Gauge,
}

impl RouteMetrics {
    fn new(registry: Registry) -> Self {
        Self {
            submitted: registry.counter("route.ingest.submitted"),
            replicated: registry.counter("route.ingest.replicated"),
            replicas_dropped: registry.counter("route.ingest.replicas_dropped"),
            request_errors: registry.counter("route.request.errors"),
            http: HttpMetrics::register(&registry, "route"),
            retries: registry.counter("route.backend.retries"),
            read_failovers: registry.counter("route.read.failovers"),
            split_moved: registry.counter("route.split.moved_records"),
            batch_records: registry.histogram("route.ingest.batch_records"),
            backend_batch_records: registry.histogram("route.backend.batch_records"),
            sync_ns: registry.histogram("route.sync.latency_ns"),
            split_ns: registry.histogram("route.split.latency_ns"),
            bridged_records: registry.gauge("route.bridge.bridged_records"),
            backends_down: registry.gauge("route.backend.down"),
            registry,
        }
    }
}

/// State shared by connection handlers, lane workers, and the fleet
/// admin operations. Lock order everywhere: `bridge` → `shards` → a
/// shard's `replicas`.
pub(crate) struct RouterShared {
    /// The fleet: one [`ShardState`] per shard, appended to by `split`.
    pub(crate) shards: RwLock<Vec<Arc<ShardState>>>,
    pub(crate) bridge: Mutex<BridgeIndex>,
    pub(crate) metrics: RouteMetrics,
    /// The router's flight recorder (lane workers and the read scatter
    /// record into it; `trace` merges it with the backends' rings).
    pub(crate) tracer: Tracer,
    pub(crate) shutdown: AtomicBool,
    /// Records per backend `ingest_batch`.
    pub(crate) batch: usize,
    /// Pipelining depth per lane.
    pub(crate) depth: usize,
    /// Bounded-channel capacity per lane.
    pub(crate) queue_capacity: usize,
    /// Connect retry budget per attempt.
    pub(crate) retries: u32,
    /// Every lane worker ever spawned (split/replace add more), joined
    /// at shutdown.
    pub(crate) lane_workers: Mutex<Vec<JoinHandle<()>>>,
}

impl RouterShared {
    /// Record a lane failure: per-replica error counter, one-shot down
    /// flag, stderr note, and the down gauge.
    pub(crate) fn mark_down(&self, lane: &ReplicaLane, err: &str) {
        self.metrics
            .registry
            .counter(&format!(
                "route.shard{}.replica{}.errors",
                lane.shard, lane.replica
            ))
            .inc();
        if !lane.down.swap(true, Ordering::SeqCst) {
            eprintln!(
                "bdi-route: shard {} replica {} ({}) marked down: {err}",
                lane.shard, lane.replica, lane.addr
            );
            self.refresh_down_gauge();
        }
    }

    /// Recount `route.backend.down` from the live topology (replacement
    /// and splits change the denominator, so the gauge is recomputed,
    /// not incremented).
    pub(crate) fn refresh_down_gauge(&self) {
        let down = self
            .shards
            .read()
            .iter()
            .map(|s| s.replicas.read().iter().filter(|l| l.is_down()).count())
            .sum::<usize>();
        self.metrics.backends_down.set(down as u64);
    }
}

/// A running router.
pub struct Router {
    addr: SocketAddr,
    http_addr: Option<SocketAddr>,
    shared: Arc<RouterShared>,
    accept: Option<JoinHandle<()>>,
}

impl Router {
    /// Bind and start routing over the configured backends. Backend
    /// connections are opened lazily — a backend that is down at start
    /// surfaces as per-shard errors, not a failed bind.
    pub fn start(cfg: RouterConfig) -> std::io::Result<Router> {
        let bad_input = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, m);
        let replicas = cfg.replicas.max(1);
        if cfg.backends.is_empty() || !cfg.backends.len().is_multiple_of(replicas) {
            return Err(bad_input(format!(
                "{} backend(s) do not form whole shards of {replicas} replica(s)",
                cfg.backends.len()
            )));
        }
        let shard_count = cfg.backends.len() / replicas;
        if shard_count == 0 || shard_count > MAX_SHARDS {
            return Err(bad_input(format!(
                "need 1..={MAX_SHARDS} shards, got {shard_count}"
            )));
        }
        let mut addrs = Vec::with_capacity(cfg.backends.len());
        for b in &cfg.backends {
            let addr = b
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| bad_input(format!("backend '{b}' resolves to no address")))?;
            addrs.push(addr);
        }
        let listener = TcpListener::bind(cfg.addr.as_str())?;
        let addr = listener.local_addr()?;

        let tracer = Tracer::new();
        tracer.configure(cfg.trace_sample, false);
        let shared = Arc::new(RouterShared {
            shards: RwLock::new(Vec::new()),
            bridge: Mutex::new(BridgeIndex::for_threshold(shard_count, cfg.threshold)),
            metrics: RouteMetrics::new(Registry::new()),
            tracer,
            shutdown: AtomicBool::new(false),
            batch: cfg.batch.max(1),
            depth: cfg.pipeline.max(1),
            queue_capacity: cfg.queue_capacity,
            retries: cfg.retries,
            lane_workers: Mutex::new(Vec::new()),
        });
        let shards: Vec<Arc<ShardState>> = (0..shard_count)
            .map(|shard| {
                let lanes = (0..replicas)
                    .map(|replica| {
                        spawn_lane(shard, replica, addrs[shard * replicas + replica], &shared)
                    })
                    .collect();
                Arc::new(ShardState {
                    replicas: RwLock::new(lanes),
                })
            })
            .collect();
        *shared.shards.write() = shards;

        let mut listeners = vec![listener];
        let http_addr = match &cfg.http_addr {
            Some(a) => {
                let l = TcpListener::bind(a.as_str())?;
                let bound = l.local_addr()?;
                listeners.push(l);
                Some(bound)
            }
            None => None,
        };
        let service = Arc::new(RouteService {
            shared: Arc::clone(&shared),
            addr,
        });
        let registry = shared.metrics.registry.clone();
        let accept = nio::spawn_front_end(listeners, service, &registry, "route", cfg.workers)?;
        Ok(Router {
            addr,
            http_addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound dedicated-HTTP address, when
    /// [`RouterConfig::http_addr`] was set. The main [`Router::addr`]
    /// also answers HTTP via protocol autodetection.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// Request shutdown and wait for the accept loop and lane workers
    /// to drain. Backends are left running — the router does not own
    /// them.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        self.join();
    }

    /// Block until a client issues `shutdown`, then drain. This is what
    /// `bdi route` parks on.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let workers: Vec<JoinHandle<()>> = self.shared.lane_workers.lock().drain(..).collect();
        for h in workers {
            let _ = h.join();
        }
    }
}

/// The router as a [`nio::Service`]. Per-connection state is the lazy
/// scatter-gather backend connections ([`QueryConns`]) the old
/// handler-thread owned — the front-end hands it to whichever worker
/// services the connection, one at a time, so the ownership story is
/// unchanged.
struct RouteService {
    shared: Arc<RouterShared>,
    addr: SocketAddr,
}

impl nio::Service for RouteService {
    type Conn = QueryConns;

    fn new_conn(&self) -> QueryConns {
        // lazy: a connection that only ingests opens none
        QueryConns::new()
    }

    fn handle_line(
        &self,
        conns: &mut QueryConns,
        line: &str,
        meta: &nio::RequestMeta,
    ) -> (String, bool) {
        handle_line(line, &self.shared, conns, self.addr, meta)
    }

    fn handle_frame(
        &self,
        conns: &mut QueryConns,
        raw: &[u8],
        meta: &nio::RequestMeta,
    ) -> (Vec<u8>, bool) {
        handle_frame(raw, &self.shared, conns, meta)
    }

    fn handle_http(
        &self,
        conns: &mut QueryConns,
        req: http::HttpRequest,
        meta: &nio::RequestMeta,
    ) -> http::HttpResponse {
        http::respond(
            &req,
            &self.shared.metrics.http,
            &self.shared.tracer,
            meta.queued_ns,
            |request, ctx| {
                catch_unwind(AssertUnwindSafe(|| {
                    dispatch(request, &self.shared, conns, self.addr, ctx)
                }))
                .unwrap_or_else(|_| Response::Error {
                    message: "internal error: request handler panicked".to_string(),
                })
            },
        )
    }

    fn shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// Handle one JSON-lines request against the fleet: parse, dispatch
/// (panics answered as errors), serialize. Returns the response line
/// (no trailing newline) and whether to close after writing it.
fn handle_line(
    line: &str,
    shared: &Arc<RouterShared>,
    conns: &mut QueryConns,
    addr: SocketAddr,
    meta: &nio::RequestMeta,
) -> (String, bool) {
    // the same optional `trace` envelope the backends accept
    let (inbound, parsed) = if line.starts_with("{\"traced\"") {
        match serde_json::from_str::<TracedRequest>(line) {
            Ok(t) => {
                let ctx = (t.trace.id != 0).then(|| t.trace.ctx());
                (ctx, Ok(t.request))
            }
            Err(e) => (None, Err(e)),
        }
    } else {
        (None, serde_json::from_str::<Request>(line))
    };
    let response = match parsed {
        Err(e) => {
            shared.metrics.request_errors.inc();
            Response::Error {
                message: format!("bad request: {e}"),
            }
        }
        Ok(request) => {
            let span = route_span(shared, inbound, request.kind(), meta);
            let ctx = span.as_ref().map(|s| s.ctx());
            let response = catch_unwind(AssertUnwindSafe(|| {
                dispatch(request, shared, conns, addr, ctx)
            }))
            .unwrap_or_else(|_| Response::Error {
                message: "internal error: request handler panicked".to_string(),
            });
            if let Some(span) = span {
                shared.tracer.finish(span);
            }
            if matches!(response, Response::Error { .. }) {
                shared.metrics.request_errors.inc();
            }
            response
        }
    };
    let close = matches!(response, Response::Bye);
    let body = serde_json::to_string(&response).unwrap_or_else(|_| {
        "{\"error\":{\"message\":\"internal error: response serialization failed\"}}".to_string()
    });
    (body, close)
}

/// Handle one binary-framed request against the fleet: decode,
/// dispatch (panics answered as errors), encode a binary reply. Only
/// the hot write-path commands have binary encodings — everything else
/// stays on JSON lines, which the front-end autodetects per message.
fn handle_frame(
    raw: &[u8],
    shared: &Arc<RouterShared>,
    conns: &mut QueryConns,
    meta: &nio::RequestMeta,
) -> (Vec<u8>, bool) {
    let mut out = Vec::new();
    let (opcode, wire_trace, payload) = match frame::open_frame_traced(raw) {
        Ok(parts) => parts,
        Err(e) => {
            shared.metrics.request_errors.inc();
            frame::encode_error(&mut out, &format!("bad frame: {e}"));
            return (out, true);
        }
    };
    let inbound = wire_trace
        .filter(|&(trace, _)| trace != 0)
        .map(|(trace, parent)| TraceContext { trace, parent });
    let kind = match opcode {
        frame::OP_INGEST_BATCH => "ingest_batch",
        frame::OP_FLUSH => "flush",
        _ => "other",
    };
    let span = route_span(shared, inbound, kind, meta);
    let ctx = span.as_ref().map(|s| s.ctx());
    let response = catch_unwind(AssertUnwindSafe(|| {
        dispatch_frame(opcode, payload, shared, conns, ctx)
    }))
    .unwrap_or_else(|_| {
        Ok(Response::Error {
            message: "internal error: request handler panicked".to_string(),
        })
    })
    .unwrap_or_else(|e| Response::Error {
        message: format!("bad request: {e}"),
    });
    if let Some(span) = span {
        shared.tracer.finish(span);
    }
    if matches!(response, Response::Error { .. }) {
        shared.metrics.request_errors.inc();
    }
    if !frame::encode_response(&mut out, &response) {
        frame::encode_error(&mut out, "internal error: unencodable binary reply");
    }
    (out, false)
}

/// Mint the `route.request` span for one client request against the
/// fleet: adopt a propagated upstream context, else let the head
/// sampler decide; a queued request gets a synthetic `queue.wait`
/// child. The router-side twin of the backend's `serve.request`.
fn route_span(
    shared: &RouterShared,
    inbound: Option<TraceContext>,
    kind: &'static str,
    meta: &nio::RequestMeta,
) -> Option<bdi_obs::ActiveSpan> {
    let mut span = match inbound {
        Some(ctx) => Some(shared.tracer.adopt(ctx, "route.request")),
        None => shared.tracer.root("route.request").map(|r| r.span),
    }?;
    span.set_cmd(kind);
    if meta.queued_ns > 0 {
        let start = span.start_ns().saturating_sub(meta.queued_ns);
        shared
            .tracer
            .record(span.ctx(), "queue.wait", start, span.start_ns(), &[]);
    }
    Some(span)
}

/// Binary twin of the write-path arms of [`dispatch`]: same routing,
/// same barrier, same metrics — only the codec differs.
fn dispatch_frame(
    opcode: u8,
    payload: &[u8],
    shared: &Arc<RouterShared>,
    conns: &mut QueryConns,
    ctx: Option<TraceContext>,
) -> std::io::Result<Response> {
    conns.trace_ctx = ctx;
    let mut r = frame::Reader::new(payload);
    let trailing = |r: &frame::Reader<'_>| -> std::io::Result<()> {
        if r.remaining() == 0 {
            Ok(())
        } else {
            Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "trailing bytes after payload",
            ))
        }
    };
    match opcode {
        frame::OP_INGEST_BATCH => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Ok(err("shutting down".to_string()));
            }
            let records = frame::read_records(&mut r)?;
            trailing(&r)?;
            shared.metrics.batch_records.record(records.len() as u64);
            let mut submitted = shared.metrics.submitted.get();
            for record in records {
                match route_one(shared, record, ctx) {
                    Ok(s) => submitted = s,
                    Err(e) => return Ok(err(e)),
                }
            }
            Ok(Response::Ack { submitted })
        }
        frame::OP_FLUSH => {
            trailing(&r)?;
            if let Err(e) = ingest_barrier(shared) {
                return Ok(err(e));
            }
            Ok(flush_fleet(shared, conns))
        }
        frame::OP_SYNC | frame::OP_RESTORE => Ok(err(
            "backend-only command: issue it against a `bdi serve` backend, not the router"
                .to_string(),
        )),
        other => Ok(err(format!("unexpected request opcode 0x{other:02x}"))),
    }
}

/// Per-connection lazy backend connections for the scatter-gather read
/// path (the write path goes through the shared lanes instead). Keyed
/// by `(shard, replica)`; each shard remembers the replica that last
/// answered and fails over in replica order when it stops doing so.
struct QueryConns {
    conns: HashMap<(usize, usize), (SocketAddr, LaneConn)>,
    preferred: HashMap<usize, usize>,
    /// Context of the request currently being dispatched on this
    /// connection, if traced — scatter records a `backend.query` span
    /// per shard round-trip under it.
    trace_ctx: Option<TraceContext>,
}

impl QueryConns {
    fn new() -> Self {
        Self {
            conns: HashMap::new(),
            preferred: HashMap::new(),
            trace_ctx: None,
        }
    }

    fn ensure(
        &mut self,
        shard: usize,
        replica: usize,
        addr: SocketAddr,
    ) -> std::io::Result<&mut LaneConn> {
        // a cached connection whose slot was re-pointed by `replace` or
        // `split` must not be reused: the retired backend may still be
        // alive and would answer with stale state
        if self
            .conns
            .get(&(shard, replica))
            .is_some_and(|(cached, _)| *cached != addr)
        {
            self.conns.remove(&(shard, replica));
        }
        match self.conns.entry((shard, replica)) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(&mut e.into_mut().1),
            std::collections::hash_map::Entry::Vacant(e) => {
                Ok(&mut e.insert((addr, LaneConn::connect(addr)?)).1)
            }
        }
    }

    fn recv_from(&mut self, shard: usize, replica: usize) -> std::io::Result<Response> {
        match self.conns.get_mut(&(shard, replica)) {
            Some((_, c)) => c.recv(),
            None => Err(std::io::Error::other("connection vanished")),
        }
    }

    fn drop_conn(&mut self, shard: usize, replica: usize) {
        self.conns.remove(&(shard, replica));
    }

    /// Write `line` to some replica of `shard`, trying the preferred
    /// replica first and failing over in order. Returns the replica
    /// index written to.
    fn send_failover(
        &mut self,
        shared: &RouterShared,
        shard: usize,
        line: &str,
    ) -> Result<usize, String> {
        let replicas = shard_addrs(shared, shard);
        let k = replicas.len().max(1);
        let pref = self.preferred.get(&shard).copied().unwrap_or(0) % k;
        let mut last = format!("shard {shard}: no replicas");
        for attempt in 0..replicas.len() {
            let r = (pref + attempt) % k;
            let addr = replicas[r];
            match self.ensure(shard, r, addr).and_then(|c| c.send_line(line)) {
                Ok(()) => {
                    self.preferred.insert(shard, r);
                    return Ok(r);
                }
                Err(e) => {
                    self.drop_conn(shard, r);
                    if attempt + 1 < replicas.len() {
                        shared.metrics.read_failovers.inc();
                    }
                    last = format!("shard {shard} replica {r} ({addr}): {e}");
                }
            }
        }
        Err(format!("shard {shard}: all replicas failed; last: {last}"))
    }

    /// Read the response owed by `first` (written by
    /// [`Self::send_failover`]); on failure, serially re-send to the
    /// remaining replicas — every read request is idempotent.
    fn recv_failover(
        &mut self,
        shared: &RouterShared,
        shard: usize,
        first: usize,
        line: &str,
    ) -> Result<Response, String> {
        let replicas = shard_addrs(shared, shard);
        let k = replicas.len().max(1);
        let mut last = match self.recv_from(shard, first) {
            Ok(resp) => return Ok(resp),
            Err(e) => {
                self.drop_conn(shard, first);
                if replicas.len() > 1 {
                    shared.metrics.read_failovers.inc();
                }
                let addr = replicas.get(first).copied();
                format!(
                    "shard {shard} replica {first} ({}): {e}",
                    addr.map_or_else(|| "?".to_string(), |a| a.to_string())
                )
            }
        };
        for attempt in 1..replicas.len() {
            let r = (first + attempt) % k;
            let addr = replicas[r];
            let result = self
                .ensure(shard, r, addr)
                .and_then(|c| c.send_line(line).and_then(|()| c.recv()));
            match result {
                Ok(resp) => {
                    self.preferred.insert(shard, r);
                    return Ok(resp);
                }
                Err(e) => {
                    self.drop_conn(shard, r);
                    if attempt + 1 < replicas.len() {
                        shared.metrics.read_failovers.inc();
                    }
                    last = format!("shard {shard} replica {r} ({addr}): {e}");
                }
            }
        }
        Err(format!("shard {shard}: all replicas failed; last: {last}"))
    }

    /// Write `request` to one replica of every shard in `mask`, *then*
    /// read the responses — backends process concurrently. Results come
    /// back in shard order; a shard fails only when every replica does.
    fn scatter(
        &mut self,
        shared: &RouterShared,
        mask: ShardMask,
        request: &Request,
    ) -> Vec<(usize, Result<Response, String>)> {
        let line = serde_json::to_string(request).expect("requests serialize");
        let n = shared.shards.read().len();
        let mut results: Vec<(usize, Result<Response, String>)> = Vec::new();
        let mut pending: Vec<(usize, usize, u64)> = Vec::new();
        for shard in mask_shards(mask).filter(|&s| s < n) {
            let t0 = shared.tracer.now_ns();
            match self.send_failover(shared, shard, &line) {
                Ok(replica) => pending.push((shard, replica, t0)),
                Err(e) => results.push((shard, Err(e))),
            }
        }
        for (shard, replica, t0) in pending {
            let result = self.recv_failover(shared, shard, replica, &line);
            if let Some(ctx) = self.trace_ctx {
                shared.tracer.record(
                    ctx,
                    "backend.query",
                    t0,
                    shared.tracer.now_ns(),
                    &[("shard", shard as u64), ("replica", replica as u64)],
                );
            }
            results.push((shard, result));
        }
        results.sort_by_key(|(s, _)| *s);
        results
    }

    /// Scatter to every shard; any per-shard failure collapses the
    /// whole request into one error naming each failed shard.
    fn gather_all(
        &mut self,
        shared: &RouterShared,
        request: &Request,
    ) -> Result<Vec<(usize, Response)>, String> {
        let mut out = Vec::new();
        let mut errors = Vec::new();
        for (shard, result) in self.scatter(shared, all_shards_mask(shared), request) {
            match result {
                Ok(resp) => out.push((shard, resp)),
                Err(e) => errors.push(e),
            }
        }
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors.join("; "))
        }
    }
}

/// Addresses of `shard`'s replicas, snapshotted out of the locks so no
/// lock is held across I/O.
fn shard_addrs(shared: &RouterShared, shard: usize) -> Vec<SocketAddr> {
    let shards = shared.shards.read();
    shards.get(shard).map(|s| s.addrs()).unwrap_or_default()
}

fn all_shards_mask(shared: &RouterShared) -> ShardMask {
    let n = shared.shards.read().len();
    if n >= MAX_SHARDS {
        ShardMask::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Route one record: bridge decision and per-lane enqueue accounting
/// under the bridge lock (so a split or replace barrier can never miss
/// an in-flight record), then the actual channel sends outside every
/// lock. Returns the router's submitted counter after this record.
fn route_one(
    shared: &RouterShared,
    record: Record,
    ctx: Option<TraceContext>,
) -> Result<u64, String> {
    let t0 = ctx.map(|_| shared.tracer.now_ns());
    let fp = RecordFingerprint::of(&record);
    let mut lanes: Vec<Arc<ReplicaLane>> = Vec::new();
    let home;
    {
        let mut bridge = shared.bridge.lock();
        let route = bridge.route(&record, &fp);
        home = route.home as u64;
        shared
            .metrics
            .bridged_records
            .set(bridge.bridged_len() as u64);
        let shards = shared.shards.read();
        // home first (route.shards() yields it first): a fully-down home
        // errors before anything was enqueued, so nothing needs undoing
        for shard in route.shards() {
            let replicas = shards[shard].replicas.read();
            let before = lanes.len();
            for lane in replicas.iter() {
                if lane.is_down() {
                    shared.metrics.replicas_dropped.inc();
                    continue;
                }
                lane.enqueued.fetch_add(1, Ordering::SeqCst);
                lanes.push(Arc::clone(lane));
            }
            if shard == route.home && lanes.len() == before {
                let addrs: Vec<String> = replicas.iter().map(|l| l.addr.to_string()).collect();
                return Err(format!("shard {shard} ({}) is down", addrs.join(", ")));
            }
            if shard != route.home && lanes.len() > before {
                shared.metrics.replicated.inc();
            }
        }
    }
    if let (Some(ctx), Some(t0)) = (ctx, t0) {
        shared.tracer.record(
            ctx,
            "route.partition",
            t0,
            shared.tracer.now_ns(),
            &[("home", home), ("copies", lanes.len() as u64)],
        );
    }
    let last = lanes.len() - 1;
    let mut record = Some(record);
    let item_ctx = ctx.map(|c| (c, shared.tracer.now_ns()));
    for (i, lane) in lanes.iter().enumerate() {
        let copy = if i == last {
            record.take().expect("moved exactly once")
        } else {
            record
                .as_ref()
                .expect("present until the last copy")
                .clone()
        };
        if lane.tx.send((copy, item_ctx)).is_err() {
            // lane retired mid-flight (replaced): the record was already
            // shipped to the replacement via sync — just settle the count
            lane.settled.fetch_add(1, Ordering::SeqCst);
        }
    }
    Ok(shared.metrics.submitted.inc())
}

/// Wait until every lane has settled every record routed to it. Lane
/// workers settle even after a backend death (drain mode), so this
/// always terminates. No health verdict — callers that require live
/// shards use [`ingest_barrier`].
pub(crate) fn settle_barrier(shared: &RouterShared) -> Result<(), String> {
    loop {
        let pending = {
            let shards = shared.shards.read();
            shards
                .iter()
                .any(|s| s.replicas.read().iter().any(|l| l.pending()))
        };
        if !pending {
            return Ok(());
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return Err("shutting down".to_string());
        }
        std::thread::sleep(Duration::from_micros(500));
    }
}

/// [`settle_barrier`], then fail if any shard lost *all* of its
/// replicas — records routed there were drained, not applied. A down
/// replica whose peers survive is not an error: its copies are the
/// redundancy being spent.
fn ingest_barrier(shared: &RouterShared) -> Result<(), String> {
    settle_barrier(shared)?;
    let dead: Vec<String> = {
        let shards = shared.shards.read();
        shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let replicas = s.replicas.read();
                if replicas.iter().all(|l| l.is_down()) {
                    let addrs: Vec<String> = replicas.iter().map(|l| l.addr.to_string()).collect();
                    Some(format!("shard {i} ({})", addrs.join(", ")))
                } else {
                    None
                }
            })
            .collect()
    };
    if dead.is_empty() {
        Ok(())
    } else {
        Err(format!("backend(s) down: {}", dead.join(", ")))
    }
}

fn err(message: String) -> Response {
    Response::Error { message }
}

fn dispatch(
    request: Request,
    shared: &Arc<RouterShared>,
    conns: &mut QueryConns,
    addr: SocketAddr,
    ctx: Option<TraceContext>,
) -> Response {
    conns.trace_ctx = ctx;
    match request {
        Request::Lookup { identifier } => lookup(shared, conns, &identifier),
        Request::Filter {
            attribute,
            min,
            max,
            limit,
        } => {
            let request = Request::Filter {
                attribute,
                min,
                max,
                limit,
            };
            match gather_entries(shared, conns, &request) {
                Ok((generation, gathered)) => {
                    let mut entries = merge_entries(gathered);
                    entries.truncate(limit.unwrap_or(100));
                    Response::Entries {
                        generation,
                        entries,
                    }
                }
                Err(e) => err(e),
            }
        }
        Request::TopK { attribute, k } => top_k(shared, conns, &attribute, k),
        Request::Ingest { record } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return err("shutting down".to_string());
            }
            match route_one(shared, record, ctx) {
                Ok(submitted) => Response::Ack { submitted },
                Err(e) => err(e),
            }
        }
        Request::IngestBatch { records } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return err("shutting down".to_string());
            }
            shared.metrics.batch_records.record(records.len() as u64);
            let mut submitted = shared.metrics.submitted.get();
            for record in records {
                match route_one(shared, record, ctx) {
                    Ok(s) => submitted = s,
                    Err(e) => return err(e),
                }
            }
            Response::Ack { submitted }
        }
        Request::Flush => {
            if let Err(e) = ingest_barrier(shared) {
                return err(e);
            }
            flush_fleet(shared, conns)
        }
        Request::Stats => match conns.gather_all(shared, &Request::Stats) {
            Ok(responses) => {
                let mut bodies: Vec<StatsBody> = Vec::with_capacity(responses.len());
                for (shard, resp) in responses {
                    match resp {
                        Response::Stats(body) => bodies.push(body),
                        other => return err(format!("shard {shard}: unexpected {other:?}")),
                    }
                }
                Response::Stats(merge_stats(&bodies))
            }
            Err(e) => err(e),
        },
        Request::Trace { id, recent } => match id {
            Some(id) => {
                let mut spans: Vec<SpanBody> = shared
                    .tracer
                    .spans(id)
                    .into_iter()
                    .map(SpanBody::from)
                    .collect();
                // the backends hold the rest of the tree; best-effort
                // scatter — a dead shard just leaves its spans out (and
                // the lookup itself must not record onto the trace)
                conns.trace_ctx = None;
                let request = Request::Trace {
                    id: Some(id),
                    recent: None,
                };
                for (_, result) in conns.scatter(shared, all_shards_mask(shared), &request) {
                    if let Ok(Response::Trace(body)) = result {
                        spans.extend(body.spans);
                    }
                }
                Response::Trace(TraceBody {
                    spans,
                    recent: vec![],
                })
            }
            None => Response::Trace(TraceBody {
                spans: vec![],
                recent: shared.tracer.recent(recent.unwrap_or(16)),
            }),
        },
        Request::Metrics => match conns.gather_all(shared, &Request::Metrics) {
            Ok(responses) => {
                let mut merged = shared.metrics.registry.snapshot();
                for (shard, resp) in responses {
                    match resp {
                        Response::Metrics(body) => match body.to_snapshot() {
                            Some(snap) => merged = merged.merge(&snap),
                            None => {
                                return err(format!("shard {shard}: malformed metrics body"));
                            }
                        },
                        other => return err(format!("shard {shard}: unexpected {other:?}")),
                    }
                }
                Response::Metrics(MetricsBody::from(merged))
            }
            Err(e) => err(e),
        },
        Request::Hello => Response::Hello {
            version: PROTOCOL_VERSION,
            features: ROUTER_FEATURES.iter().map(|f| (*f).to_string()).collect(),
        },
        Request::Sync { .. } | Request::Restore { .. } => err(
            "backend-only command: issue it against a `bdi serve` backend, not the router"
                .to_string(),
        ),
        Request::Split { shard, addrs } => crate::fleet::split_shard(shared, shard, &addrs),
        Request::Replace {
            shard,
            replica,
            addr,
        } => crate::fleet::replace_replica(shared, shard, replica, &addr),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(addr);
            Response::Bye
        }
    }
}

/// Flush every replica of every shard (each copy is its own engine and
/// must fold in its queue), summing one representative replica per
/// shard — summing all copies would multiply the fleet totals by R.
/// Two-phase like scatter: all writes go out before any read.
fn flush_fleet(shared: &RouterShared, conns: &mut QueryConns) -> Response {
    let line = serde_json::to_string(&Request::Flush).expect("requests serialize");
    let topo: Vec<Vec<SocketAddr>> = {
        let shards = shared.shards.read();
        shards.iter().map(|s| s.addrs()).collect()
    };
    let mut sent: Vec<(usize, usize, SocketAddr)> = Vec::new();
    let mut retry: Vec<(usize, usize, SocketAddr)> = Vec::new();
    for (shard, replicas) in topo.iter().enumerate() {
        for (replica, &addr) in replicas.iter().enumerate() {
            match conns
                .ensure(shard, replica, addr)
                .and_then(|c| c.send_line(&line))
            {
                Ok(()) => sent.push((shard, replica, addr)),
                Err(_) => {
                    conns.drop_conn(shard, replica);
                    retry.push((shard, replica, addr));
                }
            }
        }
    }
    let mut per_shard: Vec<Option<(u64, u64)>> = vec![None; topo.len()];
    for (shard, replica, addr) in sent {
        match conns.recv_from(shard, replica) {
            Ok(Response::Flushed {
                generation,
                applied,
            }) => {
                if per_shard[shard].is_none() {
                    per_shard[shard] = Some((generation, applied));
                }
            }
            Ok(other) => return err(format!("shard {shard}: unexpected {other:?}")),
            Err(_) => {
                conns.drop_conn(shard, replica);
                retry.push((shard, replica, addr));
            }
        }
    }
    // one serial second chance on a fresh connection: a failed copy may
    // just have held a connection that died with a killed or replaced
    // backend, and every live replica must fold in its queue
    for (shard, replica, addr) in retry {
        let result = conns
            .ensure(shard, replica, addr)
            .and_then(|c| c.send_line(&line).and_then(|()| c.recv()));
        match result {
            Ok(Response::Flushed {
                generation,
                applied,
            }) => {
                if per_shard[shard].is_none() {
                    per_shard[shard] = Some((generation, applied));
                }
            }
            Ok(other) => return err(format!("shard {shard}: unexpected {other:?}")),
            Err(_) => conns.drop_conn(shard, replica),
        }
    }
    let (mut generation, mut applied) = (0u64, 0u64);
    for (shard, state) in per_shard.iter().enumerate() {
        match state {
            Some((g, a)) => {
                generation += g;
                applied += a;
            }
            None => return err(format!("shard {shard}: no replica completed flush")),
        }
    }
    Response::Flushed {
        generation,
        applied,
    }
}

/// Scatter an entry-listing request to every shard and pool the
/// returned entries with their shard tags; generation is the fleet sum.
fn gather_entries(
    shared: &RouterShared,
    conns: &mut QueryConns,
    request: &Request,
) -> Result<(u64, Vec<(usize, CatalogEntry)>), String> {
    let mut generation = 0u64;
    let mut gathered = Vec::new();
    for (shard, resp) in conns.gather_all(shared, request)? {
        match resp {
            Response::Entries {
                generation: g,
                entries,
            } => {
                generation += g;
                gathered.extend(entries.into_iter().map(|e| (shard, e)));
            }
            other => return Err(format!("shard {shard}: unexpected {other:?}")),
        }
    }
    Ok((generation, gathered))
}

/// Resolve one identifier: consult the shards the bridge says can hold
/// it, chase bridge chains to closure, and join what comes back.
fn lookup(shared: &RouterShared, conns: &mut QueryConns, identifier: &str) -> Response {
    let norm = normalize_identifier(identifier);
    let request = Request::Lookup {
        identifier: identifier.to_string(),
    };
    let mut mask = shared.bridge.lock().lookup_shards(identifier);
    let mut queried: ShardMask = 0;
    let mut generation = 0u64;
    let mut gathered: Vec<(usize, CatalogEntry)> = Vec::new();
    while mask & !queried != 0 {
        let fresh = mask & !queried;
        queried |= fresh;
        for (shard, result) in conns.scatter(shared, fresh, &request) {
            match result {
                Ok(Response::Entry {
                    generation: g,
                    entry,
                }) => {
                    generation += g;
                    if let Some(e) = entry {
                        // a bridged identifier in the answer can widen
                        // the shard set — chase it next round
                        let bridge = shared.bridge.lock();
                        for id in &e.identifiers {
                            if let Some(extra) = bridge.bridged_mask(id) {
                                mask |= extra;
                            }
                        }
                        gathered.push((shard, e));
                    }
                }
                Ok(other) => return err(format!("shard {shard}: unexpected {other:?}")),
                Err(e) => return err(e),
            }
        }
    }
    let merged = merge_entries(gathered);
    // identifier collisions can leave several merged clusters claiming
    // the key; prefer the one actually publishing it (deterministic:
    // merge order is fixed), mirroring the backend's lowest-id rule
    let entry = if merged.len() <= 1 {
        merged.into_iter().next()
    } else {
        let mut merged = merged;
        let at = merged
            .iter()
            .position(|e| e.identifiers.contains(&norm))
            .unwrap_or(0);
        Some(merged.swap_remove(at))
    };
    Response::Entry { generation, entry }
}

/// A deduplicated candidate ranked for the top-k heap: highest fused
/// magnitude first, ties to the earlier merged entry (deterministic for
/// any gather order, since merge order is deterministic).
struct Ranked {
    magnitude: f64,
    index: usize,
}

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Ranked {}
impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.magnitude
            .total_cmp(&other.magnitude)
            .then_with(|| other.index.cmp(&self.index))
    }
}

/// Global top-k: scatter per-shard top-k, dedup bridged clusters, then
/// heap-select the k best of the merged candidates. Each shard returns
/// its own k best, which over-fetches exactly enough — a cluster in the
/// global top k is in the top k of every shard holding a piece of it.
fn top_k(shared: &RouterShared, conns: &mut QueryConns, attribute: &str, k: usize) -> Response {
    let request = Request::TopK {
        attribute: attribute.to_string(),
        k,
    };
    let (generation, gathered) = match gather_entries(shared, conns, &request) {
        Ok(x) => x,
        Err(e) => return err(e),
    };
    let merged = merge_entries(gathered);
    let mut heap: BinaryHeap<Ranked> = merged
        .iter()
        .enumerate()
        .filter_map(|(index, e)| {
            let magnitude = e.attributes.get(attribute)?.base_magnitude()?;
            Some(Ranked { magnitude, index })
        })
        .collect();
    let mut picked = Vec::with_capacity(k.min(heap.len()));
    while picked.len() < k {
        match heap.pop() {
            Some(r) => picked.push(r.index),
            None => break,
        }
    }
    let mut take: Vec<Option<CatalogEntry>> = merged.into_iter().map(Some).collect();
    let entries = picked
        .into_iter()
        .map(|i| take[i].take().expect("heap indices are unique"))
        .collect();
    Response::Entries {
        generation,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::server::{Server, ServerConfig};
    use bdi_types::{RecordId, SourceId, Value};

    fn rec(s: u32, q: u32, title: &str, ids: &[&str], price: f64) -> Record {
        let mut r = Record::new(RecordId::new(SourceId(s), q), title);
        for id in ids {
            r.identifiers.push((*id).to_string());
        }
        r.attributes.insert("price".into(), Value::num(price));
        r
    }

    fn fleet(n: usize) -> (Vec<Server>, Router) {
        fleet_replicated(n, 1)
    }

    fn fleet_replicated(shards: usize, replicas: usize) -> (Vec<Server>, Router) {
        let backends: Vec<Server> = (0..shards * replicas)
            .map(|_| Server::start(ServerConfig::default()).expect("backend binds"))
            .collect();
        let router = Router::start(RouterConfig {
            backends: backends.iter().map(|s| s.addr().to_string()).collect(),
            replicas,
            batch: 4,
            ..RouterConfig::default()
        })
        .expect("router binds");
        (backends, router)
    }

    #[test]
    fn routed_fleet_serves_like_one_node() {
        let (backends, router) = fleet(2);
        let mut client = Client::connect(router.addr()).unwrap();
        // enough distinct identifiers that both shards get records
        let records: Vec<Record> = (0..24u32)
            .map(|i| {
                rec(
                    i % 4,
                    i / 4,
                    &format!("Gadget{} model{}", i / 2, i / 2),
                    &[&format!("XXX-YYY-{:05}", i / 2)],
                    f64::from(i),
                )
            })
            .collect();
        for r in records.iter().take(12).cloned() {
            client.ingest(r).unwrap();
        }
        let submitted = client.ingest_batch(records[12..].to_vec()).unwrap();
        assert_eq!(submitted, 24, "router counts each record once");
        let (_, applied) = client.flush().unwrap();
        assert_eq!(applied, 24, "every copy applied across the fleet");

        let stats = client.stats().unwrap();
        assert_eq!(stats.submitted, 24, "no bridging needed: no replicas");
        assert_eq!(stats.records, 24);
        assert_eq!(stats.products, 12, "each pair fused on one shard");

        // per-shard placement is real: both backends hold something
        for b in &backends {
            let mut direct = Client::connect(b.addr()).unwrap();
            assert!(direct.stats().unwrap().records > 0, "both shards used");
        }

        // single-shard lookup resolves through the router
        let entry = client.lookup("xxx-yyy-00003").unwrap().expect("resolves");
        assert_eq!(entry.pages.len(), 2);

        // scatter-gather top_k sees the global order
        let top = client.top_k("price", 3).unwrap();
        assert_eq!(top.len(), 3);
        let mags: Vec<f64> = top
            .iter()
            .map(|e| e.attributes["price"].base_magnitude().unwrap())
            .collect();
        assert!(mags[0] >= mags[1] && mags[1] >= mags[2]);

        // filter crosses shards too
        let within = client.filter("price", Some(10.0), None, None).unwrap();
        assert!(!within.is_empty());

        // merged metrics carry both router and backend families
        let metrics = client.metrics().unwrap();
        assert_eq!(metrics.counters["route.ingest.submitted"], 24);
        assert_eq!(metrics.counters["serve.ingest.submitted"], 24);
        assert!(metrics
            .histograms
            .contains_key("route.backend.batch_records"));

        drop(client);
        router.shutdown();
        for b in backends {
            b.shutdown();
        }
    }

    #[test]
    fn replicas_mirror_every_copy() {
        let (backends, router) = fleet_replicated(2, 2);
        let mut client = Client::connect(router.addr()).unwrap();
        let records: Vec<Record> = (0..16u32)
            .map(|i| {
                rec(
                    i % 4,
                    i / 4,
                    &format!("Gadget{} model{}", i / 2, i / 2),
                    &[&format!("XXX-YYY-{:05}", i / 2)],
                    f64::from(i),
                )
            })
            .collect();
        let submitted = client.ingest_batch(records).unwrap();
        assert_eq!(submitted, 16, "each record still counted once");
        let (_, applied) = client.flush().unwrap();
        assert_eq!(applied, 16, "representative replicas sum to the total");

        // both replicas of each shard hold identical record counts
        let stats = client.stats().unwrap();
        assert_eq!(stats.records, 16, "merged stats count one copy per shard");
        for pair in backends.chunks(2) {
            let counts: Vec<usize> = pair
                .iter()
                .map(|b| Client::connect(b.addr()).unwrap().stats().unwrap().records)
                .collect();
            assert_eq!(counts[0], counts[1], "replicas mirror the shard's stream");
        }

        drop(client);
        router.shutdown();
        for b in backends {
            b.shutdown();
        }
    }

    #[test]
    fn cross_shard_bridge_joins_clusters_on_read() {
        let (backends, router) = fleet(2);
        let n = backends.len();
        // records sharing a *primary* identifier route to the same home,
        // so the genuinely cross-shard link path is the digit-run match:
        // two identifiers with the same "00100" core whose full
        // normalized forms hash to different shards
        let ida = "CAM-LUM-00100".to_string();
        let home_a = crate::gen::shard_of(&normalize_identifier(&ida), n);
        let idb = (b'A'..=b'Z')
            .flat_map(|c1| {
                (b'A'..=b'Z')
                    .map(move |c2| format!("{}{}C-TRI-00100", char::from(c1), char::from(c2)))
            })
            .find(|cand| crate::gen::shard_of(&normalize_identifier(cand), n) != home_a)
            .expect("some prefix hashes to the other shard");

        let mut client = Client::connect(router.addr()).unwrap();
        client
            .ingest(rec(0, 0, "Lumetra LX-100 camera", &[&ida], 499.0))
            .unwrap();
        // same digit core + corroborating title: scores 0.95 via the
        // digit-run path, exactly as single-node linkage would — but
        // only because the bridge replicated it onto ida's shard
        client
            .ingest(rec(1, 0, "Lumetra LX-100 camera kit", &[&idb], 549.0))
            .unwrap();
        client.flush().unwrap();

        let via_a = client.lookup(&ida).unwrap().expect("cluster via ida");
        assert_eq!(
            via_a.pages.len(),
            2,
            "digit-core pair fused across the shard boundary"
        );
        // idb hashes to the other shard, whose local entry is the lone
        // replica — the bridge chase pulls in the owning shard's cluster
        let via_b = client.lookup(&idb).unwrap().expect("cluster via idb");
        assert_eq!(
            via_b.pages, via_a.pages,
            "lookup crosses the shard boundary through the bridge"
        );
        assert!(via_b.identifiers.contains(&normalize_identifier(&ida)));

        let stats = client.stats().unwrap();
        assert_eq!(stats.submitted, 3, "one replica counted on its shard");

        drop(client);
        router.shutdown();
        for b in backends {
            b.shutdown();
        }
    }

    #[test]
    fn dead_backend_is_a_clean_error_not_a_hang() {
        let (mut backends, router) = fleet(2);
        let mut client = Client::connect(router.addr()).unwrap();
        let ids: Vec<String> = (0..8u32).map(|i| format!("WID-GET-{i:05}")).collect();
        for (i, id) in ids.iter().enumerate() {
            client
                .ingest(rec(i as u32, 0, &format!("Widget mk{i}"), &[id], i as f64))
                .unwrap();
        }
        client.flush().unwrap();

        // kill shard 1 in the background. Its accept loop dies at once;
        // its open connections each close after one more request — which
        // is exactly how a remote kill looks from the router's side.
        let victim = backends.remove(1);
        let killer = std::thread::spawn(move || victim.shutdown());

        // scatter path: polling stats soon fails cleanly, naming the
        // dead shard — and the router connection survives the error
        let mut named = None;
        for _ in 0..200 {
            match client.stats() {
                Ok(_) => std::thread::sleep(Duration::from_millis(5)),
                Err(e) => {
                    named = Some(e.to_string());
                    break;
                }
            }
        }
        let named = named.expect("scatter reports the dead shard, no hang");
        assert!(named.contains("shard 1"), "error names the shard: {named}");

        // ingest path: keep routing until a record homes on the dead
        // shard; the ack becomes a clean error, and flush's barrier
        // still terminates (drained, not applied) and reports the death
        let mut saw_error = false;
        for i in 100..2000u32 {
            let r = rec(
                i,
                0,
                &format!("Late widget mk{i}"),
                &[&format!("LAT-WID-{i:05}")],
                1.0,
            );
            if client.ingest(r).is_err() {
                saw_error = true;
                break;
            }
        }
        assert!(saw_error, "some late record homes on the dead shard");
        let flush = client.flush();
        assert!(flush.is_err(), "flush reports the dead shard: {flush:?}");

        // the surviving shard keeps answering single-shard lookups
        let survivor = ids
            .iter()
            .find(|id| crate::gen::shard_of(&normalize_identifier(id), 2) == 0)
            .expect("some identifier homes on shard 0");
        assert!(
            client.lookup(survivor).unwrap().is_some(),
            "surviving shard still serves"
        );

        drop(client);
        router.shutdown();
        killer.join().expect("backend shutdown completes");
        for b in backends {
            b.shutdown();
        }
    }
}
