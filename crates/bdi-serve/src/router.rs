//! The router tier: one process that makes N backends look like one.
//!
//! `bdi route` binds the same JSON-lines protocol a single backend
//! speaks and hash-partitions work across `bdi serve` processes, so a
//! client needs no sharding awareness at all — point `bdi load` at the
//! router and the stream fans out.
//!
//! **Write path.** Every ingested record is routed by the FNV-1a hash
//! of its routing key ([`BridgeIndex::routing_key`]) to a home shard,
//! widened by the bridge index to any shards holding blocking-key
//! evidence for it (see [`crate::bridge`]). Records travel to backends
//! over one long-lived *lane* per backend: a bounded channel drained by
//! a worker thread that packs records into `ingest_batch` requests and
//! **pipelines** them — up to [`RouterConfig::pipeline`] batches are in
//! flight before the worker stops to read acks, so neither the
//! per-record round trip nor the per-batch round trip gates aggregate
//! throughput. Client `ingest`/`ingest_batch` acks mean *accepted and
//! routed*; `flush` is the delivery barrier — it waits until every lane
//! has settled every routed record, then flushes each backend.
//!
//! **Read path.** `lookup` consults the shard its identifier hashes to,
//! widened (and chased to closure) through the bridge index when the
//! identifier belongs to a replicated record; gathered entries are
//! joined by [`merge_entries`]. `filter`, `top_k`, `stats` and
//! `metrics` scatter to every backend — requests are written to all
//! backend connections before any response is read, so backends work
//! concurrently — and gather/merge: entries through the shared-page
//! union-find overlay, top-k through a heap over the deduplicated
//! candidates, stats through [`merge_stats`], metrics through
//! `bdi-obs`'s mergeable [`RegistrySnapshot`]s (the router's own
//! `route.*` registry is merged in alongside the backends' `serve.*`
//! families).
//!
//! **Failure.** A dead backend never hangs the router: lane workers
//! mark their backend down on any I/O error and keep draining (so
//! barriers terminate), and every query that needed the dead shard
//! answers with an `error` response naming it. Reported `generation`
//! and `applied` values are fleet sums, monotone per shard.
//!
//! [`RegistrySnapshot`]: bdi_obs::RegistrySnapshot

use crate::bridge::{mask_shards, merge_entries, merge_stats, BridgeIndex, ShardMask, MAX_SHARDS};
use crate::protocol::{MetricsBody, Request, Response, StatsBody};
use bdi_core::catalog::CatalogEntry;
use bdi_linkage::blocking::normalize_identifier;
use bdi_linkage::fingerprint::RecordFingerprint;
use bdi_obs::{Counter, Gauge, Histogram, Registry};
use bdi_types::Record;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::{BinaryHeap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Router tunables.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Backend `bdi serve` addresses, one per shard (1..=64). Shard
    /// index is position in this list — keep the order stable across
    /// router restarts or records will re-home.
    pub backends: Vec<String>,
    /// Match threshold the backends were started with. Routing
    /// correctness depends on it: above the title-only score ceiling
    /// the bridge replicates on identifier evidence alone (see
    /// [`BridgeIndex::for_threshold`]).
    pub threshold: f64,
    /// Records per `ingest_batch` request sent to a backend.
    pub batch: usize,
    /// Batches in flight per backend before the lane worker stops to
    /// read acks — the pipelining depth.
    pub pipeline: usize,
    /// Buffered records per lane — the router-side backpressure bound.
    pub queue_capacity: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            threshold: 0.9,
            batch: 64,
            pipeline: 4,
            queue_capacity: 1024,
        }
    }
}

/// Router-side metric handles, resolved once at startup. All names live
/// under `route.*` so a merged `metrics` response keeps them distinct
/// from the backends' `serve.*` families.
struct RouteMetrics {
    registry: Registry,
    /// Records routed (counted once each, replicas excluded).
    submitted: Counter,
    /// Extra copies sent to non-home shards for bridging.
    replicated: Counter,
    /// Replica sends skipped because the target backend was down.
    replicas_dropped: Counter,
    /// Unparseable requests plus error responses.
    request_errors: Counter,
    /// Records per client-facing `ingest_batch` request.
    batch_records: Arc<Histogram>,
    /// Records per `ingest_batch` request sent to a backend lane.
    backend_batch_records: Arc<Histogram>,
    /// Replicated records the bridge currently tracks.
    bridged_records: Gauge,
    /// Backends currently marked down.
    backends_down: Gauge,
}

impl RouteMetrics {
    fn new(registry: Registry) -> Self {
        Self {
            submitted: registry.counter("route.ingest.submitted"),
            replicated: registry.counter("route.ingest.replicated"),
            replicas_dropped: registry.counter("route.ingest.replicas_dropped"),
            request_errors: registry.counter("route.request.errors"),
            batch_records: registry.histogram("route.ingest.batch_records"),
            backend_batch_records: registry.histogram("route.backend.batch_records"),
            bridged_records: registry.gauge("route.bridge.bridged_records"),
            backends_down: registry.gauge("route.backend.down"),
            registry,
        }
    }
}

/// One backend's ingest lane: the channel handlers route into plus the
/// counters the flush barrier reconciles.
struct Lane {
    addr: SocketAddr,
    tx: Sender<Record>,
    /// Records handed to this lane (home copies and replicas).
    enqueued: AtomicU64,
    /// Records acked by the backend — or discarded after its death, so
    /// `settled == enqueued` is always eventually true.
    settled: AtomicU64,
    /// Set on the first I/O error; never cleared (backends don't
    /// rejoin a running router).
    down: AtomicBool,
}

/// State shared by connection handlers and lane workers.
struct RouterShared {
    lanes: Vec<Lane>,
    bridge: Mutex<BridgeIndex>,
    metrics: RouteMetrics,
    shutdown: AtomicBool,
}

impl RouterShared {
    fn mark_down(&self, shard: usize, err: &str) {
        if !self.lanes[shard].down.swap(true, Ordering::SeqCst) {
            eprintln!(
                "bdi-route: shard {shard} ({}) marked down: {err}",
                self.lanes[shard].addr
            );
            let down = self
                .lanes
                .iter()
                .filter(|l| l.down.load(Ordering::SeqCst))
                .count();
            self.metrics.backends_down.set(down as u64);
        }
    }
}

/// A running router.
pub struct Router {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    accept: Option<JoinHandle<()>>,
    lane_workers: Vec<JoinHandle<()>>,
}

impl Router {
    /// Bind and start routing over the configured backends. Backend
    /// connections are opened lazily — a backend that is down at start
    /// surfaces as per-shard errors, not a failed bind.
    pub fn start(cfg: RouterConfig) -> std::io::Result<Router> {
        if cfg.backends.is_empty() || cfg.backends.len() > MAX_SHARDS {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("need 1..={MAX_SHARDS} backends, got {}", cfg.backends.len()),
            ));
        }
        let mut addrs = Vec::with_capacity(cfg.backends.len());
        for b in &cfg.backends {
            let addr = b.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("backend '{b}' resolves to no address"),
                )
            })?;
            addrs.push(addr);
        }
        let listener = TcpListener::bind(cfg.addr.as_str())?;
        let addr = listener.local_addr()?;

        let mut lanes = Vec::with_capacity(addrs.len());
        let mut receivers = Vec::with_capacity(addrs.len());
        for &backend in &addrs {
            let (tx, rx) = bounded(cfg.queue_capacity.max(1));
            lanes.push(Lane {
                addr: backend,
                tx,
                enqueued: AtomicU64::new(0),
                settled: AtomicU64::new(0),
                down: AtomicBool::new(false),
            });
            receivers.push(rx);
        }
        let shared = Arc::new(RouterShared {
            lanes,
            bridge: Mutex::new(BridgeIndex::for_threshold(addrs.len(), cfg.threshold)),
            metrics: RouteMetrics::new(Registry::new()),
            shutdown: AtomicBool::new(false),
        });

        let batch = cfg.batch.max(1);
        let depth = cfg.pipeline.max(1);
        let lane_workers = receivers
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || lane_worker(shard, shared, rx, batch, depth))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, addr, shared))
        };
        Ok(Router {
            addr,
            shared,
            accept: Some(accept),
            lane_workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown and wait for the accept loop and lane workers
    /// to drain. Backends are left running — the router does not own
    /// them.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        self.join();
    }

    /// Block until a client issues `shutdown`, then drain. This is what
    /// `bdi route` parks on.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for h in self.lane_workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// One raw backend connection: unlike [`crate::Client`], requests and
/// responses are decoupled so callers can write to several backends
/// before reading from any (scatter) or run writes ahead of acks
/// (pipelining).
struct LaneConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl LaneConn {
    fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { writer, reader })
    }

    fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    fn send(&mut self, request: &Request) -> std::io::Result<()> {
        let line = serde_json::to_string(request)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.send_line(&line)
    }

    fn recv(&mut self) -> std::io::Result<Response> {
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "backend closed connection",
            ));
        }
        serde_json::from_str(&reply)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Read one response that must be an ingest ack.
    fn recv_ack(&mut self) -> std::io::Result<()> {
        match self.recv()? {
            Response::Ack { .. } => Ok(()),
            Response::Error { message } => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("backend rejected batch: {message}"),
            )),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected response to ingest_batch: {other:?}"),
            )),
        }
    }
}

/// One backend's ingest worker: drain the lane channel into pipelined
/// `ingest_batch` requests. After an I/O error the worker marks the
/// backend down and keeps draining the channel, settling (discarding)
/// records so flush barriers always terminate.
fn lane_worker(
    shard: usize,
    shared: Arc<RouterShared>,
    rx: Receiver<Record>,
    batch: usize,
    depth: usize,
) {
    let lane = &shared.lanes[shard];
    let mut conn: Option<LaneConn> = None;
    // records per in-flight ingest_batch, oldest first
    let mut outstanding: VecDeque<u64> = VecDeque::new();
    loop {
        let first = match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(r) => Some(r),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        if lane.down.load(Ordering::SeqCst) {
            // drain mode: settle everything so barriers terminate
            let mut settled = u64::from(first.is_some());
            while rx.try_recv().is_ok() {
                settled += 1;
            }
            if settled > 0 {
                lane.settled.fetch_add(settled, Ordering::SeqCst);
            }
            if shared.shutdown.load(Ordering::SeqCst) && rx.is_empty() {
                break;
            }
            continue;
        }
        let Some(first) = first else {
            if shared.shutdown.load(Ordering::SeqCst) && rx.is_empty() && outstanding.is_empty() {
                break;
            }
            continue;
        };
        let mut records = vec![first];
        while records.len() < batch {
            match rx.try_recv() {
                Ok(r) => records.push(r),
                Err(_) => break,
            }
        }
        let n = records.len() as u64;
        shared.metrics.backend_batch_records.record(n);
        let sent = ensure_conn(&mut conn, lane.addr)
            .and_then(|c| c.send(&Request::IngestBatch { records }));
        match sent {
            Ok(()) => outstanding.push_back(n),
            Err(e) => {
                fail_lane(&shared, shard, &mut outstanding, n, &e.to_string());
                conn = None;
                continue;
            }
        }
        // read acks once the pipeline is full, and always drain fully
        // when no more input is waiting — an idle lane owes no acks, so
        // the flush barrier sees settled == enqueued promptly
        while outstanding.len() >= depth || (rx.is_empty() && !outstanding.is_empty()) {
            let acked = conn.as_mut().expect("sent over this conn").recv_ack();
            match acked {
                Ok(()) => {
                    let n = outstanding.pop_front().expect("one ack per batch");
                    lane.settled.fetch_add(n, Ordering::SeqCst);
                }
                Err(e) => {
                    fail_lane(&shared, shard, &mut outstanding, 0, &e.to_string());
                    conn = None;
                    break;
                }
            }
        }
    }
    // disconnected or shutdown: collect acks still owed
    if let Some(c) = conn.as_mut() {
        while !outstanding.is_empty() {
            match c.recv_ack() {
                Ok(()) => {
                    let n = outstanding.pop_front().expect("one ack per batch");
                    lane.settled.fetch_add(n, Ordering::SeqCst);
                }
                Err(e) => {
                    fail_lane(&shared, shard, &mut outstanding, 0, &e.to_string());
                    break;
                }
            }
        }
    }
}

fn ensure_conn(conn: &mut Option<LaneConn>, addr: SocketAddr) -> std::io::Result<&mut LaneConn> {
    if conn.is_none() {
        *conn = Some(LaneConn::connect(addr)?);
    }
    Ok(conn.as_mut().expect("just connected"))
}

/// Mark a lane's backend down and settle everything it will never ack:
/// the batch that failed to send (`pending`) plus every batch in
/// flight.
fn fail_lane(
    shared: &RouterShared,
    shard: usize,
    outstanding: &mut VecDeque<u64>,
    pending: u64,
    err: &str,
) {
    let lost: u64 = pending + outstanding.drain(..).sum::<u64>();
    if lost > 0 {
        shared.lanes[shard]
            .settled
            .fetch_add(lost, Ordering::SeqCst);
    }
    shared.mark_down(shard, err);
}

fn accept_loop(listener: TcpListener, addr: SocketAddr, shared: Arc<RouterShared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || handle_connection(stream, addr, shared));
    }
}

fn handle_connection(stream: TcpStream, addr: SocketAddr, shared: Arc<RouterShared>) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let reader = BufReader::new(read_half);
    // per-connection backend connections for scatter-gather reads; lazy,
    // so a connection that only ingests opens none
    let mut conns = QueryConns::new(shared.lanes.len());
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Request>(&line) {
            Err(e) => {
                shared.metrics.request_errors.inc();
                Response::Error {
                    message: format!("bad request: {e}"),
                }
            }
            Ok(request) => {
                let response = catch_unwind(AssertUnwindSafe(|| {
                    dispatch(request, &shared, &mut conns, addr)
                }))
                .unwrap_or_else(|_| Response::Error {
                    message: "internal error: request handler panicked".to_string(),
                });
                if matches!(response, Response::Error { .. }) {
                    shared.metrics.request_errors.inc();
                }
                response
            }
        };
        let done = matches!(response, Response::Bye);
        let Ok(body) = serde_json::to_string(&response) else {
            break;
        };
        if writeln!(writer, "{body}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if done || shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Per-connection lazy backend connections for the scatter-gather read
/// path (the write path goes through the shared lanes instead).
struct QueryConns {
    conns: Vec<Option<LaneConn>>,
}

impl QueryConns {
    fn new(n: usize) -> Self {
        Self {
            conns: (0..n).map(|_| None).collect(),
        }
    }

    fn ensure(&mut self, shard: usize, addr: SocketAddr) -> std::io::Result<&mut LaneConn> {
        if self.conns[shard].is_none() {
            self.conns[shard] = Some(LaneConn::connect(addr)?);
        }
        Ok(self.conns[shard].as_mut().expect("just connected"))
    }

    /// Write `request` to every shard in `mask`, *then* read one
    /// response from each — backends process concurrently. Results come
    /// back in shard order; a failed shard yields an `Err` naming it.
    fn scatter(
        &mut self,
        shared: &RouterShared,
        mask: ShardMask,
        request: &Request,
    ) -> Vec<(usize, Result<Response, String>)> {
        let line = serde_json::to_string(request).expect("requests serialize");
        let mut results: Vec<(usize, Result<Response, String>)> = Vec::new();
        let mut sent: Vec<usize> = Vec::new();
        let n = self.conns.len();
        for shard in mask_shards(mask).filter(|&s| s < n) {
            let addr = shared.lanes[shard].addr;
            match self.ensure(shard, addr).and_then(|c| c.send_line(&line)) {
                Ok(()) => sent.push(shard),
                Err(e) => {
                    self.conns[shard] = None;
                    results.push((shard, Err(format!("shard {shard} ({addr}): {e}"))));
                }
            }
        }
        for shard in sent {
            let addr = shared.lanes[shard].addr;
            match self.conns[shard].as_mut().expect("sent over it").recv() {
                Ok(resp) => results.push((shard, Ok(resp))),
                Err(e) => {
                    self.conns[shard] = None;
                    results.push((shard, Err(format!("shard {shard} ({addr}): {e}"))));
                }
            }
        }
        results.sort_by_key(|(s, _)| *s);
        results
    }

    /// Scatter to every backend; any per-shard failure collapses the
    /// whole request into one error naming each failed shard.
    fn gather_all(
        &mut self,
        shared: &RouterShared,
        request: &Request,
    ) -> Result<Vec<(usize, Response)>, String> {
        let mask = if shared.lanes.len() == MAX_SHARDS {
            ShardMask::MAX
        } else {
            (1u64 << shared.lanes.len()) - 1
        };
        let mut out = Vec::new();
        let mut errors = Vec::new();
        for (shard, result) in self.scatter(shared, mask, request) {
            match result {
                Ok(resp) => out.push((shard, resp)),
                Err(e) => errors.push(e),
            }
        }
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors.join("; "))
        }
    }
}

/// Route one record: bridge decision under the lock, then fan the
/// record out to its home lane and any replica lanes. Returns the
/// router's submitted counter after this record.
fn route_one(shared: &RouterShared, record: Record) -> Result<u64, String> {
    let fp = RecordFingerprint::of(&record);
    let route = {
        let mut bridge = shared.bridge.lock();
        let route = bridge.route(&record, &fp);
        shared
            .metrics
            .bridged_records
            .set(bridge.bridged_len() as u64);
        route
    };
    let home = &shared.lanes[route.home];
    if home.down.load(Ordering::SeqCst) {
        return Err(format!("shard {} ({}) is down", route.home, home.addr));
    }
    let targets: Vec<usize> = route
        .shards()
        .filter(|&s| {
            let up = !shared.lanes[s].down.load(Ordering::SeqCst);
            if !up {
                shared.metrics.replicas_dropped.inc();
            }
            up
        })
        .collect();
    if targets.is_empty() {
        // home went down between the check above and the filter
        return Err(format!("shard {} ({}) is down", route.home, home.addr));
    }
    let mut record = Some(record);
    for (i, &shard) in targets.iter().enumerate() {
        let lane = &shared.lanes[shard];
        lane.enqueued.fetch_add(1, Ordering::SeqCst);
        let copy = if i + 1 == targets.len() {
            record.take().expect("moved exactly once")
        } else {
            record
                .as_ref()
                .expect("present until the last target")
                .clone()
        };
        if lane.tx.send(copy).is_err() {
            lane.settled.fetch_add(1, Ordering::SeqCst);
            if shard == route.home {
                return Err("ingest lane closed".to_string());
            }
        }
        if shard != route.home {
            shared.metrics.replicated.inc();
        }
    }
    Ok(shared.metrics.submitted.inc())
}

/// Wait until every lane has settled every record routed to it. Lane
/// workers settle even after a backend death (drain mode), so this
/// always terminates; a down backend then surfaces as an error.
fn ingest_barrier(shared: &RouterShared) -> Result<(), String> {
    loop {
        let pending = shared
            .lanes
            .iter()
            .any(|l| l.settled.load(Ordering::SeqCst) < l.enqueued.load(Ordering::SeqCst));
        if !pending {
            break;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return Err("shutting down".to_string());
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    let down: Vec<String> = shared
        .lanes
        .iter()
        .enumerate()
        .filter(|(_, l)| l.down.load(Ordering::SeqCst))
        .map(|(i, l)| format!("shard {i} ({})", l.addr))
        .collect();
    if down.is_empty() {
        Ok(())
    } else {
        Err(format!("backend(s) down: {}", down.join(", ")))
    }
}

fn err(message: String) -> Response {
    Response::Error { message }
}

fn dispatch(
    request: Request,
    shared: &RouterShared,
    conns: &mut QueryConns,
    addr: SocketAddr,
) -> Response {
    match request {
        Request::Lookup { identifier } => lookup(shared, conns, &identifier),
        Request::Filter {
            attribute,
            min,
            max,
            limit,
        } => {
            let request = Request::Filter {
                attribute,
                min,
                max,
                limit,
            };
            match gather_entries(shared, conns, &request) {
                Ok((generation, gathered)) => {
                    let mut entries = merge_entries(gathered);
                    entries.truncate(limit.unwrap_or(100));
                    Response::Entries {
                        generation,
                        entries,
                    }
                }
                Err(e) => err(e),
            }
        }
        Request::TopK { attribute, k } => top_k(shared, conns, &attribute, k),
        Request::Ingest { record } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return err("shutting down".to_string());
            }
            match route_one(shared, record) {
                Ok(submitted) => Response::Ack { submitted },
                Err(e) => err(e),
            }
        }
        Request::IngestBatch { records } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return err("shutting down".to_string());
            }
            shared.metrics.batch_records.record(records.len() as u64);
            let mut submitted = shared.metrics.submitted.get();
            for record in records {
                match route_one(shared, record) {
                    Ok(s) => submitted = s,
                    Err(e) => return err(e),
                }
            }
            Response::Ack { submitted }
        }
        Request::Flush => {
            if let Err(e) = ingest_barrier(shared) {
                return err(e);
            }
            match conns.gather_all(shared, &Request::Flush) {
                Ok(responses) => {
                    let (mut generation, mut applied) = (0u64, 0u64);
                    for (shard, resp) in responses {
                        match resp {
                            Response::Flushed {
                                generation: g,
                                applied: a,
                            } => {
                                generation += g;
                                applied += a;
                            }
                            other => {
                                return err(format!("shard {shard}: unexpected {other:?}"));
                            }
                        }
                    }
                    Response::Flushed {
                        generation,
                        applied,
                    }
                }
                Err(e) => err(e),
            }
        }
        Request::Stats => match conns.gather_all(shared, &Request::Stats) {
            Ok(responses) => {
                let mut bodies: Vec<StatsBody> = Vec::with_capacity(responses.len());
                for (shard, resp) in responses {
                    match resp {
                        Response::Stats(body) => bodies.push(body),
                        other => return err(format!("shard {shard}: unexpected {other:?}")),
                    }
                }
                Response::Stats(merge_stats(&bodies))
            }
            Err(e) => err(e),
        },
        Request::Metrics => match conns.gather_all(shared, &Request::Metrics) {
            Ok(responses) => {
                let mut merged = shared.metrics.registry.snapshot();
                for (shard, resp) in responses {
                    match resp {
                        Response::Metrics(body) => match body.to_snapshot() {
                            Some(snap) => merged = merged.merge(&snap),
                            None => {
                                return err(format!("shard {shard}: malformed metrics body"));
                            }
                        },
                        other => return err(format!("shard {shard}: unexpected {other:?}")),
                    }
                }
                Response::Metrics(MetricsBody::from(merged))
            }
            Err(e) => err(e),
        },
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(addr);
            Response::Bye
        }
    }
}

/// Scatter an entry-listing request to every backend and pool the
/// returned entries with their shard tags; generation is the fleet sum.
fn gather_entries(
    shared: &RouterShared,
    conns: &mut QueryConns,
    request: &Request,
) -> Result<(u64, Vec<(usize, CatalogEntry)>), String> {
    let mut generation = 0u64;
    let mut gathered = Vec::new();
    for (shard, resp) in conns.gather_all(shared, request)? {
        match resp {
            Response::Entries {
                generation: g,
                entries,
            } => {
                generation += g;
                gathered.extend(entries.into_iter().map(|e| (shard, e)));
            }
            other => return Err(format!("shard {shard}: unexpected {other:?}")),
        }
    }
    Ok((generation, gathered))
}

/// Resolve one identifier: consult the shards the bridge says can hold
/// it, chase bridge chains to closure, and join what comes back.
fn lookup(shared: &RouterShared, conns: &mut QueryConns, identifier: &str) -> Response {
    let norm = normalize_identifier(identifier);
    let request = Request::Lookup {
        identifier: identifier.to_string(),
    };
    let mut mask = shared.bridge.lock().lookup_shards(identifier);
    let mut queried: ShardMask = 0;
    let mut generation = 0u64;
    let mut gathered: Vec<(usize, CatalogEntry)> = Vec::new();
    while mask & !queried != 0 {
        let fresh = mask & !queried;
        queried |= fresh;
        for (shard, result) in conns.scatter(shared, fresh, &request) {
            match result {
                Ok(Response::Entry {
                    generation: g,
                    entry,
                }) => {
                    generation += g;
                    if let Some(e) = entry {
                        // a bridged identifier in the answer can widen
                        // the shard set — chase it next round
                        let bridge = shared.bridge.lock();
                        for id in &e.identifiers {
                            if let Some(extra) = bridge.bridged_mask(id) {
                                mask |= extra;
                            }
                        }
                        gathered.push((shard, e));
                    }
                }
                Ok(other) => return err(format!("shard {shard}: unexpected {other:?}")),
                Err(e) => return err(e),
            }
        }
    }
    let merged = merge_entries(gathered);
    // identifier collisions can leave several merged clusters claiming
    // the key; prefer the one actually publishing it (deterministic:
    // merge order is fixed), mirroring the backend's lowest-id rule
    let entry = if merged.len() <= 1 {
        merged.into_iter().next()
    } else {
        let mut merged = merged;
        let at = merged
            .iter()
            .position(|e| e.identifiers.contains(&norm))
            .unwrap_or(0);
        Some(merged.swap_remove(at))
    };
    Response::Entry { generation, entry }
}

/// A deduplicated candidate ranked for the top-k heap: highest fused
/// magnitude first, ties to the earlier merged entry (deterministic for
/// any gather order, since merge order is deterministic).
struct Ranked {
    magnitude: f64,
    index: usize,
}

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Ranked {}
impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.magnitude
            .total_cmp(&other.magnitude)
            .then_with(|| other.index.cmp(&self.index))
    }
}

/// Global top-k: scatter per-shard top-k, dedup bridged clusters, then
/// heap-select the k best of the merged candidates. Each shard returns
/// its own k best, which over-fetches exactly enough — a cluster in the
/// global top k is in the top k of every shard holding a piece of it.
fn top_k(shared: &RouterShared, conns: &mut QueryConns, attribute: &str, k: usize) -> Response {
    let request = Request::TopK {
        attribute: attribute.to_string(),
        k,
    };
    let (generation, gathered) = match gather_entries(shared, conns, &request) {
        Ok(x) => x,
        Err(e) => return err(e),
    };
    let merged = merge_entries(gathered);
    let mut heap: BinaryHeap<Ranked> = merged
        .iter()
        .enumerate()
        .filter_map(|(index, e)| {
            let magnitude = e.attributes.get(attribute)?.base_magnitude()?;
            Some(Ranked { magnitude, index })
        })
        .collect();
    let mut picked = Vec::with_capacity(k.min(heap.len()));
    while picked.len() < k {
        match heap.pop() {
            Some(r) => picked.push(r.index),
            None => break,
        }
    }
    let mut take: Vec<Option<CatalogEntry>> = merged.into_iter().map(Some).collect();
    let entries = picked
        .into_iter()
        .map(|i| take[i].take().expect("heap indices are unique"))
        .collect();
    Response::Entries {
        generation,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::server::{Server, ServerConfig};
    use bdi_types::{RecordId, SourceId, Value};

    fn rec(s: u32, q: u32, title: &str, ids: &[&str], price: f64) -> Record {
        let mut r = Record::new(RecordId::new(SourceId(s), q), title);
        for id in ids {
            r.identifiers.push((*id).to_string());
        }
        r.attributes.insert("price".into(), Value::num(price));
        r
    }

    fn fleet(n: usize) -> (Vec<Server>, Router) {
        let backends: Vec<Server> = (0..n)
            .map(|_| Server::start(ServerConfig::default()).expect("backend binds"))
            .collect();
        let router = Router::start(RouterConfig {
            backends: backends.iter().map(|s| s.addr().to_string()).collect(),
            batch: 4,
            ..RouterConfig::default()
        })
        .expect("router binds");
        (backends, router)
    }

    #[test]
    fn routed_fleet_serves_like_one_node() {
        let (backends, router) = fleet(2);
        let mut client = Client::connect(router.addr()).unwrap();
        // enough distinct identifiers that both shards get records
        let records: Vec<Record> = (0..24u32)
            .map(|i| {
                rec(
                    i % 4,
                    i / 4,
                    &format!("Gadget{} model{}", i / 2, i / 2),
                    &[&format!("XXX-YYY-{:05}", i / 2)],
                    f64::from(i),
                )
            })
            .collect();
        for r in records.iter().take(12).cloned() {
            client.ingest(r).unwrap();
        }
        let submitted = client.ingest_batch(records[12..].to_vec()).unwrap();
        assert_eq!(submitted, 24, "router counts each record once");
        let (_, applied) = client.flush().unwrap();
        assert_eq!(applied, 24, "every copy applied across the fleet");

        let stats = client.stats().unwrap();
        assert_eq!(stats.submitted, 24, "no bridging needed: no replicas");
        assert_eq!(stats.records, 24);
        assert_eq!(stats.products, 12, "each pair fused on one shard");

        // per-shard placement is real: both backends hold something
        for b in &backends {
            let mut direct = Client::connect(b.addr()).unwrap();
            assert!(direct.stats().unwrap().records > 0, "both shards used");
        }

        // single-shard lookup resolves through the router
        let entry = client.lookup("xxx-yyy-00003").unwrap().expect("resolves");
        assert_eq!(entry.pages.len(), 2);

        // scatter-gather top_k sees the global order
        let top = client.top_k("price", 3).unwrap();
        assert_eq!(top.len(), 3);
        let mags: Vec<f64> = top
            .iter()
            .map(|e| e.attributes["price"].base_magnitude().unwrap())
            .collect();
        assert!(mags[0] >= mags[1] && mags[1] >= mags[2]);

        // filter crosses shards too
        let within = client.filter("price", Some(10.0), None, None).unwrap();
        assert!(!within.is_empty());

        // merged metrics carry both router and backend families
        let metrics = client.metrics().unwrap();
        assert_eq!(metrics.counters["route.ingest.submitted"], 24);
        assert_eq!(metrics.counters["serve.ingest.submitted"], 24);
        assert!(metrics
            .histograms
            .contains_key("route.backend.batch_records"));

        drop(client);
        router.shutdown();
        for b in backends {
            b.shutdown();
        }
    }

    #[test]
    fn cross_shard_bridge_joins_clusters_on_read() {
        let (backends, router) = fleet(2);
        let n = backends.len();
        // records sharing a *primary* identifier route to the same home,
        // so the genuinely cross-shard link path is the digit-run match:
        // two identifiers with the same "00100" core whose full
        // normalized forms hash to different shards
        let ida = "CAM-LUM-00100".to_string();
        let home_a = crate::gen::shard_of(&normalize_identifier(&ida), n);
        let idb = (b'A'..=b'Z')
            .flat_map(|c1| {
                (b'A'..=b'Z')
                    .map(move |c2| format!("{}{}C-TRI-00100", char::from(c1), char::from(c2)))
            })
            .find(|cand| crate::gen::shard_of(&normalize_identifier(cand), n) != home_a)
            .expect("some prefix hashes to the other shard");

        let mut client = Client::connect(router.addr()).unwrap();
        client
            .ingest(rec(0, 0, "Lumetra LX-100 camera", &[&ida], 499.0))
            .unwrap();
        // same digit core + corroborating title: scores 0.95 via the
        // digit-run path, exactly as single-node linkage would — but
        // only because the bridge replicated it onto ida's shard
        client
            .ingest(rec(1, 0, "Lumetra LX-100 camera kit", &[&idb], 549.0))
            .unwrap();
        client.flush().unwrap();

        let via_a = client.lookup(&ida).unwrap().expect("cluster via ida");
        assert_eq!(
            via_a.pages.len(),
            2,
            "digit-core pair fused across the shard boundary"
        );
        // idb hashes to the other shard, whose local entry is the lone
        // replica — the bridge chase pulls in the owning shard's cluster
        let via_b = client.lookup(&idb).unwrap().expect("cluster via idb");
        assert_eq!(
            via_b.pages, via_a.pages,
            "lookup crosses the shard boundary through the bridge"
        );
        assert!(via_b.identifiers.contains(&normalize_identifier(&ida)));

        let stats = client.stats().unwrap();
        assert_eq!(stats.submitted, 3, "one replica counted on its shard");

        drop(client);
        router.shutdown();
        for b in backends {
            b.shutdown();
        }
    }

    #[test]
    fn dead_backend_is_a_clean_error_not_a_hang() {
        let (mut backends, router) = fleet(2);
        let mut client = Client::connect(router.addr()).unwrap();
        let ids: Vec<String> = (0..8u32).map(|i| format!("WID-GET-{i:05}")).collect();
        for (i, id) in ids.iter().enumerate() {
            client
                .ingest(rec(i as u32, 0, &format!("Widget mk{i}"), &[id], i as f64))
                .unwrap();
        }
        client.flush().unwrap();

        // kill shard 1 in the background. Its accept loop dies at once;
        // its open connections each close after one more request — which
        // is exactly how a remote kill looks from the router's side.
        let victim = backends.remove(1);
        let killer = std::thread::spawn(move || victim.shutdown());

        // scatter path: polling stats soon fails cleanly, naming the
        // dead shard — and the router connection survives the error
        let mut named = None;
        for _ in 0..200 {
            match client.stats() {
                Ok(_) => std::thread::sleep(Duration::from_millis(5)),
                Err(e) => {
                    named = Some(e.to_string());
                    break;
                }
            }
        }
        let named = named.expect("scatter reports the dead shard, no hang");
        assert!(named.contains("shard 1"), "error names the shard: {named}");

        // ingest path: keep routing until a record homes on the dead
        // shard; the ack becomes a clean error, and flush's barrier
        // still terminates (drained, not applied) and reports the death
        let mut saw_error = false;
        for i in 100..2000u32 {
            let r = rec(
                i,
                0,
                &format!("Late widget mk{i}"),
                &[&format!("LAT-WID-{i:05}")],
                1.0,
            );
            if client.ingest(r).is_err() {
                saw_error = true;
                break;
            }
        }
        assert!(saw_error, "some late record homes on the dead shard");
        let flush = client.flush();
        assert!(flush.is_err(), "flush reports the dead shard: {flush:?}");

        // the surviving shard keeps answering single-shard lookups
        let survivor = ids
            .iter()
            .find(|id| crate::gen::shard_of(&normalize_identifier(id), 2) == 0)
            .expect("some identifier homes on shard 0");
        assert!(
            client.lookup(survivor).unwrap().is_some(),
            "surviving shard still serves"
        );

        drop(client);
        router.shutdown();
        killer.join().expect("backend shutdown completes");
        for b in backends {
            b.shutdown();
        }
    }
}
