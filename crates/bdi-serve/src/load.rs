//! The synthetic load driver: replay a generated product web as a live
//! ingest stream while reader threads hammer lookups.
//!
//! This is the serve-path experiment harness. One writer connection
//! feeds every record of a [`bdi_synth::World`] through the ingest
//! queue; `readers` connections spin on `lookup` of identifiers drawn
//! from the world's catalog the whole time. The report gives ingest
//! throughput and read latency percentiles — the numbers the
//! `serve_throughput` bench prints across reader counts.

use crate::client::{Client, HttpClient};
use crate::protocol::{Request, Response};
use bdi_obs::{Registry, TraceContext};
use bdi_synth::{World, WorldConfig};
use bdi_types::Record;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Load-run shape.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// World seed.
    pub seed: u64,
    /// Entities in the generated world.
    pub entities: usize,
    /// Sources in the generated world.
    pub sources: usize,
    /// Records per source, at most — larger caps make denser worlds
    /// (more records per entity, heavier candidate lists) for hot-path
    /// measurement.
    pub max_source_size: usize,
    /// Concurrent reader connections.
    pub readers: usize,
    /// Records per ingest request: 0 or 1 sends one `ingest` per
    /// record; larger values chunk the stream into `ingest_batch`
    /// requests, amortizing round trips — the mode that feeds the
    /// router tier at full rate.
    pub batch: usize,
    /// Drive the server over HTTP/1.1 (`GET /lookup/:id`,
    /// `POST /ingest`) instead of JSON lines. Same port: the readiness
    /// front-end autodetects the protocol from the first bytes of each
    /// connection.
    pub http: bool,
    /// Negotiate binary frames for the ingest stream (`hello` feature
    /// `binary-frames`). Opportunistic: a JSON-only server simply keeps
    /// the run on JSON lines — check [`LoadReport::wire_binary`] for
    /// what actually happened. Ignored when `http` is set.
    pub binary: bool,
    /// Mint a fresh client-side trace id for every Nth ingest request
    /// (0 = none), propagated as trace context (wire envelope / frame
    /// extension, or the `X-Bdi-Trace` header on HTTP runs) so the
    /// server records those requests end to end.
    pub trace_sample: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            entities: 120,
            sources: 12,
            max_source_size: 60,
            readers: 4,
            batch: 1,
            http: false,
            binary: false,
            trace_sample: 0,
        }
    }
}

/// One load connection, speaking whichever protocol the run selected.
/// Both arms hit the same handlers server-side, so the measured work is
/// identical — only the framing differs.
enum Driver {
    Wire(Client),
    Http(HttpClient),
}

impl Driver {
    fn connect(addr: SocketAddr, http: bool, binary: bool, trace: bool) -> std::io::Result<Self> {
        Ok(if http {
            Driver::Http(HttpClient::connect(addr)?)
        } else {
            let mut client = Client::connect(addr)?;
            if binary {
                client.negotiate_binary()?;
            } else if trace {
                // learn `trace-context` without flipping the wire binary
                client.negotiate_trace()?;
            }
            Driver::Wire(client)
        })
    }

    fn is_binary(&self) -> bool {
        match self {
            Driver::Wire(c) => c.is_binary(),
            Driver::Http(_) => false,
        }
    }

    fn lookup(&mut self, identifier: &str) -> std::io::Result<()> {
        match self {
            Driver::Wire(c) => c.lookup(identifier).map(drop),
            Driver::Http(c) => c.lookup(identifier).map(drop),
        }
    }

    fn ingest(&mut self, record: Record, trace: Option<u64>) -> std::io::Result<u64> {
        match self {
            Driver::Wire(c) => match trace {
                Some(t) => ack(c.call_traced(&Request::Ingest { record }, root_ctx(t))?),
                None => c.ingest(record),
            },
            Driver::Http(c) => with_trace_header(c, trace, |c| c.ingest(&record)),
        }
    }

    fn ingest_batch(&mut self, records: Vec<Record>, trace: Option<u64>) -> std::io::Result<u64> {
        match self {
            Driver::Wire(c) => match trace {
                Some(t) => ack(c.call_traced(&Request::IngestBatch { records }, root_ctx(t))?),
                None => c.ingest_batch(records),
            },
            Driver::Http(c) => with_trace_header(c, trace, |c| c.ingest_batch(&records)),
        }
    }

    fn flush(&mut self) -> std::io::Result<(u64, u64)> {
        match self {
            Driver::Wire(c) => c.flush(),
            Driver::Http(c) => c.flush(),
        }
    }
}

/// A client-minted root context: the load driver is the trace origin,
/// so the server's request span becomes the root's first child.
fn root_ctx(trace: u64) -> TraceContext {
    TraceContext {
        trace,
        parent: bdi_obs::trace::NO_PARENT,
    }
}

fn ack(response: Response) -> std::io::Result<u64> {
    match response {
        Response::Ack { submitted } => Ok(submitted),
        Response::Error { message } => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            message,
        )),
        other => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unexpected response: {other:?}"),
        )),
    }
}

/// Run one HTTP call under an `X-Bdi-Trace` header (cleared after).
fn with_trace_header<T>(
    c: &mut HttpClient,
    trace: Option<u64>,
    call: impl FnOnce(&mut HttpClient) -> std::io::Result<T>,
) -> std::io::Result<T> {
    if let Some(t) = trace {
        c.set_trace_header(Some(format!("{t:016x}")));
    }
    let result = call(c);
    if trace.is_some() {
        c.set_trace_header(None);
    }
    result
}

/// What a load run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Records ingested.
    pub records: usize,
    /// Wall-clock seconds for the full ingest (including final flush).
    pub ingest_secs: f64,
    /// Records per second through the ingest path.
    pub ingest_per_sec: f64,
    /// Median per-request ingest round-trip latency, microseconds (one
    /// record per request unless batching) — the number the WAL fsync
    /// batching must keep close to in-memory.
    pub ingest_p50_us: u64,
    /// 99th-percentile per-request ingest round-trip latency,
    /// microseconds (captures fsync and backpressure stalls).
    pub ingest_p99_us: u64,
    /// Median records per ingest request, from the driver-side
    /// batch-size histogram (1 when not batching; the final partial
    /// chunk makes this a distribution rather than a constant).
    pub batch_records_p50: u64,
    /// Total lookups completed across all readers during the ingest.
    pub queries: u64,
    /// Lookups per second across all readers.
    pub reads_per_sec: f64,
    /// Median lookup latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile lookup latency, microseconds.
    pub p99_us: u64,
    /// Generation number after the final flush.
    pub generation: u64,
    /// Pairwise candidate comparisons the server performed for the
    /// whole run (from its stats counters after the final flush).
    pub comparisons: u64,
    /// Candidates the engine skipped via the root filter (already
    /// merged with the arriving record), from
    /// `serve.engine.candidates.pruned.root` after the final flush.
    pub pruned_root: u64,
    /// Candidates the engine skipped via the admissible score-bound
    /// filter, from `serve.engine.candidates.pruned.bound`.
    pub pruned_bound: u64,
    /// Posting-list entries the hot-key cap skipped during candidate
    /// generation, from `serve.linkage.postings.skipped`.
    pub postings_skipped: u64,
    /// Server-side median ingest handling latency, **nanoseconds** —
    /// from the server's request-latency histogram for the ingest
    /// command used (`ingest`, or `ingest_batch` when batching); the
    /// gap to [`LoadReport::ingest_p50_us`] is wire + client overhead.
    /// Nanoseconds because the in-memory ingest handler only enqueues:
    /// its median is routinely sub-microsecond, which a µs report
    /// floors to a meaningless 0.
    pub server_ingest_p50_ns: u64,
    /// Server-side 99th-percentile ingest handling latency,
    /// nanoseconds.
    pub server_ingest_p99_ns: u64,
    /// Server-side median `lookup` handling latency, nanoseconds —
    /// from `serve.request.lookup.latency_ns`.
    pub server_lookup_p50_ns: u64,
    /// Server-side 99th-percentile `lookup` handling latency,
    /// nanoseconds.
    pub server_lookup_p99_ns: u64,
    /// Reads the router re-sent to another replica after an I/O error
    /// (`route.read.failovers`; 0 against a single backend).
    pub read_failovers: u64,
    /// Backend connect attempts the router retried after transient
    /// failures (`route.backend.retries`).
    pub backend_retries: u64,
    /// Record copies the router dropped because a lane was down
    /// (`route.ingest.replicas_dropped`).
    pub replicas_dropped: u64,
    /// Per-lane error counters (`route.shard{s}.replica{r}.errors`),
    /// name-sorted — non-empty only when lanes actually failed.
    pub replica_errors: Vec<(String, u64)>,
    /// Whether the ingest stream actually went over binary frames
    /// (requested via [`LoadConfig::binary`] *and* granted by the
    /// server's `hello`).
    pub wire_binary: bool,
    /// Ingest requests sent under a minted trace id
    /// ([`LoadConfig::trace_sample`] > 0).
    pub traced_requests: u64,
    /// The last minted trace id — fetch its tree with
    /// `bdi admin --trace <id>` or `GET /trace/:id` while it's hot.
    pub last_trace_id: Option<u64>,
}

/// Generate a world and replay it against a running server at `addr`.
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> std::io::Result<LoadReport> {
    let world = World::generate(WorldConfig {
        n_entities: cfg.entities,
        n_sources: cfg.sources,
        max_source_size: cfg.max_source_size,
        ..WorldConfig::tiny(cfg.seed)
    });
    let mut pool: Vec<String> = world
        .dataset
        .records()
        .iter()
        .filter_map(|r| r.primary_identifier().map(str::to_string))
        .collect();
    pool.sort_unstable();
    pool.dedup();
    if pool.is_empty() {
        pool.push("NO-IDENTIFIERS-ANYWHERE".to_string());
    }
    let records = world.dataset.into_records();
    let total = records.len();
    let pool = Arc::new(pool);
    let stop = Arc::new(AtomicBool::new(false));

    let http = cfg.http;

    let readers: Vec<_> = (0..cfg.readers)
        .map(|reader_idx| {
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> std::io::Result<Vec<u64>> {
                // readers stay on JSON: lookup has no binary encoding
                let mut client = Driver::connect(addr, http, false, false)?;
                let mut latencies = Vec::new();
                // stride the pool differently per reader so shards all
                // see traffic without needing a shared RNG
                let mut cursor = reader_idx * 31;
                while !stop.load(Ordering::SeqCst) {
                    let id = &pool[cursor % pool.len()];
                    cursor = cursor
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let t = Instant::now();
                    client.lookup(id)?;
                    latencies.push(t.elapsed().as_micros() as u64);
                }
                Ok(latencies)
            })
        })
        .collect();

    let mut writer = Driver::connect(addr, cfg.http, cfg.binary, cfg.trace_sample > 0)?;
    let wire_binary = writer.is_binary();
    let mut ingest_latencies: Vec<u64> = Vec::with_capacity(total);
    // driver-side batch-size distribution (the last chunk is partial)
    let batch_hist = Registry::new().histogram("load.ingest.batch_records");
    let batch = cfg.batch.max(1);
    // client-side trace-id mint for the 1-in-N sampled requests
    let mint = bdi_obs::Tracer::new();
    let mut reqno = 0u64;
    let mut traced_requests = 0u64;
    let mut last_trace_id = None;
    let next_trace = |reqno: &mut u64| -> Option<u64> {
        *reqno += 1;
        (cfg.trace_sample > 0 && (*reqno).is_multiple_of(cfg.trace_sample)).then(|| mint.fresh_id())
    };
    let t0 = Instant::now();
    if batch == 1 {
        for r in records {
            batch_hist.record(1);
            let trace = next_trace(&mut reqno);
            if let Some(t) = trace {
                traced_requests += 1;
                last_trace_id = Some(t);
            }
            let t = Instant::now();
            writer.ingest(r, trace)?;
            ingest_latencies.push(t.elapsed().as_micros() as u64);
        }
    } else {
        let mut stream = records.into_iter().peekable();
        while stream.peek().is_some() {
            let chunk: Vec<_> = stream.by_ref().take(batch).collect();
            batch_hist.record(chunk.len() as u64);
            let trace = next_trace(&mut reqno);
            if let Some(t) = trace {
                traced_requests += 1;
                last_trace_id = Some(t);
            }
            let t = Instant::now();
            writer.ingest_batch(chunk, trace)?;
            ingest_latencies.push(t.elapsed().as_micros() as u64);
        }
    }
    let (generation, _) = writer.flush()?;
    let ingest_secs = t0.elapsed().as_secs_f64();
    // The accounting scrape always speaks JSON lines: the `metrics`
    // command returns the full histogram snapshot, which the HTTP
    // Prometheus exposition doesn't. The front-end autodetects the
    // protocol per connection, so this works on the same port even when
    // the load traffic itself was HTTP.
    let mut scrape = Client::connect(addr)?;
    let comparisons = scrape.stats()?.comparisons;
    let metrics = scrape.metrics()?;
    stop.store(true, Ordering::SeqCst);

    let mut latencies: Vec<u64> = Vec::new();
    for handle in readers {
        match handle.join() {
            Ok(Ok(mut l)) => latencies.append(&mut l),
            Ok(Err(e)) => return Err(e),
            Err(_) => {
                return Err(std::io::Error::other("reader thread panicked"));
            }
        }
    }
    latencies.sort_unstable();
    ingest_latencies.sort_unstable();
    let queries = latencies.len() as u64;
    let pct = |sorted: &[u64], p: f64| -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    };

    // server-side handling percentiles (exclude wire + client time),
    // from the request-latency histograms captured after the flush —
    // kept in nanoseconds: the enqueue-only ingest handler is routinely
    // sub-µs and would floor to 0 in microseconds
    let server_ns = |histogram: &str, q: f64| metrics.quantile_ns(histogram, q).unwrap_or(0);
    let ingest_hist = if batch == 1 {
        "serve.request.ingest.latency_ns"
    } else {
        "serve.request.ingest_batch.latency_ns"
    };

    // router-tier failure accounting (all-zero against a single backend:
    // the route.* families simply aren't in the merged registry)
    let counter = |name: &str| metrics.counters.get(name).copied().unwrap_or(0);
    let replica_errors: Vec<(String, u64)> = metrics
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("route.shard") && name.ends_with(".errors"))
        .map(|(name, v)| (name.clone(), *v))
        .collect();

    Ok(LoadReport {
        records: total,
        ingest_secs,
        ingest_per_sec: total as f64 / ingest_secs.max(1e-9),
        ingest_p50_us: pct(&ingest_latencies, 0.50),
        ingest_p99_us: pct(&ingest_latencies, 0.99),
        batch_records_p50: batch_hist.snapshot().quantile(0.50),
        queries,
        reads_per_sec: queries as f64 / ingest_secs.max(1e-9),
        p50_us: pct(&latencies, 0.50),
        p99_us: pct(&latencies, 0.99),
        generation,
        comparisons,
        pruned_root: counter("serve.engine.candidates.pruned.root"),
        pruned_bound: counter("serve.engine.candidates.pruned.bound"),
        postings_skipped: counter("serve.linkage.postings.skipped"),
        server_ingest_p50_ns: server_ns(ingest_hist, 0.50),
        server_ingest_p99_ns: server_ns(ingest_hist, 0.99),
        server_lookup_p50_ns: server_ns("serve.request.lookup.latency_ns", 0.50),
        server_lookup_p99_ns: server_ns("serve.request.lookup.latency_ns", 0.99),
        read_failovers: counter("route.read.failovers"),
        backend_retries: counter("route.backend.retries"),
        replicas_dropped: counter("route.ingest.replicas_dropped"),
        replica_errors,
        wire_binary,
        traced_requests,
        last_trace_id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};

    #[test]
    fn load_run_reports_progress() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let cfg = LoadConfig {
            entities: 40,
            sources: 6,
            readers: 2,
            ..Default::default()
        };
        let report = run_load(server.addr(), &cfg).unwrap();
        assert!(report.records > 0);
        assert!(report.ingest_per_sec > 0.0);
        assert!(report.queries > 0, "readers ran during ingest");
        assert!(report.p99_us >= report.p50_us);
        assert!(report.ingest_p99_us >= report.ingest_p50_us);
        assert!(report.ingest_p50_us > 0, "ingest round trips were timed");
        // the whole point of reporting nanoseconds: the enqueue-only
        // ingest handler's median is sub-µs but must not read as zero
        assert!(
            report.server_ingest_p50_ns > 0,
            "ns precision keeps sub-µs handling visible"
        );
        assert!(report.server_ingest_p99_ns >= report.server_ingest_p50_ns);
        assert!(report.server_lookup_p99_ns >= report.server_lookup_p50_ns);
        assert_eq!(report.batch_records_p50, 1, "unbatched run");
        assert!(report.generation >= 1);
        // single backend: no router tier, so no failover accounting
        assert_eq!(report.read_failovers, 0);
        assert_eq!(report.backend_retries, 0);
        assert!(report.replica_errors.is_empty());
        server.shutdown();
    }

    #[test]
    fn http_load_drives_the_same_handlers() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let cfg = LoadConfig {
            entities: 40,
            sources: 6,
            readers: 2,
            batch: 8,
            http: true,
            ..Default::default()
        };
        // same port as JSON lines: the front-end sniffs the protocol
        let report = run_load(server.addr(), &cfg).unwrap();
        assert!(report.records > 0);
        assert!(report.queries > 0, "HTTP readers ran during ingest");
        assert!(report.generation >= 1, "HTTP flush advanced a generation");
        assert!(report.comparisons > 0, "scrape still works over JSON lines");
        server.shutdown();
    }

    #[test]
    fn batched_load_amortizes_round_trips() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let cfg = LoadConfig {
            entities: 40,
            sources: 6,
            readers: 0,
            batch: 16,
            ..Default::default()
        };
        let report = run_load(server.addr(), &cfg).unwrap();
        assert!(report.records > 16, "several batches went out");
        assert!(
            report.batch_records_p50 >= 8,
            "median request carries a full-ish batch, got {}",
            report.batch_records_p50
        );
        assert!(
            report.server_ingest_p50_ns > 0,
            "ingest_batch handling histogram populated"
        );
        assert!(report.generation >= 1);
        server.shutdown();
    }

    #[test]
    fn binary_load_negotiates_and_completes() {
        let server = Server::start(ServerConfig::default()).unwrap();
        let cfg = LoadConfig {
            entities: 40,
            sources: 6,
            readers: 1,
            batch: 16,
            binary: true,
            ..Default::default()
        };
        let report = run_load(server.addr(), &cfg).unwrap();
        assert!(report.wire_binary, "default server grants binary-frames");
        assert!(report.records > 16);
        assert!(report.generation >= 1, "binary flush advanced a generation");
        assert!(
            report.server_ingest_p50_ns > 0,
            "binary ingest lands in the same handling histogram"
        );
        server.shutdown();
    }

    /// Format equivalence, pinned: the identical world driven over
    /// binary frames and over JSON lines must leave two servers in the
    /// same engine state — same counts, same clustering surface. The
    /// wire encoding is transport, never semantics.
    #[test]
    fn binary_and_json_wires_build_identical_state() {
        let run = |binary: bool| {
            let server = Server::start(ServerConfig::default()).unwrap();
            let cfg = LoadConfig {
                entities: 60,
                sources: 8,
                readers: 0,
                batch: 16,
                binary,
                ..Default::default()
            };
            let report = run_load(server.addr(), &cfg).unwrap();
            assert_eq!(report.wire_binary, binary);
            let mut client = crate::client::Client::connect(server.addr()).unwrap();
            let stats = client.stats().unwrap();
            let top = client.top_k("weight", 50).unwrap();
            let titles: Vec<String> = top.into_iter().map(|e| e.title).collect();
            server.shutdown();
            (stats.records, stats.products, stats.applied, titles)
        };
        assert_eq!(
            run(true),
            run(false),
            "binary wire changed the resulting engine state"
        );
    }

    #[test]
    fn binary_request_falls_back_on_json_only_server() {
        let server = Server::start(ServerConfig {
            binary_wire: false,
            ..Default::default()
        })
        .unwrap();
        let cfg = LoadConfig {
            entities: 20,
            sources: 4,
            readers: 0,
            batch: 8,
            binary: true,
            ..Default::default()
        };
        let report = run_load(server.addr(), &cfg).unwrap();
        assert!(
            !report.wire_binary,
            "--no-binary server keeps the run on JSON"
        );
        assert!(report.generation >= 1);
        server.shutdown();
    }
}
