//! Fleet topology: the routing table that survives live shard splits.
//!
//! The static router maps a routing key to `shard_of(key, n)` — a flat
//! `hash % n`. That formula cannot absorb a new backend without
//! re-homing almost every key (`hash % (n+1)` disagrees with `hash % n`
//! on ~n/(n+1) of the space), which would invalidate every record
//! already placed. A live split must move *only* the split shard's keys.
//!
//! [`RoutingTable`] gets that with per-slot chains (linear hashing):
//! the key's FNV-1a hash picks a *slot* (`h % base`, where `base` is the
//! boot-time shard count), and the slot's chain — initially just
//! `[slot]` — picks the shard via the hash's high bits
//! (`(h / base) % chain.len()`). With no splits every chain has length
//! one and the table is bit-identical to `shard_of(key, base)`, so a
//! fleet that never splits routes exactly like the static router did.
//!
//! Splitting shard `t` doubles every chain containing `t` and rewrites
//! the upper half's `t` entries to the new shard id: keys whose chain
//! position gains its new top bit move, every other key — on `t` or any
//! other shard — stays put. Each split therefore halves (per slot) the
//! split shard's keyspace and touches nothing else, which is what lets
//! the router replay a bounded record set onto the new backend and flip
//! the table under one barrier (see `router.rs`).

//! The second half of this module is the *orchestration* that uses the
//! table: [`split_shard`] and [`replace_replica`], the router's two
//! admin commands. Both follow the same shape — freeze routing (the
//! bridge lock), settle every in-flight record (the lane barrier),
//! ship state from a live peer (`sync` → `restore`, the WAL-shipping
//! wire pair), and only then flip the topology. A failure before the
//! flip aborts cleanly: the table, masks, and lanes are untouched.

use crate::bridge::{BridgeIndex, MAX_SHARDS};
use crate::gen::fnv64;
use crate::protocol::{Request, Response};
use crate::replica::{spawn_lane, LaneConn, ShardState};
use crate::router::{settle_barrier, RouterShared};
use crate::snapshot::Snapshot;
use bdi_types::Record;
use parking_lot::RwLock;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::time::Instant;

/// Where routing keys home, supporting in-place shard splits.
///
/// Equivalence contract: `RoutingTable::new(n).home(k) ==
/// shard_of(k, n)` for every key — pinned by tests — so introducing the
/// table changed nothing for fleets that never split.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutingTable {
    /// Boot-time shard count; the slot modulus forever.
    base: usize,
    /// Per-slot shard chains. `chains[s].len()` is always a power of
    /// two (doubling is the only growth), so the high-bits index is
    /// uniform per slot.
    chains: Vec<Vec<usize>>,
    /// Total shards ever created — the next split's new shard id.
    shards: usize,
}

impl RoutingTable {
    /// The identity table over `n` shards (no splits yet).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one shard");
        Self {
            base: n,
            chains: (0..n).map(|s| vec![s]).collect(),
            shards: n,
        }
    }

    /// Total shards the table routes over (grows by one per split).
    pub fn len(&self) -> usize {
        self.shards
    }

    /// True only for the degenerate zero-shard table (unreachable via
    /// the constructor; required by idiom).
    pub fn is_empty(&self) -> bool {
        self.shards == 0
    }

    /// True once any shard has been split.
    pub fn has_splits(&self) -> bool {
        self.shards > self.base
    }

    /// The shard `key` homes on.
    pub fn home(&self, key: &str) -> usize {
        let h = fnv64(key);
        let chain = &self.chains[(h % self.base as u64) as usize];
        chain[((h / self.base as u64) % chain.len() as u64) as usize]
    }

    /// Split `shard`, returning the new shard's id (= the old total).
    /// Every chain containing `shard` doubles; the doubled half's
    /// `shard` entries become the new shard, so exactly half of the
    /// split shard's per-slot keyspace moves and no other key re-homes.
    pub fn split(&mut self, shard: usize) -> usize {
        assert!(shard < self.shards, "split of unknown shard {shard}");
        let new = self.shards;
        for chain in &mut self.chains {
            if !chain.contains(&shard) {
                continue;
            }
            let half = chain.len();
            for j in 0..half {
                let s = chain[j];
                chain.push(if s == shard { new } else { s });
            }
        }
        self.shards += 1;
        new
    }
}

fn error(message: String) -> Response {
    Response::Error { message }
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("'{addr}': {e}"))?
        .next()
        .ok_or_else(|| format!("'{addr}' resolves to no address"))
}

/// State shipped out of a shard: the applied position it reaches, an
/// optional full snapshot, and the record tail past it.
struct ShippedState {
    position: u64,
    snapshot: Option<Snapshot>,
    tail: Vec<Record>,
}

/// Ship state out of `shard`: pick the first live replica (skipping
/// `exclude`, the slot being replaced), flush it so its queue is folded
/// into the engine, then `sync` from position 0 — the full state. The
/// transfer is timed onto `route.sync.latency_ns`.
fn sync_from_shard(
    shared: &RouterShared,
    shard: usize,
    exclude: Option<usize>,
) -> Result<ShippedState, String> {
    let sources: Vec<(usize, SocketAddr, bool)> = {
        let shards = shared.shards.read();
        let replicas = shards[shard].replicas.read();
        replicas
            .iter()
            .map(|l| (l.replica, l.addr, l.is_down()))
            .collect()
    };
    let mut last = format!("shard {shard}: no live replica to sync from");
    for (replica, addr, down) in sources {
        if down || Some(replica) == exclude {
            continue;
        }
        let t0 = Instant::now();
        let attempt = (|| -> std::io::Result<ShippedState> {
            let mut conn = LaneConn::connect_checked(addr, &["flush_barrier", "sync"])?;
            conn.send(&Request::Flush)?;
            match conn.recv()? {
                Response::Flushed { .. } => {}
                other => {
                    return Err(std::io::Error::other(format!(
                        "unexpected response to flush: {other:?}"
                    )))
                }
            }
            conn.send(&Request::Sync { from: 0 })?;
            match conn.recv()? {
                Response::SyncState {
                    position,
                    snapshot,
                    tail,
                } => Ok(ShippedState {
                    position,
                    snapshot,
                    tail,
                }),
                Response::Error { message } => Err(std::io::Error::other(message)),
                other => Err(std::io::Error::other(format!(
                    "unexpected response to sync: {other:?}"
                ))),
            }
        })();
        match attempt {
            Ok(state) => {
                shared.metrics.sync_ns.record_duration(t0.elapsed());
                return Ok(state);
            }
            Err(e) => last = format!("shard {shard} replica {replica} ({addr}): {e}"),
        }
    }
    Err(last)
}

/// Install shipped state onto a fresh backend at `addr`.
fn restore_onto(
    addr: SocketAddr,
    snapshot: Option<Snapshot>,
    tail: Vec<Record>,
    position: u64,
) -> std::io::Result<u64> {
    let mut conn = LaneConn::connect_checked(addr, &["restore"])?;
    conn.send(&Request::Restore {
        snapshot,
        tail,
        position,
    })?;
    match conn.recv()? {
        Response::Restored { records, .. } => Ok(records),
        Response::Error { message } => Err(std::io::Error::other(message)),
        other => Err(std::io::Error::other(format!(
            "unexpected response to restore: {other:?}"
        ))),
    }
}

/// Split `shard`'s hash range onto a new shard served by `addrs` (one
/// address per replica, matching the shard's replica count).
///
/// Under the bridge lock — the routing barrier — the split: settles
/// every routed record, ships the source shard's state, previews the
/// table flip to find exactly the records whose home moves, replays
/// that slice onto each new backend via `restore`, and only then flips
/// the table, widens the bridge masks, and appends the new shard's
/// lanes. Ingest acked before the split lands on the old shard and is
/// captured by the shipped state; ingest after it routes through the
/// flipped table — no record is dropped or double-applied. Records
/// whose home moved remain on the source backend as stale copies;
/// reads deduplicate them through shared pages (see
/// [`BridgeIndex::split`]).
pub(crate) fn split_shard(shared: &Arc<RouterShared>, shard: usize, addrs: &[String]) -> Response {
    let t0 = Instant::now();
    let new_addrs = match addrs
        .iter()
        .map(|a| resolve(a))
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(a) => a,
        Err(e) => return error(e),
    };
    // the bridge lock is the routing barrier: held for the whole split,
    // so no record can route against a half-flipped table
    let mut bridge = shared.bridge.lock();
    let replica_count = {
        let shards = shared.shards.read();
        match shards.get(shard) {
            Some(s) => s.replicas.read().len(),
            None => return error(format!("unknown shard {shard}")),
        }
    };
    if new_addrs.len() != replica_count {
        return error(format!(
            "shard {shard} runs {replica_count} replica(s); got {} new backend(s)",
            new_addrs.len()
        ));
    }
    if bridge.shard_count() >= MAX_SHARDS {
        return error(format!("fleet is at the {MAX_SHARDS}-shard cap"));
    }
    if let Err(e) = settle_barrier(shared) {
        return error(e);
    }
    let shipped = match sync_from_shard(shared, shard, None) {
        Ok(s) => s,
        Err(e) => return error(e),
    };
    // preview the flip on a clone: which of the source's records would
    // home on the new shard. Only home copies move — a record homed
    // elsewhere (a bridge replica stored here) keeps its home, and its
    // evidence keeps living on the source via the widened masks.
    let mut preview = bridge.table().clone();
    let new_shard = preview.split(shard);
    let homes_on_new = |r: &Record| preview.home(&BridgeIndex::routing_key(r)) == new_shard;
    let mut moved: Vec<Record> = Vec::new();
    if let Some(snap) = shipped.snapshot {
        moved.extend(snap.engine.records.into_iter().filter(|r| homes_on_new(r)));
    }
    moved.extend(shipped.tail.into_iter().filter(|r| homes_on_new(r)));
    let moved_n = moved.len() as u64;
    // bootstrap every new replica before anything flips — a failure
    // here aborts the split with the fleet untouched
    for (replica, &addr) in new_addrs.iter().enumerate() {
        let mut tail = moved.clone();
        if replica + 1 == new_addrs.len() {
            tail = std::mem::take(&mut moved);
        }
        if let Err(e) = restore_onto(addr, None, tail, moved_n) {
            return error(format!(
                "bootstrap of new shard replica {replica} ({addr}) failed: {e}"
            ));
        }
    }
    // the flip: table + masks, then the lanes — still under the barrier
    let flipped = bridge.split(shard);
    debug_assert_eq!(flipped, new_shard, "preview and flip agree");
    let lanes = new_addrs
        .iter()
        .enumerate()
        .map(|(replica, &addr)| spawn_lane(new_shard, replica, addr, shared))
        .collect();
    shared.shards.write().push(Arc::new(ShardState {
        replicas: RwLock::new(lanes),
    }));
    shared.metrics.split_moved.add(moved_n);
    shared.metrics.split_ns.record_duration(t0.elapsed());
    Response::SplitDone {
        shard,
        new_shard,
        moved: moved_n,
    }
}

/// Replace replica `replica` of `shard` with a fresh backend at `addr`,
/// bootstrapped from a live peer replica: settle, flush the peer, ship
/// its full state (`sync` from 0), `restore` onto the new backend, then
/// swap the lane. The retired lane's worker observes the swap (its
/// [`std::sync::Weak`] dies) and exits. Requires a live peer — with
/// every replica down there is nothing to ship from, and the shard's
/// data is only recoverable from a backend's own WAL.
pub(crate) fn replace_replica(
    shared: &Arc<RouterShared>,
    shard: usize,
    replica: usize,
    addr: &str,
) -> Response {
    let new_addr = match resolve(addr) {
        Ok(a) => a,
        Err(e) => return error(e),
    };
    // freeze routing for the settle → ship → swap window
    let _bridge = shared.bridge.lock();
    {
        let shards = shared.shards.read();
        let Some(state) = shards.get(shard) else {
            return error(format!("unknown shard {shard}"));
        };
        if replica >= state.replicas.read().len() {
            return error(format!("shard {shard} has no replica {replica}"));
        }
    }
    if let Err(e) = settle_barrier(shared) {
        return error(e);
    }
    let shipped = match sync_from_shard(shared, shard, Some(replica)) {
        Ok(s) => s,
        Err(e) => return error(e),
    };
    let synced = match restore_onto(new_addr, shipped.snapshot, shipped.tail, shipped.position) {
        Ok(records) => records,
        Err(e) => return error(format!("restore onto {new_addr} failed: {e}")),
    };
    let lane = spawn_lane(shard, replica, new_addr, shared);
    {
        let shards = shared.shards.read();
        let mut replicas = shards[shard].replicas.write();
        // the old lane's last Arc drops here; its worker retires
        replicas[replica] = lane;
    }
    shared.refresh_down_gauge();
    Response::Replaced {
        shard,
        replica,
        synced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::shard_of;

    fn keys() -> Vec<String> {
        (0..500u32)
            .map(|i| format!("CAM-LUM-{i:05}"))
            .chain((0..100u32).map(|i| format!("gadget model {i}")))
            .collect()
    }

    #[test]
    fn unsplit_table_matches_shard_of_exactly() {
        for n in [1usize, 2, 3, 5, 8] {
            let table = RoutingTable::new(n);
            assert_eq!(table.len(), n);
            assert!(!table.has_splits());
            for k in keys() {
                assert_eq!(
                    table.home(&k),
                    shard_of(&k, n),
                    "pre-split routing is bit-identical to the static router"
                );
            }
        }
    }

    #[test]
    fn split_moves_only_keys_of_the_split_shard() {
        let mut table = RoutingTable::new(2);
        let before: Vec<usize> = keys().iter().map(|k| table.home(k)).collect();
        let new = table.split(0);
        assert_eq!(new, 2);
        assert_eq!(table.len(), 3);
        assert!(table.has_splits());
        let mut moved = 0usize;
        for (k, &old) in keys().iter().zip(&before) {
            let now = table.home(k);
            if old == 1 {
                assert_eq!(now, 1, "'{k}': unsplit shard keeps every key");
            } else {
                assert!(
                    now == 0 || now == 2,
                    "'{k}': split-shard keys stay or move to the new shard"
                );
                if now == 2 {
                    moved += 1;
                }
            }
        }
        let on_zero = before.iter().filter(|&&s| s == 0).count();
        assert!(
            moved > on_zero / 4 && moved < 3 * on_zero / 4,
            "roughly half of shard 0's keys moved ({moved}/{on_zero})"
        );
    }

    #[test]
    fn repeated_splits_keep_partitioning_total() {
        let mut table = RoutingTable::new(2);
        table.split(0);
        table.split(2); // split the split-off shard again
        table.split(1);
        assert_eq!(table.len(), 5);
        for k in keys() {
            assert!(table.home(&k) < table.len(), "every key has a home");
        }
        // determinism: an identically-split clone agrees everywhere
        let mut other = RoutingTable::new(2);
        other.split(0);
        other.split(2);
        other.split(1);
        assert_eq!(table, other);
    }
}
