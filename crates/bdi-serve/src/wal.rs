//! The write-ahead log: mmap-backed binary segments with ring-style
//! compaction.
//!
//! Every record accepted by the ingest worker is appended here *before*
//! it is linked, so a crash can lose at most the records that were not
//! yet synced (bounded by the sync batch, see [`Wal::append`]). Records
//! are stored in the crate's binary frame body encoding ([`crate::frame`])
//! inside preallocated, memory-mapped segment files:
//!
//! ```text
//! wal-00000000000000000000.seg     <- base 0
//! wal-00000000000000004096.seg     <- base 4096 (after a roll)
//!
//! segment layout:
//!   [magic "BDIWALS1" 8B][base u64 LE]          <- 16-byte header
//!   [len u32 LE][crc32 u32 LE][record body]...  <- frames, densely packed
//!   [zeroes to capacity]                        <- preallocated tail
//! ```
//!
//! An append is a bounds-checked `memcpy` into the mapping; a sync is
//! one `msync(MS_SYNC)` over the dirty byte range — no write syscall,
//! no serialization tree, no buffered-writer flush. The zeroed
//! preallocated tail is load-bearing: a scan knows it has reached the
//! append point when it sees a zero length field, and every frame's
//! CRC-32 catches a torn (partially persisted) tail, which is then
//! zeroed away so the log ends on a record boundary — the binary
//! analogue of the old torn-line truncation.
//!
//! *Positions* are absolute ingest sequence numbers (0-based count of
//! records ever applied), not file offsets. When a snapshot covering
//! everything through position `P` is persisted, [`Wal::compact_through`]
//! *retires whole segments* — every segment whose entries all lie below
//! `P` is unlinked; nothing is rewritten. A segment that straddles `P`
//! stays until a later snapshot covers it entirely, so a reopened log's
//! physical tail may begin before its last compaction point; recovery
//! filters replay by position, which makes the straddle harmless.
//!
//! Logs written by older builds (JSON lines in `wal.log`) are migrated
//! to segments on open, preserving base, entries, and torn-tail
//! handling, so a fleet can be upgraded in place.

use crate::frame;
use crate::mmap::MmapFile;
use bdi_obs::{Histogram, Registry};
use bdi_types::Record;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// File name of the legacy JSON-lines log inside a data directory —
/// read (and migrated) but never written by this build.
pub const WAL_FILE: &str = "wal.log";

/// Segment file prefix; the suffix is the zero-padded base position.
pub const SEGMENT_PREFIX: &str = "wal-";
/// Segment file extension.
pub const SEGMENT_SUFFIX: &str = ".seg";

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"BDIWALS1";
const SEGMENT_HEADER: usize = 16;
/// Per-frame prefix: `u32` body length + `u32` CRC-32 of the body.
const FRAME_PREFIX: usize = 8;

/// Default segment capacity. Big enough that rolls are rare within a
/// snapshot interval, small enough that a mostly-compacted log does not
/// pin much address space.
pub const DEFAULT_SEGMENT_CAPACITY: usize = 4 << 20;

fn segment_path(dir: &Path, base: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{base:020}{SEGMENT_SUFFIX}"))
}

fn segment_base_from_name(name: &str) -> Option<u64> {
    name.strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?
        .parse()
        .ok()
}

/// An open write-ahead log (the ingest worker's append handle).
pub struct Wal {
    dir: PathBuf,
    /// The tail segment, mapped for appending.
    seg: MmapFile,
    /// Absolute position of the tail segment's first entry.
    seg_base: u64,
    /// Byte offset of the next append within the tail segment.
    write_off: usize,
    /// Byte offset through which the tail segment is known synced.
    synced_off: usize,
    /// Older segments still on disk, oldest first.
    sealed: Vec<SealedSegment>,
    /// Logical base: the compaction point (positions below it are
    /// covered by a snapshot even when a straddling segment still
    /// physically holds them).
    base: u64,
    /// Absolute position one past the last appended entry.
    next: u64,
    /// Absolute position through which appends are known durable.
    synced: u64,
    /// Capacity for newly created segments.
    capacity: usize,
    /// Reused frame-encode buffer.
    scratch: Vec<u8>,
    /// Durability-timing histograms, when the owner attached any.
    metrics: Option<WalMetrics>,
}

struct SealedSegment {
    path: PathBuf,
    base: u64,
    count: u64,
}

/// Durability-timing histograms a [`Wal`] records into when attached
/// via [`Wal::set_metrics`].
#[derive(Clone)]
pub struct WalMetrics {
    /// One [`Wal::append`] (binary encode + mapped memcpy), ns.
    pub append_ns: Arc<Histogram>,
    /// One group-commit [`Wal::sync`] (`msync` of the dirty range), ns.
    /// Only syncs that actually hit the disk are recorded — the early
    /// return when nothing is pending is not a barrier.
    pub fsync_ns: Arc<Histogram>,
    /// Records made durable per sync — the group-commit batch size the
    /// `sync_every` policy is achieving in practice.
    pub fsync_batch: Arc<Histogram>,
}

impl WalMetrics {
    /// Resolve the WAL's histograms in `registry` under the
    /// `serve.wal.*` names.
    pub fn register(registry: &Registry) -> Self {
        Self {
            append_ns: registry.histogram("serve.wal.append.latency_ns"),
            fsync_ns: registry.histogram("serve.wal.fsync.latency_ns"),
            fsync_batch: registry.histogram("serve.wal.fsync.batch_records"),
        }
    }
}

/// What [`Wal::open`] found on disk.
pub struct WalOpen {
    /// The log, positioned for appending.
    pub wal: Wal,
    /// Entries already in the log (absolute position + record), in
    /// append order — the tail to replay after a snapshot load.
    pub entries: Vec<(u64, Record)>,
    /// True when a torn (partially persisted) tail was discarded.
    pub torn_tail: bool,
}

/// One scanned segment: its header base, decoded entries, the offset
/// one past the last intact frame, and whether garbage followed it.
struct SegmentScan {
    base: u64,
    records: Vec<Record>,
    valid_end: usize,
    torn: bool,
}

/// Scan a segment image: validate the header, then walk frames until
/// the zeroed tail, a CRC mismatch, or the end of the file. Corruption
/// never errors — it marks the scan torn and stops, mirroring the
/// torn-line semantics of the legacy text log.
fn scan_segment(bytes: &[u8]) -> std::io::Result<SegmentScan> {
    if bytes.len() < SEGMENT_HEADER || &bytes[..8] != SEGMENT_MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "missing segment magic",
        ));
    }
    let base = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let mut records = Vec::new();
    let mut off = SEGMENT_HEADER;
    let mut torn = false;
    loop {
        if off + FRAME_PREFIX > bytes.len() {
            // too close to capacity for even a length field: the roll
            // logic never writes here, so any nonzero byte is torn junk
            torn = bytes[off..].iter().any(|&b| b != 0);
            break;
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        if len == 0 && crc == 0 {
            break; // the zeroed preallocated tail: clean end
        }
        let body_end = off + FRAME_PREFIX + len;
        if len == 0 || body_end > bytes.len() {
            torn = true;
            break;
        }
        let body = &bytes[off + FRAME_PREFIX..body_end];
        if frame::crc32(body) != crc {
            torn = true;
            break;
        }
        match frame::decode_record_body(body) {
            Ok(record) => records.push(record),
            Err(_) => {
                // a frame that passes CRC but does not decode is not a
                // torn write — it is a format bug — but replay-side the
                // safe response is the same: stop before it
                torn = true;
                break;
            }
        }
        off = body_end;
    }
    Ok(SegmentScan {
        base,
        records,
        valid_end: off,
        torn,
    })
}

/// Sorted `(base, path)` list of the segment files in `dir`.
fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(base) = entry.file_name().to_str().and_then(segment_base_from_name) {
            out.push((base, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

impl Wal {
    /// Open (or create) the log in `dir` with the default segment
    /// capacity, reading back any existing entries for replay. Existing
    /// content is preserved; appends continue after the last intact
    /// entry. A torn tail is zeroed away so the log ends on a record
    /// boundary. A legacy JSON-lines `wal.log` is migrated to segments.
    pub fn open(dir: &Path) -> std::io::Result<WalOpen> {
        Self::open_with_capacity(dir, DEFAULT_SEGMENT_CAPACITY)
    }

    /// [`Wal::open`] with an explicit capacity for newly created
    /// segments — small capacities let tests exercise rolling and
    /// ring retirement cheaply.
    pub fn open_with_capacity(dir: &Path, capacity: usize) -> std::io::Result<WalOpen> {
        std::fs::create_dir_all(dir)?;
        let legacy = dir.join(WAL_FILE);
        if legacy.exists() {
            return Self::migrate_legacy(dir, capacity, &legacy);
        }
        let segments = list_segments(dir)?;
        if segments.is_empty() {
            let wal = Self::create_fresh(dir, capacity, 0)?;
            return Ok(WalOpen {
                wal,
                entries: Vec::new(),
                torn_tail: false,
            });
        }

        // Walk the segment chain oldest-first, stopping at the first
        // torn, corrupt, or discontinuous segment. A crash can only
        // damage the newest data, so everything before the stop point
        // is trustworthy and everything after it is discarded.
        let mut scans: Vec<(PathBuf, SegmentScan)> = Vec::new();
        let mut torn_tail = false;
        let mut expected_base = segments[0].0;
        for (name_base, path) in &segments {
            let bytes = std::fs::read(path)?;
            match scan_segment(&bytes) {
                Ok(scan) if scan.base == *name_base && scan.base == expected_base => {
                    expected_base = scan.base + scan.records.len() as u64;
                    let torn = scan.torn;
                    scans.push((path.clone(), scan));
                    if torn {
                        torn_tail = true;
                        break;
                    }
                }
                _ => {
                    torn_tail = true;
                    break;
                }
            }
        }
        if scans.len() < segments.len() {
            for (_, path) in &segments[scans.len()..] {
                std::fs::remove_file(path)?;
            }
            sync_dir(dir)?;
        }
        let Some((tail_path, tail_scan)) = scans.pop() else {
            // not even the first segment was usable: restart at base 0
            let wal = Self::create_fresh(dir, capacity, 0)?;
            return Ok(WalOpen {
                wal,
                entries: Vec::new(),
                torn_tail,
            });
        };

        let mut entries: Vec<(u64, Record)> = Vec::new();
        let mut sealed: Vec<SealedSegment> = Vec::new();
        for (path, scan) in scans {
            sealed.push(SealedSegment {
                path,
                base: scan.base,
                count: scan.records.len() as u64,
            });
            for (i, record) in scan.records.into_iter().enumerate() {
                entries.push((scan.base + i as u64, record));
            }
        }
        let next = tail_scan.base + tail_scan.records.len() as u64;
        for (i, record) in tail_scan.records.into_iter().enumerate() {
            entries.push((tail_scan.base + i as u64, record));
        }

        let mut seg = MmapFile::open(&tail_path)?;
        debug_assert_eq!(
            scan_segment(seg.as_slice()).map(|s| s.valid_end).ok(),
            Some(tail_scan.valid_end),
            "the mapping and the file read agree on the append point"
        );
        // zero anything past the intact frames — a torn tail, or
        // unsynced garbage a crash may have half-persisted — so appends
        // and rescans start from a clean boundary
        if tail_scan.valid_end < seg.len() {
            seg.zero_range(tail_scan.valid_end, seg.len() - tail_scan.valid_end);
        }
        let base = entries.first().map_or(tail_scan.base, |(p, _)| *p);
        let wal = Wal {
            dir: dir.to_path_buf(),
            seg,
            seg_base: tail_scan.base,
            write_off: tail_scan.valid_end,
            synced_off: tail_scan.valid_end,
            sealed,
            base,
            next,
            synced: next,
            capacity,
            scratch: Vec::with_capacity(256),
            metrics: None,
        };
        Ok(WalOpen {
            wal,
            entries,
            torn_tail,
        })
    }

    /// Build a fresh single-segment log based at `base`.
    fn create_fresh(dir: &Path, capacity: usize, base: u64) -> std::io::Result<Wal> {
        let seg = new_segment(dir, capacity, base)?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            seg,
            seg_base: base,
            write_off: SEGMENT_HEADER,
            synced_off: SEGMENT_HEADER,
            sealed: Vec::new(),
            base,
            next: base,
            synced: base,
            capacity,
            scratch: Vec::with_capacity(256),
            metrics: None,
        })
    }

    /// Read a legacy JSON-lines log, rebuild it as binary segments,
    /// and delete the text file. The migrated log keeps the legacy
    /// base, entries, and torn-tail verdict.
    fn migrate_legacy(dir: &Path, capacity: usize, legacy: &Path) -> std::io::Result<WalOpen> {
        let parsed = read_legacy(legacy)?;
        // stale segments next to a legacy log cannot happen in normal
        // operation (this build never writes wal.log); prefer the text
        // log and clear the rest
        for (_, path) in list_segments(dir)? {
            std::fs::remove_file(path)?;
        }
        let mut wal = Self::create_fresh(dir, capacity, parsed.base)?;
        for (_, record) in &parsed.entries {
            wal.append(record)?;
        }
        wal.sync()?;
        std::fs::remove_file(legacy)?;
        sync_dir(dir)?;
        Ok(WalOpen {
            wal,
            entries: parsed.entries,
            torn_tail: parsed.torn_tail,
        })
    }

    /// Attach durability-timing histograms; subsequent appends and
    /// syncs record into them.
    pub fn set_metrics(&mut self, metrics: WalMetrics) {
        self.metrics = Some(metrics);
    }

    /// Append one record, returning its absolute position. The bytes
    /// land in the mapped segment immediately (no buffering layer),
    /// but durability requires a later [`Wal::sync`]; callers batch
    /// syncs to keep the hot path off the disk's barrier latency.
    pub fn append(&mut self, record: &Record) -> std::io::Result<u64> {
        let t0 = Instant::now();
        self.scratch.clear();
        self.scratch.extend_from_slice(&[0u8; FRAME_PREFIX]);
        frame::put_record(&mut self.scratch, record);
        let body_len = self.scratch.len() - FRAME_PREFIX;
        let crc = frame::crc32(&self.scratch[FRAME_PREFIX..]);
        self.scratch[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
        self.scratch[4..8].copy_from_slice(&crc.to_le_bytes());

        if self.write_off + self.scratch.len() > self.seg.len() {
            self.roll(self.scratch.len())?;
        }
        self.seg.write_at(self.write_off, &self.scratch);
        self.write_off += self.scratch.len();
        let pos = self.next;
        self.next += 1;
        if let Some(m) = &self.metrics {
            m.append_ns.record_duration(t0.elapsed());
        }
        Ok(pos)
    }

    /// Append a whole batch of records with one timing sample and one
    /// mapped-segment write per segment touched: frames are encoded
    /// back-to-back into a staging buffer and flushed with a single
    /// `write_at`, rolling mid-batch when the next frame would not fit.
    /// The resulting log is byte-for-byte identical to appending the
    /// records one at a time — replay cannot tell the difference — and
    /// durability still requires a later [`Wal::sync`]. Returns the
    /// absolute position of the first record in the batch.
    pub fn append_batch(&mut self, records: &[Record]) -> std::io::Result<u64> {
        if records.is_empty() {
            return Ok(self.next);
        }
        let t0 = Instant::now();
        let first = self.next;
        let mut staged: Vec<u8> = Vec::with_capacity(256 * records.len());
        for record in records {
            self.scratch.clear();
            self.scratch.extend_from_slice(&[0u8; FRAME_PREFIX]);
            frame::put_record(&mut self.scratch, record);
            let body_len = self.scratch.len() - FRAME_PREFIX;
            let crc = frame::crc32(&self.scratch[FRAME_PREFIX..]);
            self.scratch[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
            self.scratch[4..8].copy_from_slice(&crc.to_le_bytes());
            if self.write_off + staged.len() + self.scratch.len() > self.seg.len() {
                if !staged.is_empty() {
                    self.seg.write_at(self.write_off, &staged);
                    self.write_off += staged.len();
                    staged.clear();
                }
                self.roll(self.scratch.len())?;
            }
            staged.extend_from_slice(&self.scratch);
            self.next += 1;
        }
        if !staged.is_empty() {
            self.seg.write_at(self.write_off, &staged);
            self.write_off += staged.len();
        }
        if let Some(m) = &self.metrics {
            m.append_ns.record_duration(t0.elapsed());
        }
        Ok(first)
    }

    /// Seal the current segment and start a new one based at the
    /// current head, sized to hold at least one `need`-byte frame.
    fn roll(&mut self, need: usize) -> std::io::Result<()> {
        // make the sealed segment fully durable before the new one
        // exists: recovery treats a torn non-final segment as the end
        // of the log, so ordering matters
        self.seg
            .sync_range(self.synced_off, self.write_off - self.synced_off)?;
        self.synced = self.next;
        let capacity = self.capacity.max(SEGMENT_HEADER + need);
        let seg = new_segment(&self.dir, capacity, self.next)?;
        let old = std::mem::replace(&mut self.seg, seg);
        drop(old);
        self.sealed.push(SealedSegment {
            path: segment_path(&self.dir, self.seg_base),
            base: self.seg_base,
            count: self.next - self.seg_base,
        });
        self.seg_base = self.next;
        self.write_off = SEGMENT_HEADER;
        self.synced_off = SEGMENT_HEADER;
        Ok(())
    }

    /// Flush appended frames to disk (`msync` of the dirty range).
    /// After this returns, every appended record survives a crash.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.synced == self.next {
            return Ok(());
        }
        let t0 = Instant::now();
        let batch = self.next - self.synced;
        self.seg
            .sync_range(self.synced_off, self.write_off - self.synced_off)?;
        self.synced_off = self.write_off;
        self.synced = self.next;
        if let Some(m) = &self.metrics {
            m.fsync_batch.record(batch);
            m.fsync_ns.record_duration(t0.elapsed());
        }
        Ok(())
    }

    /// Logical base: the oldest position not yet covered by a
    /// snapshot-driven compaction — the oldest tail this log is
    /// *obliged* to serve. (A straddling segment may physically hold a
    /// few earlier entries; replay filters them by position.) A `sync`
    /// request whose `from` predates this must fall back to
    /// full-snapshot shipping.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Absolute position one past the last appended entry.
    pub fn position(&self) -> u64 {
        self.next
    }

    /// Absolute position through which appends are known durable.
    pub fn synced(&self) -> u64 {
        self.synced
    }

    /// Entries past the logical base (the replay tail length a restart
    /// would pay for).
    pub fn tail_len(&self) -> u64 {
        self.next - self.base
    }

    /// Records appended but not yet synced.
    pub fn pending_sync(&self) -> u64 {
        self.next - self.synced
    }

    /// Ring-style compaction: retire (unlink) every sealed segment
    /// whose entries all lie below `through`, and advance the logical
    /// base. Called right after a snapshot covering `through` records
    /// has been persisted. Nothing is rewritten: a segment that
    /// straddles `through` survives until a later snapshot covers it
    /// entirely. A `through` at or past the current head drops every
    /// segment and starts a fresh one based there (the recovery path
    /// for a snapshot that outlived its WAL).
    pub fn compact_through(&mut self, through: u64) -> std::io::Result<()> {
        if through <= self.base {
            return Ok(()); // nothing to drop
        }
        self.sync()?;
        if through >= self.next {
            return self.reset_to(through);
        }
        let mut removed = false;
        while let Some(seg) = self.sealed.first() {
            if seg.base + seg.count > through {
                break;
            }
            std::fs::remove_file(&seg.path)?;
            self.sealed.remove(0);
            removed = true;
        }
        if removed {
            sync_dir(&self.dir)?;
        }
        self.base = through;
        Ok(())
    }

    /// Atomically replace the journal with an empty one based at `at` —
    /// the restore path's reset. Unlike [`Wal::compact_through`], this
    /// drops *every* local entry including ones past `at`: shipped
    /// state supersedes the local history wholesale, and entries beyond
    /// the shipped position are exactly the ones that must not replay
    /// on top of it.
    pub fn rebase(&mut self, at: u64) -> std::io::Result<()> {
        self.reset_to(at)
    }

    /// Drop every segment and start a fresh one based at `at`.
    fn reset_to(&mut self, at: u64) -> std::io::Result<()> {
        // create the replacement first so a crash mid-reset leaves at
        // least one segment; the scan drops discontinuous leftovers
        let seg = new_segment(&self.dir, self.capacity, at)?;
        let old_tail = segment_path(&self.dir, self.seg_base);
        let old = std::mem::replace(&mut self.seg, seg);
        drop(old);
        if self.seg_base != at {
            std::fs::remove_file(&old_tail)?;
        }
        for sealed in self.sealed.drain(..) {
            if sealed.base != at {
                std::fs::remove_file(&sealed.path)?;
            }
        }
        sync_dir(&self.dir)?;
        self.seg_base = at;
        self.write_off = SEGMENT_HEADER;
        self.synced_off = SEGMENT_HEADER;
        self.base = at;
        self.next = at;
        self.synced = at;
        Ok(())
    }
}

/// Create, preallocate, and map a fresh segment based at `base`, with
/// its header written and durable (file and directory entry both).
fn new_segment(dir: &Path, capacity: usize, base: u64) -> std::io::Result<MmapFile> {
    let mut seg = MmapFile::create(&segment_path(dir, base), capacity)?;
    let mut header = [0u8; SEGMENT_HEADER];
    header[..8].copy_from_slice(SEGMENT_MAGIC);
    header[8..16].copy_from_slice(&base.to_le_bytes());
    seg.write_at(0, &header);
    seg.sync_range(0, SEGMENT_HEADER)?;
    seg.sync_file()?;
    sync_dir(dir)?;
    Ok(seg)
}

/// Replay helper: the entries of the log in `dir` whose absolute
/// position is `>= from`, in order. Missing directory (or no log yet)
/// means an empty tail. Read-only — safe to call on a live server's
/// data directory (the `sync` command's tail-shipping path does).
pub fn replay_from(dir: &Path, from: u64) -> std::io::Result<Vec<Record>> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let legacy = dir.join(WAL_FILE);
    let mut entries: Vec<(u64, Record)> = Vec::new();
    if legacy.exists() {
        entries = read_legacy(&legacy)?.entries;
    } else {
        let mut expected_base: Option<u64> = None;
        for (name_base, path) in list_segments(dir)? {
            let bytes = std::fs::read(&path)?;
            let scan = match scan_segment(&bytes) {
                Ok(scan) if scan.base == name_base => scan,
                _ => break,
            };
            if expected_base.is_some_and(|e| e != scan.base) {
                break;
            }
            expected_base = Some(scan.base + scan.records.len() as u64);
            let torn = scan.torn;
            for (i, record) in scan.records.into_iter().enumerate() {
                entries.push((scan.base + i as u64, record));
            }
            if torn {
                break;
            }
        }
    }
    Ok(entries
        .into_iter()
        .filter(|(pos, _)| *pos >= from)
        .map(|(_, r)| r)
        .collect())
}

/// A parsed legacy JSON-lines log.
struct LegacyLog {
    base: u64,
    entries: Vec<(u64, Record)>,
    torn_tail: bool,
}

/// Parse a legacy `wal.log`: one header line (`{"wal_base": N}`) then
/// one serde `Record` JSON object per line. A partial or corrupt tail
/// line ends replay (torn), matching the original format's semantics.
fn read_legacy(path: &Path) -> std::io::Result<LegacyLog> {
    let mut base = 0u64;
    let mut entries: Vec<(u64, Record)> = Vec::new();
    let mut torn_tail = false;
    let mut header_ok = false;
    let mut reader = BufReader::new(File::open(path)?);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        let complete = line.ends_with('\n');
        let text = line.trim_end();
        if !header_ok {
            match parse_header(text) {
                Some(b) if complete => {
                    base = b;
                    header_ok = true;
                    continue;
                }
                _ => {
                    torn_tail = true;
                    break;
                }
            }
        }
        match serde_json::from_str::<Record>(text) {
            Ok(record) if complete => {
                entries.push((base + entries.len() as u64, record));
            }
            _ => {
                // partial or corrupt tail: stop replay here
                torn_tail = true;
                break;
            }
        }
    }
    Ok(LegacyLog {
        base,
        entries,
        torn_tail,
    })
}

fn parse_header(text: &str) -> Option<u64> {
    serde_json::parse_value(text)
        .ok()?
        .get("wal_base")?
        .as_u64()
}

/// fsync a directory so created/unlinked segment entries are durable.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_types::{RecordId, SourceId};
    use std::fs::OpenOptions;
    use std::io::Write;

    fn rec(i: u32) -> Record {
        let mut r = Record::new(RecordId::new(SourceId(0), i), format!("Gadget{i}"));
        r.identifiers.push(format!("XXX-YYY-{i:05}"));
        r
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bdi-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Capacity that fits roughly two `rec`-sized frames per segment,
    /// so a handful of appends exercises rolling and retirement.
    fn small_cap() -> usize {
        SEGMENT_HEADER + 2 * (FRAME_PREFIX + frame::encode_record_body(&rec(0)).len() + 8)
    }

    #[test]
    fn append_sync_reopen_replays_everything() {
        let dir = tmp_dir("basic");
        {
            let mut wal = Wal::open(&dir).unwrap().wal;
            for i in 0..5 {
                assert_eq!(wal.append(&rec(i)).unwrap(), u64::from(i));
            }
            assert_eq!(wal.pending_sync(), 5);
            wal.sync().unwrap();
            assert_eq!(wal.pending_sync(), 0);
        }
        let opened = Wal::open(&dir).unwrap();
        assert!(!opened.torn_tail);
        assert_eq!(opened.entries.len(), 5);
        assert_eq!(opened.entries[3].0, 3);
        assert_eq!(opened.entries[3].1.title, "Gadget3");
        assert_eq!(opened.wal.position(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_and_log_stays_appendable() {
        let dir = tmp_dir("torn");
        {
            let mut wal = Wal::open(&dir).unwrap().wal;
            for i in 0..3 {
                wal.append(&rec(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        // simulate a crash mid-append: a frame whose length field is in
        // place but whose body was only half persisted
        {
            use std::io::{Seek, SeekFrom, Write as _};
            let opened = Wal::open(&dir).unwrap();
            let tail_off = opened.wal.write_off;
            let path = segment_path(&dir, 0);
            drop(opened);
            let body = frame::encode_record_body(&rec(3));
            let mut torn = Vec::new();
            torn.extend_from_slice(&(body.len() as u32).to_le_bytes());
            torn.extend_from_slice(&frame::crc32(&body).to_le_bytes());
            torn.extend_from_slice(&body[..body.len() / 2]); // half the body
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(tail_off as u64)).unwrap();
            f.write_all(&torn).unwrap();
        }
        let opened = Wal::open(&dir).unwrap();
        assert!(opened.torn_tail, "partial frame detected");
        assert_eq!(opened.entries.len(), 3, "intact prefix survives");
        // the torn bytes were zeroed: appending continues cleanly
        let mut wal = opened.wal;
        assert_eq!(wal.append(&rec(3)).unwrap(), 3);
        wal.sync().unwrap();
        let reopened = Wal::open(&dir).unwrap();
        assert!(!reopened.torn_tail);
        assert_eq!(reopened.entries.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_crc_mid_log_truncates_from_there() {
        let dir = tmp_dir("crc");
        {
            let mut wal = Wal::open(&dir).unwrap().wal;
            for i in 0..4 {
                wal.append(&rec(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        // flip one byte inside the third record's body
        {
            use std::io::{Seek, SeekFrom, Write as _};
            let frame_len = FRAME_PREFIX as u64 + frame::encode_record_body(&rec(0)).len() as u64;
            let off = SEGMENT_HEADER as u64 + 2 * frame_len + FRAME_PREFIX as u64 + 5;
            let path = segment_path(&dir, 0);
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            f.seek(SeekFrom::Start(off)).unwrap();
            f.write_all(&[0xFF]).unwrap();
        }
        let opened = Wal::open(&dir).unwrap();
        assert!(opened.torn_tail, "CRC mismatch counts as torn");
        assert_eq!(
            opened.entries.len(),
            2,
            "replay stops before the corrupt frame; the rest is discarded"
        );
        assert_eq!(opened.wal.position(), 2);
        // positions 2.. are reusable after the truncation
        let mut wal = opened.wal;
        assert_eq!(wal.append(&rec(2)).unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_roll_across_segments_and_replay_in_order() {
        let dir = tmp_dir("roll");
        {
            let mut wal = Wal::open_with_capacity(&dir, small_cap()).unwrap().wal;
            for i in 0..7 {
                wal.append(&rec(i)).unwrap();
            }
            wal.sync().unwrap();
            assert!(
                list_segments(&dir).unwrap().len() >= 3,
                "seven records at two-per-segment capacity must roll"
            );
        }
        let opened = Wal::open(&dir).unwrap();
        assert!(!opened.torn_tail);
        let positions: Vec<u64> = opened.entries.iter().map(|(p, _)| *p).collect();
        assert_eq!(positions, (0..7).collect::<Vec<u64>>());
        assert_eq!(opened.wal.position(), 7);
        assert_eq!(replay_from(&dir, 5).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_append_is_byte_identical_to_per_record_appends() {
        let (dir_a, dir_b) = (tmp_dir("batch-a"), tmp_dir("batch-b"));
        let records: Vec<Record> = (0..7).map(rec).collect();
        {
            // small capacity so the batch is forced to roll mid-way
            let mut one = Wal::open_with_capacity(&dir_a, small_cap()).unwrap().wal;
            for r in &records {
                one.append(r).unwrap();
            }
            one.sync().unwrap();
            let mut batched = Wal::open_with_capacity(&dir_b, small_cap()).unwrap().wal;
            assert_eq!(batched.append_batch(&records).unwrap(), 0);
            assert_eq!(batched.position(), 7);
            batched.sync().unwrap();
        }
        let (a, b) = (Wal::open(&dir_a).unwrap(), Wal::open(&dir_b).unwrap());
        assert!(!a.torn_tail && !b.torn_tail);
        assert_eq!(a.entries, b.entries, "replay must not see a difference");
        let (segs_a, segs_b) = (
            list_segments(&dir_a).unwrap(),
            list_segments(&dir_b).unwrap(),
        );
        assert!(segs_a.len() >= 3, "batch must have rolled");
        assert_eq!(segs_a.len(), segs_b.len());
        for ((base_a, pa), (base_b, pb)) in segs_a.iter().zip(&segs_b) {
            assert_eq!(base_a, base_b);
            assert_eq!(
                std::fs::read(pa).unwrap(),
                std::fs::read(pb).unwrap(),
                "segment bytes diverged: {pa:?} vs {pb:?}"
            );
        }
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn compact_retires_whole_segments_and_keeps_positions() {
        let dir = tmp_dir("compact");
        let mut wal = Wal::open_with_capacity(&dir, small_cap()).unwrap().wal;
        for i in 0..6 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        let before = list_segments(&dir).unwrap().len();
        wal.compact_through(4).unwrap();
        assert_eq!(wal.tail_len(), 2);
        assert_eq!(wal.position(), 6);
        assert!(
            list_segments(&dir).unwrap().len() < before,
            "fully covered segments are unlinked, not rewritten"
        );
        // appends after compaction continue at the right position
        assert_eq!(wal.append(&rec(6)).unwrap(), 6);
        wal.sync().unwrap();
        drop(wal);
        let opened = Wal::open(&dir).unwrap();
        let positions: Vec<u64> = opened.entries.iter().map(|(p, _)| *p).collect();
        assert_eq!(positions, vec![4, 5, 6]);
        assert_eq!(replay_from(&dir, 5).unwrap().len(), 2);
        assert_eq!(replay_from(&dir, 99).unwrap().len(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_keeps_a_straddling_tail_segment() {
        let dir = tmp_dir("straddle");
        // default capacity: all six entries share one segment, so
        // nothing can retire — the logical base still advances, and the
        // physical extras are filtered by position on replay
        let mut wal = Wal::open(&dir).unwrap().wal;
        for i in 0..6 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        wal.compact_through(4).unwrap();
        assert_eq!(wal.base(), 4, "logical base advances");
        assert_eq!(wal.tail_len(), 2);
        assert_eq!(list_segments(&dir).unwrap().len(), 1, "straddler stays");
        assert_eq!(
            replay_from(&dir, 4).unwrap().len(),
            2,
            "replay filters the covered prefix by position"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_from_missing_dir_is_empty() {
        let dir = tmp_dir("missing");
        assert!(replay_from(&dir, 0).unwrap().is_empty());
    }

    // The replacement-bootstrap path (`sync` + `restore`) leans on the
    // WAL behaving at its edges: the cases below are exactly the
    // states a donor backend can be in when asked for a tail.

    #[test]
    fn rebase_drops_everything_even_past_the_base() {
        let dir = tmp_dir("rebase");
        let mut wal = Wal::open_with_capacity(&dir, small_cap()).unwrap().wal;
        for i in 0..6 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        // rebase *below* the head: compact_through would keep entries
        // 3..6, rebase must not
        wal.rebase(3).unwrap();
        assert_eq!(wal.base(), 3);
        assert_eq!(wal.position(), 3);
        assert_eq!(wal.tail_len(), 0);
        assert_eq!(wal.append(&rec(3)).unwrap(), 3);
        wal.sync().unwrap();
        drop(wal);
        let opened = Wal::open(&dir).unwrap();
        let positions: Vec<u64> = opened.entries.iter().map(|(p, _)| *p).collect();
        assert_eq!(positions, vec![3], "pre-rebase entries are gone");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_only_log_replays_nothing_and_keeps_its_base() {
        let dir = tmp_dir("header-only");
        {
            let mut wal = Wal::open(&dir).unwrap().wal;
            for i in 0..4 {
                wal.append(&rec(i)).unwrap();
            }
            wal.sync().unwrap();
            wal.compact_through(4).unwrap(); // empty log, base 4
        }
        let opened = Wal::open(&dir).unwrap();
        assert!(!opened.torn_tail);
        assert!(opened.entries.is_empty());
        assert_eq!(opened.wal.base(), 4, "compacted base survives reopen");
        assert_eq!(opened.wal.position(), 4);
        assert!(replay_from(&dir, 0).unwrap().is_empty());
        // appends continue at the re-based position
        let mut wal = opened.wal;
        assert_eq!(wal.append(&rec(4)).unwrap(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_from_mid_file_position() {
        let dir = tmp_dir("mid-replay");
        let mut wal = Wal::open(&dir).unwrap().wal;
        for i in 0..8 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let tail = replay_from(&dir, 5).unwrap();
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].title, "Gadget5", "tail starts exactly at `from`");
        assert_eq!(tail[2].title, "Gadget7");
        assert_eq!(
            replay_from(&dir, 8).unwrap().len(),
            0,
            "from == head is empty"
        );
        assert_eq!(
            replay_from(&dir, 0).unwrap().len(),
            8,
            "from 0 is everything"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_json_log_is_migrated_in_place() {
        let dir = tmp_dir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        {
            let mut f = File::create(dir.join(WAL_FILE)).unwrap();
            writeln!(f, "{{\"wal_base\": 3}}").unwrap();
            for i in 3..6 {
                writeln!(f, "{}", serde_json::to_string(&rec(i)).unwrap()).unwrap();
            }
            // torn final line, no newline
            f.write_all(b"{\"id\": {\"source\": 0, \"se").unwrap();
        }
        let opened = Wal::open(&dir).unwrap();
        assert!(opened.torn_tail, "legacy torn tail is reported");
        let positions: Vec<u64> = opened.entries.iter().map(|(p, _)| *p).collect();
        assert_eq!(positions, vec![3, 4, 5]);
        assert_eq!(opened.wal.base(), 3, "legacy base survives migration");
        assert_eq!(opened.wal.position(), 6);
        assert!(
            !dir.join(WAL_FILE).exists(),
            "text log is gone after migration"
        );
        // the migrated log is a normal binary log from here on
        let mut wal = opened.wal;
        assert_eq!(wal.append(&rec(6)).unwrap(), 6);
        wal.sync().unwrap();
        drop(wal);
        let reopened = Wal::open(&dir).unwrap();
        assert!(!reopened.torn_tail);
        assert_eq!(reopened.entries.len(), 4);
        assert_eq!(reopened.entries[3].0, 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_empty_file_is_a_fresh_log() {
        let dir = tmp_dir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(WAL_FILE), b"").unwrap();
        let opened = Wal::open(&dir).unwrap();
        assert_eq!(opened.entries.len(), 0);
        assert_eq!(opened.wal.base(), 0);
        assert_eq!(opened.wal.position(), 0);
        let mut wal = opened.wal;
        assert_eq!(wal.append(&rec(0)).unwrap(), 0);
        wal.sync().unwrap();
        let reopened = Wal::open(&dir).unwrap();
        assert!(!reopened.torn_tail);
        assert_eq!(reopened.entries.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_record_gets_its_own_segment() {
        let dir = tmp_dir("oversize");
        let mut wal = Wal::open_with_capacity(&dir, small_cap()).unwrap().wal;
        wal.append(&rec(0)).unwrap();
        let mut big = rec(1);
        big.title = "X".repeat(small_cap() * 3);
        wal.append(&big).unwrap();
        wal.append(&rec(2)).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let opened = Wal::open(&dir).unwrap();
        assert!(!opened.torn_tail);
        assert_eq!(opened.entries.len(), 3);
        assert_eq!(opened.entries[1].1.title.len(), small_cap() * 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
