//! The write-ahead log: an append-only JSON-lines record journal.
//!
//! Every record accepted by the ingest worker is appended here *before*
//! it is linked, so a crash can lose at most the records that were not
//! yet fsync'd (bounded by the sync batch, see [`Wal::append`]). The
//! file layout is deliberately trivial — it is the same serde `Record`
//! JSON the wire protocol carries, one per line, behind a single header
//! line — so a WAL can be inspected (or repaired) with standard text
//! tools:
//!
//! ```text
//! {"wal_base": 4096}        <- absolute position of the first entry
//! {"id": {...}, "title": ...}   <- record at position 4096
//! {"id": {...}, "title": ...}   <- record at position 4097
//! ...
//! ```
//!
//! *Positions* are absolute ingest sequence numbers (0-based count of
//! records ever applied), not file offsets. When a snapshot is written
//! covering everything through position `P`, [`Wal::compact_through`]
//! atomically replaces the file with one whose base is `P` — recovery
//! cost is therefore bounded by one snapshot load plus this tail.
//!
//! Replay ([`Wal::replay_from`]) tolerates a torn final line: a crash
//! mid-append leaves a partial JSON line at the tail, which replay
//! treats as the end of the log rather than an error, matching standard
//! WAL semantics.

use bdi_obs::{Histogram, Registry};
use bdi_types::Record;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// File name of the live log inside a data directory.
pub const WAL_FILE: &str = "wal.log";
const WAL_TMP: &str = "wal.log.tmp";

/// An open write-ahead log (the ingest worker's append handle).
pub struct Wal {
    dir: PathBuf,
    writer: BufWriter<File>,
    /// Absolute position of the first entry in the current file.
    base: u64,
    /// Absolute position one past the last appended entry.
    next: u64,
    /// Absolute position through which the file is known fsync'd.
    synced: u64,
    /// Durability-timing histograms, when the owner attached any.
    metrics: Option<WalMetrics>,
}

/// Durability-timing histograms a [`Wal`] records into when attached
/// via [`Wal::set_metrics`].
#[derive(Clone)]
pub struct WalMetrics {
    /// One buffered [`Wal::append`] (serialize + buffered write), ns.
    pub append_ns: Arc<Histogram>,
    /// One group-commit [`Wal::sync`] (flush + `fsync`), ns. Only
    /// syncs that actually hit the disk are recorded — the early return
    /// when nothing is pending is not an fsync.
    pub fsync_ns: Arc<Histogram>,
    /// Records made durable per fsync — the group-commit batch size
    /// the `sync_every` policy is achieving in practice.
    pub fsync_batch: Arc<Histogram>,
}

impl WalMetrics {
    /// Resolve the WAL's histograms in `registry` under the
    /// `serve.wal.*` names.
    pub fn register(registry: &Registry) -> Self {
        Self {
            append_ns: registry.histogram("serve.wal.append.latency_ns"),
            fsync_ns: registry.histogram("serve.wal.fsync.latency_ns"),
            fsync_batch: registry.histogram("serve.wal.fsync.batch_records"),
        }
    }
}

/// What [`Wal::open`] found on disk.
pub struct WalOpen {
    /// The log, positioned for appending.
    pub wal: Wal,
    /// Entries already in the file (absolute position + record), in
    /// append order — the tail to replay after a snapshot load.
    pub entries: Vec<(u64, Record)>,
    /// True when a torn (partially written) final line was discarded.
    pub torn_tail: bool,
}

impl Wal {
    /// Open (or create) the log in `dir`, reading back any existing
    /// entries for replay. Existing content is preserved; appends
    /// continue after the last intact entry. A torn final line is
    /// truncated away so the file ends on a record boundary.
    pub fn open(dir: &Path) -> std::io::Result<WalOpen> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let mut base = 0u64;
        let mut entries: Vec<(u64, Record)> = Vec::new();
        let mut torn_tail = false;
        let mut intact_bytes = 0u64;
        let mut header_ok = false;
        if path.exists() {
            let mut reader = BufReader::new(File::open(&path)?);
            let mut line = String::new();
            loop {
                line.clear();
                let n = reader.read_line(&mut line)?;
                if n == 0 {
                    break;
                }
                let complete = line.ends_with('\n');
                let text = line.trim_end();
                if !header_ok {
                    match parse_header(text) {
                        Some(b) if complete => {
                            base = b;
                            header_ok = true;
                            intact_bytes += n as u64;
                            continue;
                        }
                        _ => {
                            torn_tail = true;
                            break;
                        }
                    }
                }
                match serde_json::from_str::<Record>(text) {
                    Ok(record) if complete => {
                        entries.push((base + entries.len() as u64, record));
                        intact_bytes += n as u64;
                    }
                    _ => {
                        // partial or corrupt tail: stop replay here
                        torn_tail = true;
                        break;
                    }
                }
            }
        }
        let next = base + entries.len() as u64;
        let file = if path.exists() && header_ok {
            let f = OpenOptions::new().read(true).write(true).open(&path)?;
            if torn_tail {
                f.set_len(intact_bytes)?;
            }
            let mut f = f;
            use std::io::Seek;
            f.seek(std::io::SeekFrom::End(0))?;
            f
        } else {
            // fresh (or headerless/corrupt-from-line-one) log
            let mut f = File::create(&path)?;
            writeln!(f, "{}", header_line(base))?;
            f.sync_data()?;
            f
        };
        Ok(WalOpen {
            wal: Wal {
                dir: dir.to_path_buf(),
                writer: BufWriter::new(file),
                base,
                next,
                synced: next,
                metrics: None,
            },
            entries,
            torn_tail,
        })
    }

    /// Attach durability-timing histograms; subsequent appends and
    /// syncs record into them.
    pub fn set_metrics(&mut self, metrics: WalMetrics) {
        self.metrics = Some(metrics);
    }

    /// Append one record, returning its absolute position. The write is
    /// buffered — durability requires a later [`Wal::sync`]; callers
    /// batch syncs to keep the hot path off the disk's fsync latency.
    pub fn append(&mut self, record: &Record) -> std::io::Result<u64> {
        let t0 = Instant::now();
        let line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(self.writer, "{line}")?;
        let pos = self.next;
        self.next += 1;
        if let Some(m) = &self.metrics {
            m.append_ns.record_duration(t0.elapsed());
        }
        Ok(pos)
    }

    /// Flush buffered appends and fsync the file. After this returns,
    /// every appended record survives a crash.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.synced == self.next {
            return Ok(());
        }
        let t0 = Instant::now();
        let batch = self.next - self.synced;
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        self.synced = self.next;
        if let Some(m) = &self.metrics {
            m.fsync_batch.record(batch);
            m.fsync_ns.record_duration(t0.elapsed());
        }
        Ok(())
    }

    /// Absolute position of the first entry still in the file — the
    /// oldest position this log can serve a tail from. A `sync` request
    /// whose `from` predates this must fall back to full-snapshot
    /// shipping.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Absolute position one past the last appended entry.
    pub fn position(&self) -> u64 {
        self.next
    }

    /// Absolute position through which appends are known durable.
    pub fn synced(&self) -> u64 {
        self.synced
    }

    /// Entries currently in the file (the replay tail length).
    pub fn tail_len(&self) -> u64 {
        self.next - self.base
    }

    /// Records appended but not yet fsync'd.
    pub fn pending_sync(&self) -> u64 {
        self.next - self.synced
    }

    /// Drop every entry at a position below `through` by atomically
    /// replacing the file with one whose base is `through`. Called right
    /// after a snapshot covering `through` records has been persisted.
    /// Entries at or past `through` (none, in the normal
    /// snapshot-at-quiescence path) are carried over; a `through` past
    /// the current head re-bases an empty log there (the recovery path
    /// for a snapshot that outlived its WAL).
    pub fn compact_through(&mut self, through: u64) -> std::io::Result<()> {
        if through <= self.base {
            return Ok(()); // nothing to drop
        }
        self.sync()?;
        let keep: Vec<(u64, Record)> = if through >= self.next {
            Vec::new()
        } else {
            let reopened = Wal::open(&self.dir)?;
            reopened
                .entries
                .into_iter()
                .filter(|(pos, _)| *pos >= through)
                .collect()
        };
        let tmp = self.dir.join(WAL_TMP);
        {
            let mut f = BufWriter::new(File::create(&tmp)?);
            writeln!(f, "{}", header_line(through))?;
            for (_, record) in &keep {
                let line = serde_json::to_string(record).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
                writeln!(f, "{line}")?;
            }
            f.flush()?;
            f.get_ref().sync_data()?;
        }
        std::fs::rename(&tmp, self.dir.join(WAL_FILE))?;
        sync_dir(&self.dir)?;
        // swap the append handle over to the new file
        let mut f = OpenOptions::new()
            .read(true)
            .write(true)
            .open(self.dir.join(WAL_FILE))?;
        use std::io::Seek;
        f.seek(std::io::SeekFrom::End(0))?;
        self.writer = BufWriter::new(f);
        self.base = through;
        self.next = through + keep.len() as u64;
        self.synced = self.next;
        Ok(())
    }

    /// Atomically replace the journal with an empty one based at `at` —
    /// the restore path's reset. Unlike [`Wal::compact_through`], this
    /// drops *every* local entry including ones past `at`: shipped
    /// state supersedes the local history wholesale, and entries beyond
    /// the shipped position are exactly the ones that must not replay
    /// on top of it.
    pub fn rebase(&mut self, at: u64) -> std::io::Result<()> {
        let tmp = self.dir.join(WAL_TMP);
        {
            let mut f = BufWriter::new(File::create(&tmp)?);
            writeln!(f, "{}", header_line(at))?;
            f.flush()?;
            f.get_ref().sync_data()?;
        }
        std::fs::rename(&tmp, self.dir.join(WAL_FILE))?;
        sync_dir(&self.dir)?;
        let mut f = OpenOptions::new()
            .read(true)
            .write(true)
            .open(self.dir.join(WAL_FILE))?;
        use std::io::Seek;
        f.seek(std::io::SeekFrom::End(0))?;
        self.writer = BufWriter::new(f);
        self.base = at;
        self.next = at;
        self.synced = at;
        Ok(())
    }
}

/// Replay helper: the entries of the log in `dir` whose absolute
/// position is `>= from`, in order. Missing file means an empty tail.
pub fn replay_from(dir: &Path, from: u64) -> std::io::Result<Vec<Record>> {
    if !dir.join(WAL_FILE).exists() {
        return Ok(Vec::new());
    }
    let opened = Wal::open(dir)?;
    Ok(opened
        .entries
        .into_iter()
        .filter(|(pos, _)| *pos >= from)
        .map(|(_, r)| r)
        .collect())
}

fn header_line(base: u64) -> String {
    format!("{{\"wal_base\": {base}}}")
}

fn parse_header(text: &str) -> Option<u64> {
    serde_json::parse_value(text)
        .ok()?
        .get("wal_base")?
        .as_u64()
}

/// fsync a directory so a just-renamed file's directory entry is durable.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_types::{RecordId, SourceId};

    fn rec(i: u32) -> Record {
        let mut r = Record::new(RecordId::new(SourceId(0), i), format!("Gadget{i}"));
        r.identifiers.push(format!("XXX-YYY-{i:05}"));
        r
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bdi-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_sync_reopen_replays_everything() {
        let dir = tmp_dir("basic");
        {
            let mut wal = Wal::open(&dir).unwrap().wal;
            for i in 0..5 {
                assert_eq!(wal.append(&rec(i)).unwrap(), u64::from(i));
            }
            assert_eq!(wal.pending_sync(), 5);
            wal.sync().unwrap();
            assert_eq!(wal.pending_sync(), 0);
        }
        let opened = Wal::open(&dir).unwrap();
        assert!(!opened.torn_tail);
        assert_eq!(opened.entries.len(), 5);
        assert_eq!(opened.entries[3].0, 3);
        assert_eq!(opened.entries[3].1.title, "Gadget3");
        assert_eq!(opened.wal.position(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_and_log_stays_appendable() {
        let dir = tmp_dir("torn");
        {
            let mut wal = Wal::open(&dir).unwrap().wal;
            for i in 0..3 {
                wal.append(&rec(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        // simulate a crash mid-append: partial JSON, no trailing newline
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(WAL_FILE))
                .unwrap();
            f.write_all(b"{\"id\": {\"source\": 0, \"se").unwrap();
        }
        let opened = Wal::open(&dir).unwrap();
        assert!(opened.torn_tail, "partial line detected");
        assert_eq!(opened.entries.len(), 3, "intact prefix survives");
        // the torn bytes were truncated: appending continues cleanly
        let mut wal = opened.wal;
        assert_eq!(wal.append(&rec(3)).unwrap(), 3);
        wal.sync().unwrap();
        let reopened = Wal::open(&dir).unwrap();
        assert!(!reopened.torn_tail);
        assert_eq!(reopened.entries.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_drops_covered_prefix_and_keeps_positions() {
        let dir = tmp_dir("compact");
        let mut wal = Wal::open(&dir).unwrap().wal;
        for i in 0..6 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        wal.compact_through(4).unwrap();
        assert_eq!(wal.tail_len(), 2);
        assert_eq!(wal.position(), 6);
        // appends after compaction continue at the right position
        assert_eq!(wal.append(&rec(6)).unwrap(), 6);
        wal.sync().unwrap();
        drop(wal);
        let opened = Wal::open(&dir).unwrap();
        let positions: Vec<u64> = opened.entries.iter().map(|(p, _)| *p).collect();
        assert_eq!(positions, vec![4, 5, 6]);
        assert_eq!(replay_from(&dir, 5).unwrap().len(), 2);
        assert_eq!(replay_from(&dir, 99).unwrap().len(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_from_missing_dir_is_empty() {
        let dir = tmp_dir("missing");
        assert!(replay_from(&dir, 0).unwrap().is_empty());
    }

    // The replacement-bootstrap path (`sync` + `restore`) leans on the
    // WAL behaving at its edges: the four cases below are exactly the
    // states a donor backend can be in when asked for a tail.

    #[test]
    fn rebase_drops_everything_even_past_the_base() {
        let dir = tmp_dir("rebase");
        let mut wal = Wal::open(&dir).unwrap().wal;
        for i in 0..6 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        // rebase *below* the head: compact_through would keep entries
        // 3..6, rebase must not
        wal.rebase(3).unwrap();
        assert_eq!(wal.base(), 3);
        assert_eq!(wal.position(), 3);
        assert_eq!(wal.tail_len(), 0);
        assert_eq!(wal.append(&rec(3)).unwrap(), 3);
        wal.sync().unwrap();
        drop(wal);
        let opened = Wal::open(&dir).unwrap();
        let positions: Vec<u64> = opened.entries.iter().map(|(p, _)| *p).collect();
        assert_eq!(positions, vec![3], "pre-rebase entries are gone");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_file_is_a_fresh_log() {
        let dir = tmp_dir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(WAL_FILE), b"").unwrap();
        let opened = Wal::open(&dir).unwrap();
        assert_eq!(opened.entries.len(), 0);
        assert_eq!(opened.wal.base(), 0);
        assert_eq!(opened.wal.position(), 0);
        // a zero-length file has no intact header, so it is rewritten
        // as a fresh log and stays appendable
        let mut wal = opened.wal;
        assert_eq!(wal.append(&rec(0)).unwrap(), 0);
        wal.sync().unwrap();
        let reopened = Wal::open(&dir).unwrap();
        assert!(!reopened.torn_tail);
        assert_eq!(reopened.entries.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_only_file_replays_nothing_and_keeps_its_base() {
        let dir = tmp_dir("header-only");
        {
            let mut wal = Wal::open(&dir).unwrap().wal;
            for i in 0..4 {
                wal.append(&rec(i)).unwrap();
            }
            wal.sync().unwrap();
            wal.compact_through(4).unwrap(); // empty log, base 4
        }
        let opened = Wal::open(&dir).unwrap();
        assert!(!opened.torn_tail);
        assert!(opened.entries.is_empty());
        assert_eq!(opened.wal.base(), 4, "compacted base survives reopen");
        assert_eq!(opened.wal.position(), 4);
        assert!(replay_from(&dir, 0).unwrap().is_empty());
        // appends continue at the re-based position
        let mut wal = opened.wal;
        assert_eq!(wal.append(&rec(4)).unwrap(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_exactly_at_a_record_boundary() {
        let dir = tmp_dir("torn-boundary");
        {
            let mut wal = Wal::open(&dir).unwrap().wal;
            for i in 0..2 {
                wal.append(&rec(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        // crash after writing a *complete* JSON record but before its
        // newline: the line parses, yet it must still count as torn —
        // the newline is the commit point
        {
            use std::io::Write as _;
            let full = serde_json::to_string(&rec(2)).unwrap();
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(WAL_FILE))
                .unwrap();
            f.write_all(full.as_bytes()).unwrap();
        }
        let opened = Wal::open(&dir).unwrap();
        assert!(opened.torn_tail, "missing newline means torn");
        assert_eq!(
            opened.entries.len(),
            2,
            "the unterminated record is not replayed"
        );
        // truncation restored the boundary: position 2 is reusable
        let mut wal = opened.wal;
        assert_eq!(wal.append(&rec(2)).unwrap(), 2);
        wal.sync().unwrap();
        let reopened = Wal::open(&dir).unwrap();
        assert!(!reopened.torn_tail);
        assert_eq!(reopened.entries.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_from_mid_file_position() {
        let dir = tmp_dir("mid-replay");
        let mut wal = Wal::open(&dir).unwrap().wal;
        for i in 0..8 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let tail = replay_from(&dir, 5).unwrap();
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].title, "Gadget5", "tail starts exactly at `from`");
        assert_eq!(tail[2].title, "Gadget7");
        assert_eq!(
            replay_from(&dir, 8).unwrap().len(),
            0,
            "from == head is empty"
        );
        assert_eq!(
            replay_from(&dir, 0).unwrap().len(),
            8,
            "from 0 is everything"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
