//! The ingest engine: incremental linkage + dirty-cluster fusion.
//!
//! Every inserted record is linked by the [`IncrementalLinker`] against
//! its blocking candidates only; the returned [`InsertTrace`] names the
//! one cluster the record landed in and any formerly distinct clusters
//! the insert bridged. Those are exactly the catalog entries that can
//! have changed, so a refresh re-fuses *their members only* and derives
//! the next catalog generation by [`Catalog::apply_delta`] — cost
//! proportional to the churn, never to the catalog.
//!
//! Fusion here is per-cluster majority vote over the members' raw
//! attribute names (lower-cased). Online serving trades the batch
//! pipeline's corpus-wide schema alignment for bounded refresh cost —
//! the pay-as-you-go stance from the dataspace line of work.

use bdi_core::catalog::{Catalog, CatalogEntry};
use bdi_fusion::{ClaimSet, Fuser, MajorityVote};
use bdi_linkage::blocking::{normalize_identifier, BlockingKey};
use bdi_linkage::incremental::{IncrementalLinker, InsertTimings, InsertTrace, LinkerState};
use bdi_linkage::matcher::IdentifierRule;
use bdi_linkage::parallel::default_threads;
use bdi_obs::{Histogram, Registry};
use bdi_types::{DataItem, EntityId, Record, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Dirty-root counts below this are re-fused sequentially: spawning
/// threads costs more than fusing a handful of clusters.
const REFRESH_PARALLEL_CUTOFF: usize = 8;

/// Long-lived integration state behind the serve ingest path.
pub struct Engine {
    linker: IncrementalLinker<IdentifierRule>,
    /// Linkage match threshold the linker was built with.
    threshold: f64,
    /// Cluster root → member arrival indices (ascending).
    members: HashMap<usize, Vec<usize>>,
    /// Roots whose membership changed since the last refresh.
    dirty: BTreeSet<usize>,
    /// Roots absorbed since the last refresh — permanently dead keys.
    dead: BTreeSet<usize>,
    /// The catalog as of the last refresh, shared with published
    /// generations — [`Engine::refresh`] hands out this `Arc`, so
    /// publication never copies the catalog.
    catalog: Arc<Catalog>,
    /// Worker threads for candidate scoring and dirty-cluster fusion.
    /// Purely a throughput knob: results are identical at any value.
    threads: usize,
    /// Stage-timing histograms, when the owner attached any. Purely
    /// observational: the clustering outcome is identical with or
    /// without them (the timed insert path is the untimed path).
    metrics: Option<EngineMetrics>,
}

/// Stage-timing histograms an [`Engine`] records into when attached via
/// [`Engine::set_metrics`]. All latencies in nanoseconds.
#[derive(Clone)]
pub struct EngineMetrics {
    /// Candidate generation per insert (fingerprint + blocking index).
    pub candidates_ns: Arc<Histogram>,
    /// Pair scoring per insert (the possibly parallel phase).
    pub scoring_ns: Arc<Histogram>,
    /// Union apply + registration per insert.
    pub union_ns: Arc<Histogram>,
    /// Whole [`Engine::ingest`] call (link + dirty bookkeeping).
    pub ingest_ns: Arc<Histogram>,
    /// Whole [`Engine::refresh`] call (dirty-cluster re-fusion +
    /// catalog delta).
    pub refresh_ns: Arc<Histogram>,
    /// Dirty clusters re-fused per refresh (a size, not a latency).
    pub refresh_dirty: Arc<Histogram>,
}

impl EngineMetrics {
    /// Resolve the engine's histograms in `registry` under the
    /// `serve.engine.*` names.
    pub fn register(registry: &Registry) -> Self {
        Self {
            candidates_ns: registry.histogram("serve.engine.candidates.latency_ns"),
            scoring_ns: registry.histogram("serve.engine.scoring.latency_ns"),
            union_ns: registry.histogram("serve.engine.union.latency_ns"),
            ingest_ns: registry.histogram("serve.engine.ingest.latency_ns"),
            refresh_ns: registry.histogram("serve.engine.refresh.latency_ns"),
            refresh_dirty: registry.histogram("serve.engine.refresh.dirty_clusters"),
        }
    }
}

/// The complete durable state of an [`Engine`], as written into serve-path
/// snapshots ([`crate::snapshot`]). Restoring through
/// [`Engine::from_state`] reproduces the engine *exactly* — same cluster
/// roots, same pending dirty/dead sets, same behaviour on every future
/// insert — so a recovered server is indistinguishable from one that
/// never went down.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineState {
    /// Linkage match threshold the state was produced under.
    pub threshold: f64,
    /// Ingested records in arrival order.
    pub records: Vec<Record>,
    /// Raw union-find parent pointers, one per record.
    pub parents: Vec<usize>,
    /// Raw union-find ranks, one per record.
    pub ranks: Vec<u8>,
    /// Pairwise comparisons performed so far (instrumentation).
    pub comparisons: u64,
    /// Cluster root → member arrival indices (ascending).
    pub members: BTreeMap<usize, Vec<usize>>,
    /// Roots dirtied since the last refresh.
    pub dirty: BTreeSet<usize>,
    /// Roots absorbed since the last refresh.
    pub dead: BTreeSet<usize>,
    /// The catalog as of the last refresh.
    pub catalog: Catalog,
}

impl Engine {
    /// Fresh engine with the product defaults (identifier + title
    /// blocking, identifier-rule matcher) at `threshold`, using every
    /// core the host reports for scoring and refresh fan-out.
    pub fn new(threshold: f64) -> Self {
        Self::with_threads(threshold, default_threads())
    }

    /// [`Engine::new`] with an explicit worker-thread count (1 =
    /// sequential). The clustering and every catalog generation are
    /// **bit-identical** at any thread count — scoring and fusion fan
    /// out, but unions and catalog deltas are applied in deterministic
    /// order. The equivalence tests pin this.
    pub fn with_threads(threshold: f64, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        Self {
            linker: IncrementalLinker::for_products(IdentifierRule::default(), threshold)
                .with_threads(threads),
            threshold,
            members: HashMap::new(),
            dirty: BTreeSet::new(),
            dead: BTreeSet::new(),
            catalog: Arc::new(Catalog::default()),
            threads,
            metrics: None,
        }
    }

    /// Attach stage-timing histograms. Subsequent [`Engine::ingest`] and
    /// [`Engine::refresh`] calls record their phase timings into them.
    pub fn set_metrics(&mut self, metrics: EngineMetrics) {
        self.metrics = Some(metrics);
    }

    /// The linkage match threshold this engine links at.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Export the engine's complete durable state (see [`EngineState`]).
    pub fn export_state(&self) -> EngineState {
        let LinkerState {
            records,
            parents,
            ranks,
            comparisons,
        } = self.linker.export_state();
        EngineState {
            threshold: self.threshold,
            records,
            parents,
            ranks,
            comparisons,
            members: self.members.iter().map(|(&r, m)| (r, m.clone())).collect(),
            dirty: self.dirty.clone(),
            dead: self.dead.clone(),
            catalog: (*self.catalog).clone(),
        }
    }

    /// Rebuild an engine from a previously exported [`EngineState`].
    /// The linker's blocking index is reconstructed by key extraction
    /// only (no pairwise matching), so the cost is linear in the record
    /// count. Returns `None` when the state is internally inconsistent.
    pub fn from_state(state: EngineState) -> Option<Self> {
        let threshold = state.threshold;
        if !(0.0..=1.0).contains(&threshold) {
            return None;
        }
        let n = state.records.len();
        if state.members.values().flatten().any(|&i| i >= n) {
            return None;
        }
        let threads = default_threads();
        let linker = IncrementalLinker::restore(
            IdentifierRule::default(),
            threshold,
            vec![BlockingKey::IdentifierDigits, BlockingKey::TitleTokens],
            LinkerState {
                records: state.records,
                parents: state.parents,
                ranks: state.ranks,
                comparisons: state.comparisons,
            },
        )?
        .with_threads(threads);
        Some(Self {
            linker,
            threshold,
            members: state.members.into_iter().collect(),
            dirty: state.dirty,
            dead: state.dead,
            catalog: Arc::new(state.catalog),
            threads,
            metrics: None,
        })
    }

    /// Ingest one record: link it, mark the touched clusters dirty.
    /// Returns the linker's trace (useful for instrumentation).
    pub fn ingest(&mut self, record: Record) -> InsertTrace {
        self.ingest_timed(record).0
    }

    /// [`Engine::ingest`], also returning the linker's stage timings —
    /// the request tracer turns them into `engine.candidates` /
    /// `engine.score` / `engine.fuse` child spans without re-measuring.
    pub fn ingest_timed(&mut self, record: Record) -> (InsertTrace, InsertTimings) {
        let t0 = std::time::Instant::now();
        let (trace, timings) = self.linker.insert_traced_timed(record);
        let mut absorbed_lists: Vec<Vec<usize>> = Vec::new();
        for &root in &trace.absorbed {
            if let Some(m) = self.members.remove(&root) {
                absorbed_lists.push(m);
            }
            self.dirty.remove(&root);
            self.dead.insert(root);
        }
        // member lists are kept ascending, so absorbed lists merge in
        // O(m) and the new arrival — the largest index by construction —
        // appends at the end: no per-insert re-sort of the home list
        let home = self.members.entry(trace.cluster).or_default();
        for m in absorbed_lists {
            merge_sorted(home, m);
        }
        debug_assert!(home.last().is_none_or(|&l| l < trace.index));
        home.push(trace.index);
        self.dirty.insert(trace.cluster);
        if let Some(m) = &self.metrics {
            m.candidates_ns.record(timings.candidates_ns);
            m.scoring_ns.record(timings.scoring_ns);
            m.union_ns.record(timings.union_ns);
            m.ingest_ns.record_duration(t0.elapsed());
        }
        (trace, timings)
    }

    /// Ingest a whole wire batch transactionally from the engine's point
    /// of view: one call, one pass over the records, and — crucially for
    /// the serve worker — one deferred publish afterwards instead of
    /// per-record publish traffic. Records apply in order through the
    /// exact per-record path [`Engine::ingest`] uses, so the end state is
    /// bit-identical to submitting the same records one by one (a serve
    /// integration test pins this, WAL replay and snapshot included).
    ///
    /// A record whose insert panics is skipped (the panic is caught, the
    /// engine keeps its pre-record state for that record) and counted in
    /// the returned `rejected`; the rest of the batch still applies —
    /// matching the per-record worker's catch-and-continue behaviour.
    /// Returns `(applied, rejected)`.
    pub fn ingest_batch(&mut self, records: Vec<Record>) -> (u64, u64) {
        let (mut applied, mut rejected) = (0u64, 0u64);
        for record in records {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.ingest(record);
            }));
            match outcome {
                Ok(()) => applied += 1,
                Err(_) => rejected += 1,
            }
        }
        (applied, rejected)
    }

    /// Records ingested so far.
    pub fn records(&self) -> usize {
        self.linker.len()
    }

    /// Live clusters (catalog entries after the next refresh).
    pub fn clusters(&self) -> usize {
        self.members.len()
    }

    /// Clusters currently awaiting re-fusion.
    pub fn dirty(&self) -> usize {
        self.dirty.len()
    }

    /// Total pairwise comparisons the linker has performed.
    pub fn comparisons(&self) -> u64 {
        self.linker.comparisons()
    }

    /// Candidates the linker skipped because their root was already
    /// merged with the arriving record (root-skip filter).
    pub fn pruned_root(&self) -> u64 {
        self.linker.pruned_root()
    }

    /// Candidates the linker skipped because the matcher's admissible
    /// score bound fell below the match threshold.
    pub fn pruned_bound(&self) -> u64 {
        self.linker.pruned_bound()
    }

    /// Posting-list entries the linker's hot-key cap skipped during
    /// candidate generation.
    pub fn postings_skipped(&self) -> u64 {
        self.linker.postings_skipped()
    }

    /// Re-fuse the dirty clusters and roll the catalog forward. Returns
    /// the new catalog behind an `Arc` that is *shared* with the
    /// engine's retained refresh base — publishing a generation is a
    /// pointer copy, not a catalog copy. A no-op refresh (nothing
    /// dirty) hands out the current catalog unchanged.
    ///
    /// Dirty clusters re-fuse in parallel across the engine's worker
    /// threads when there are enough of them; upserts are assembled in
    /// ascending root order either way, so the resulting catalog is
    /// identical at every thread count.
    pub fn refresh(&mut self) -> Arc<Catalog> {
        if self.dirty.is_empty() && self.dead.is_empty() {
            return Arc::clone(&self.catalog);
        }
        let t0 = std::time::Instant::now();
        let dirty_count = self.dirty.len() as u64;
        let upserts = self.build_entries();
        let next = Arc::new(self.catalog.apply_delta(&self.dead, upserts));
        self.catalog = Arc::clone(&next);
        self.dirty.clear();
        self.dead.clear();
        if let Some(m) = &self.metrics {
            m.refresh_dirty.record(dirty_count);
            m.refresh_ns.record_duration(t0.elapsed());
        }
        next
    }

    /// Catalog entries for every dirty root, in ascending root order.
    fn build_entries(&self) -> Vec<CatalogEntry> {
        let roots: Vec<usize> = self.dirty.iter().copied().collect();
        // clamp the fan-out to the host's parallelism: extra threads on
        // an undersized host only add spawn overhead, and the result is
        // identical at any count anyway
        let spawn_threads = self.threads.min(default_threads());
        if spawn_threads <= 1 || roots.len() < REFRESH_PARALLEL_CUTOFF {
            return roots.iter().map(|&r| self.build_entry(r)).collect();
        }
        let chunk_size = roots.len().div_ceil(spawn_threads);
        let mut results: Vec<Vec<CatalogEntry>> = Vec::with_capacity(spawn_threads);
        crossbeam::thread::scope(|scope| {
            let this = &*self;
            let handles: Vec<_> = roots
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        chunk
                            .iter()
                            .map(|&r| this.build_entry(r))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("refresh thread panicked"));
            }
        })
        .expect("thread scope failed");
        // chunks concatenate in order: still ascending root order
        results.into_iter().flatten().collect()
    }

    /// Materialize one cluster as a catalog entry: pages in arrival
    /// order, title from the earliest member, identifiers from members'
    /// primary identifiers (normalized), attributes by majority vote
    /// over canonical values.
    fn build_entry(&self, root: usize) -> CatalogEntry {
        let members = &self.members[&root];
        let records = self.linker.records();
        let first = &records[members[0]];

        let mut identifiers: Vec<String> = members
            .iter()
            .filter_map(|&i| records[i].primary_identifier())
            .map(normalize_identifier)
            .filter(|n| !n.is_empty())
            .collect();
        identifiers.sort_unstable();
        identifiers.dedup();

        let triples = members.iter().flat_map(|&i| {
            let r = &records[i];
            r.attributes
                .iter()
                .filter(|(_, v)| !v.is_null())
                .map(move |(name, v)| {
                    (
                        r.id.source,
                        DataItem::new(EntityId(root as u64), name.to_ascii_lowercase()),
                        v.canonical(),
                    )
                })
        });
        let resolution = MajorityVote.resolve(&ClaimSet::from_triples(triples));
        let attributes: std::collections::BTreeMap<String, Value> = resolution
            .decided
            .into_iter()
            .map(|(item, value)| (item.attribute, value))
            .collect();

        CatalogEntry {
            id: root,
            title: first.title.clone(),
            pages: members.iter().map(|&i| records[i].id).collect(),
            attributes,
            identifiers,
        }
    }
}

/// Merge ascending `src` into ascending `dst` (both duplicate-free and
/// disjoint — they are member lists of distinct union-find roots).
fn merge_sorted(dst: &mut Vec<usize>, src: Vec<usize>) {
    if src.is_empty() {
        return;
    }
    if dst.last().is_some_and(|&l| l < src[0]) {
        dst.extend(src);
        return;
    }
    let old = std::mem::replace(dst, Vec::with_capacity(dst.len() + src.len()));
    let (mut a, mut b) = (old.into_iter().peekable(), src.into_iter().peekable());
    loop {
        match (a.peek(), b.peek()) {
            (Some(&x), Some(&y)) => {
                if x < y {
                    dst.push(a.next().unwrap());
                } else {
                    dst.push(b.next().unwrap());
                }
            }
            (Some(_), None) => dst.push(a.next().unwrap()),
            (None, Some(_)) => dst.push(b.next().unwrap()),
            (None, None) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_types::{RecordId, SourceId};

    fn rec(s: u32, q: u32, title: &str, id: &str) -> Record {
        let mut r = Record::new(RecordId::new(SourceId(s), q), title);
        r.identifiers.push(id.into());
        r
    }

    #[test]
    fn ingest_then_refresh_builds_entries() {
        let mut e = Engine::new(0.9);
        e.ingest(rec(0, 0, "Lumetra LX-100 camera", "CAM-LUM-00100"));
        e.ingest(rec(1, 0, "Lumetra LX-100", "camlum00100"));
        e.ingest(rec(2, 0, "Visionex V-900 monitor", "MON-VIS-00900"));
        assert_eq!(e.records(), 3);
        assert_eq!(e.clusters(), 2);
        assert_eq!(e.dirty(), 2);
        let catalog = e.refresh();
        assert_eq!(e.dirty(), 0);
        assert_eq!(catalog.len(), 2);
        let cam = catalog.lookup("CAM-LUM-00100").expect("camera resolves");
        assert_eq!(cam.pages.len(), 2);
        assert!(cam.identifiers.contains(&"CAMLUM00100".to_string()));
    }

    #[test]
    fn refresh_is_incremental_across_batches() {
        let mut e = Engine::new(0.9);
        e.ingest(rec(0, 0, "Lumetra LX-100 camera", "CAM-LUM-00100"));
        let g1 = e.refresh();
        assert_eq!(g1.len(), 1);
        // second batch only dirties the new product's cluster
        e.ingest(rec(0, 1, "Visionex V-900 monitor", "MON-VIS-00900"));
        assert_eq!(e.dirty(), 1);
        let g2 = e.refresh();
        assert_eq!(g2.len(), 2);
        // previous generation is untouched (snapshot isolation upstream)
        assert_eq!(g1.len(), 1);
    }

    #[test]
    fn bridge_merges_entries_and_buries_dead_root() {
        let mut e = Engine::new(0.9);
        e.ingest(rec(0, 0, "Lumetra LX-100 camera", "CAM-LUM-00100"));
        e.ingest(rec(1, 0, "Orbix O-55 tripod", "TRI-ORB-00100"));
        let before = e.refresh();
        assert_eq!(before.len(), 2);
        let mut bridge = rec(2, 0, "Lumetra LX-100 camera", "CAM-LUM-00100");
        bridge.identifiers.push("TRI-ORB-00100".into());
        bridge.title.push_str(" with Orbix O-55 tripod");
        e.ingest(bridge);
        let after = e.refresh();
        if e.clusters() == 1 {
            assert_eq!(after.len(), 1);
            let merged = after
                .lookup("TRI-ORB-00100")
                .expect("absorbed identifier resolves");
            assert_eq!(merged.pages.len(), 3);
        }
        assert_eq!(before.len(), 2, "old generation still readable");
    }

    #[test]
    fn export_from_state_round_trips_exactly() {
        let mut original = Engine::new(0.9);
        for i in 0..10u32 {
            original.ingest(rec(
                i % 3,
                i / 3,
                &format!("Gadget{} model{}", i / 2, i / 2),
                &format!("XXX-YYY-{:05}", i / 2),
            ));
        }
        original.refresh();
        // leave some work pending so dirty state round-trips too
        original.ingest(rec(0, 99, "Gadget0 model0", "XXX-YYY-00000"));

        let json = serde_json::to_string(&original.export_state()).unwrap();
        let state: EngineState = serde_json::from_str(&json).unwrap();
        let mut restored = Engine::from_state(state).expect("state is consistent");
        assert_eq!(restored.records(), original.records());
        assert_eq!(restored.clusters(), original.clusters());
        assert_eq!(restored.dirty(), original.dirty());
        assert_eq!(restored.threshold(), original.threshold());

        // both engines evolve identically from here on
        for (s, q) in [(1u32, 50u32), (2, 50), (0, 51)] {
            let a = original.ingest(rec(s, q, "Gadget1 model1", "XXX-YYY-00001"));
            let b = restored.ingest(rec(s, q, "Gadget1 model1", "XXX-YYY-00001"));
            assert_eq!(a.cluster, b.cluster);
            assert_eq!(a.absorbed, b.absorbed);
        }
        let ca = original.refresh();
        let cb = restored.refresh();
        assert_eq!(ca.len(), cb.len());
        let ids_a: Vec<usize> = ca.entries().iter().map(|e| e.id).collect();
        let ids_b: Vec<usize> = cb.entries().iter().map(|e| e.id).collect();
        assert_eq!(ids_a, ids_b, "cluster ids survive the round trip");
    }

    #[test]
    fn from_state_rejects_inconsistency() {
        let mut e = Engine::new(0.9);
        e.ingest(rec(0, 0, "Lumetra LX-100 camera", "CAM-LUM-00100"));
        let mut s = e.export_state();
        s.members.insert(9, vec![42]);
        assert!(Engine::from_state(s).is_none(), "member index out of range");
        let mut s = e.export_state();
        s.threshold = 7.0;
        assert!(Engine::from_state(s).is_none(), "threshold out of range");
    }

    #[test]
    fn attributes_fused_by_majority() {
        let mut e = Engine::new(0.9);
        for (s, color) in [(0, "black"), (1, "black"), (2, "silver")] {
            let mut r = rec(s, 0, "Lumetra LX-100 camera", "CAM-LUM-00100");
            r.attributes.insert("Color".into(), Value::str(color));
            e.ingest(r);
        }
        let catalog = e.refresh();
        let entry = catalog.lookup("CAM-LUM-00100").unwrap();
        assert_eq!(
            entry.attributes.get("color"),
            Some(&Value::str("black").canonical())
        );
    }
}
