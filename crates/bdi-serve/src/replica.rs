//! The replica lane layer: everything between a routing decision and a
//! backend's TCP socket.
//!
//! The router used to own one lane per backend; with `--replicas R`
//! each shard owns R lanes, every routed record is mirrored onto all of
//! them, and reads fail over between them. This module holds the pieces
//! that are per-*backend* rather than per-shard:
//!
//! * [`LaneConn`] — a raw request/response-decoupled connection (writes
//!   can run ahead of reads for scatter and pipelining), plus the
//!   version/feature handshake ([`LaneConn::connect_checked`]) and
//!   bounded-retry connect ([`connect_with_retry`]) that front it.
//! * [`ReplicaLane`] — the bounded channel handlers route into and the
//!   `enqueued`/`settled` counters the flush barrier reconciles, one
//!   per (shard, replica).
//! * [`ShardState`] — a shard's replica set behind an `RwLock`, so node
//!   replacement can swap a lane and shard splits can append a shard
//!   without stopping the world.
//! * [`lane_worker`] — the thread that drains one lane into pipelined
//!   `ingest_batch` requests. Workers hold their lane [`Weak`]: when a
//!   replacement swaps the lane out of the shard's set, the worker
//!   observes the drop and exits instead of idling forever.
//!
//! Connect failures are retried with exponential backoff (transient —
//! a backend mid-restart); a *handshake* failure is permanent and never
//! retried; a *write* failure is never retried at all — the protocol
//! has no request ids, so the router cannot know whether the backend
//! applied the batch before dying, and resending would risk
//! double-apply. The lane is marked down instead and the replica is
//! rebuilt through `replace` (WAL shipping), which restores from an
//! exact position.

use crate::frame;
use crate::protocol::{Request, Response, PROTOCOL_VERSION};
use crate::router::RouterShared;
use crate::server::{FEATURE_BINARY, FEATURE_TRACE};
use bdi_obs::{ActiveSpan, Counter, TraceContext};
use bdi_types::Record;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::RwLock;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

fn invalid(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

/// One raw backend connection: unlike [`crate::Client`], requests and
/// responses are decoupled so callers can write to several backends
/// before reading from any (scatter) or run writes ahead of acks
/// (pipelining).
pub(crate) struct LaneConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// The peer advertised `binary-frames` in its `hello`: requests
    /// with a binary mapping ship as frames instead of JSON lines.
    binary: bool,
    /// The peer advertised `trace-context`: traced requests carry their
    /// context (frame trace extension / JSON `trace` envelope). Off,
    /// requests go out plain — old peers see byte-identical traffic.
    trace: bool,
    /// Reused binary encode buffer — one frame per batch, zero
    /// per-batch allocations once warm.
    wbuf: Vec<u8>,
    /// Reused binary receive buffer.
    rbuf: Vec<u8>,
    /// Reused JSON encode buffer (the non-binary twin of `wbuf`).
    line: String,
}

impl LaneConn {
    pub(crate) fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self {
            writer,
            reader,
            binary: false,
            trace: false,
            wbuf: Vec::new(),
            rbuf: Vec::new(),
            line: String::new(),
        })
    }

    /// Connect and run the `hello` handshake: the peer must speak
    /// exactly [`PROTOCOL_VERSION`] and advertise every feature in
    /// `required`. A mismatch is `InvalidData` — a *permanent* error
    /// that [`connect_with_retry`] will not retry, so a mixed-version
    /// fleet fails fast instead of flapping.
    pub(crate) fn connect_checked(addr: SocketAddr, required: &[&str]) -> std::io::Result<Self> {
        let mut conn = Self::connect(addr)?;
        conn.send(&Request::Hello)?;
        match conn.recv()? {
            Response::Hello { version, features } => {
                if version != PROTOCOL_VERSION {
                    return Err(invalid(format!(
                        "protocol mismatch: {addr} speaks v{version}, \
                         this router speaks v{PROTOCOL_VERSION}"
                    )));
                }
                if let Some(missing) = required
                    .iter()
                    .find(|need| !features.iter().any(|have| have == *need))
                {
                    return Err(invalid(format!(
                        "{addr} lacks required feature '{missing}'"
                    )));
                }
                // opportunistic, never required: a JSON-only peer just
                // keeps this lane on the JSON path (mixed-format fleet),
                // and a trace-blind peer gets plain requests
                conn.binary = features.iter().any(|f| f == FEATURE_BINARY);
                conn.trace = features.iter().any(|f| f == FEATURE_TRACE);
                Ok(conn)
            }
            // pre-v2 builds answer hello with an error response
            Response::Error { message } => Err(invalid(format!(
                "{addr} rejected hello (pre-v{PROTOCOL_VERSION} build?): {message}"
            ))),
            other => Err(invalid(format!("{addr} answered hello with {other:?}"))),
        }
    }

    pub(crate) fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    pub(crate) fn send(&mut self, request: &Request) -> std::io::Result<()> {
        if self.binary && frame::encode_request(&mut self.wbuf, request) {
            self.writer.write_all(&self.wbuf)?;
            return self.writer.flush();
        }
        // JSON path: serialize into the reused line buffer — no fresh
        // String per batch
        serde_json::to_string_into(request, &mut self.line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.line.push('\n');
        self.writer.write_all(self.line.as_bytes())?;
        self.writer.flush()
    }

    /// [`LaneConn::send`] carrying a trace context when the peer
    /// negotiated `trace-context` — as the binary frame extension, or
    /// the JSON `trace` envelope on the JSON path. Without the feature
    /// (or without a context) the request goes out plain, byte-for-byte
    /// what an untraced sender produces.
    pub(crate) fn send_traced(
        &mut self,
        request: &Request,
        ctx: Option<TraceContext>,
    ) -> std::io::Result<()> {
        let Some(ctx) = ctx.filter(|_| self.trace) else {
            return self.send(request);
        };
        if self.binary
            && frame::encode_request_traced(&mut self.wbuf, request, Some((ctx.trace, ctx.parent)))
        {
            self.writer.write_all(&self.wbuf)?;
            return self.writer.flush();
        }
        serde_json::to_string_into(request, &mut self.line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.line.insert_str(
            0,
            &format!(
                "{{\"traced\":{{\"id\":{},\"parent\":{}}},\"request\":",
                ctx.trace, ctx.parent
            ),
        );
        self.line.push('}');
        self.line.push('\n');
        self.writer.write_all(self.line.as_bytes())?;
        self.writer.flush()
    }

    pub(crate) fn recv(&mut self) -> std::io::Result<Response> {
        // replies are format-autodetected per message, exactly like the
        // server's receive side: a frame-magic first byte means binary
        let first = {
            let buf = self.reader.fill_buf()?;
            if buf.is_empty() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "backend closed connection",
                ));
            }
            buf[0]
        };
        if first == frame::FRAME_MAGIC {
            frame::read_frame(&mut self.reader, &mut self.rbuf)?;
            let (opcode, payload) = frame::open_frame(&self.rbuf)?;
            return frame::decode_response(opcode, payload);
        }
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "backend closed connection",
            ));
        }
        serde_json::from_str(&reply)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Read one response that must be an ingest ack.
    pub(crate) fn recv_ack(&mut self) -> std::io::Result<()> {
        match self.recv()? {
            Response::Ack { .. } => Ok(()),
            Response::Error { message } => {
                Err(invalid(format!("backend rejected batch: {message}")))
            }
            other => Err(invalid(format!(
                "unexpected response to ingest_batch: {other:?}"
            ))),
        }
    }
}

/// [`LaneConn::connect_checked`] behind bounded exponential backoff:
/// `retries` extra attempts at 10ms, 20ms, 40ms… before the error is
/// surfaced, each retry counted on `retry_counter`
/// (`route.backend.retries`). Only *transient* failures retry — a
/// handshake mismatch (`InvalidData`) is permanent and returns at once.
pub(crate) fn connect_with_retry(
    addr: SocketAddr,
    required: &[&str],
    retries: u32,
    retry_counter: &Counter,
) -> std::io::Result<LaneConn> {
    let mut attempt = 0u32;
    loop {
        match LaneConn::connect_checked(addr, required) {
            Ok(conn) => return Ok(conn),
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => return Err(e),
            Err(e) if attempt >= retries => return Err(e),
            Err(_) => {
                retry_counter.inc();
                std::thread::sleep(Duration::from_millis(10u64 << attempt.min(6)));
                attempt += 1;
            }
        }
    }
}

/// One queued record on a lane: the record plus, when the submitting
/// request was traced, its context and the tracer-clock enqueue time
/// (what the `lane.queue` span measures).
pub(crate) type LaneItem = (Record, Option<(TraceContext, u64)>);

/// One backend's ingest lane: the channel handlers route into plus the
/// counters the flush barrier reconciles.
pub(crate) struct ReplicaLane {
    /// Shard this lane serves (stable across replacement).
    pub(crate) shard: usize,
    /// Position in the shard's replica set (stable across replacement).
    pub(crate) replica: usize,
    pub(crate) addr: SocketAddr,
    pub(crate) tx: Sender<LaneItem>,
    /// Records handed to this lane (home copies and bridge replicas).
    pub(crate) enqueued: AtomicU64,
    /// Records acked by the backend — or discarded after its death, so
    /// `settled == enqueued` is always eventually true.
    pub(crate) settled: AtomicU64,
    /// Set on the first I/O error; cleared only by `replace`, which
    /// swaps in a whole new lane.
    pub(crate) down: AtomicBool,
}

impl ReplicaLane {
    pub(crate) fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    /// Records routed here that the backend has not yet acked.
    pub(crate) fn pending(&self) -> bool {
        self.settled.load(Ordering::SeqCst) < self.enqueued.load(Ordering::SeqCst)
    }
}

/// One shard's replica set. Behind an `RwLock` so `replace` can swap a
/// single lane while ingest keeps routing through the others.
pub(crate) struct ShardState {
    pub(crate) replicas: RwLock<Vec<Arc<ReplicaLane>>>,
}

impl ShardState {
    /// Replica addresses in replica order.
    pub(crate) fn addrs(&self) -> Vec<SocketAddr> {
        self.replicas.read().iter().map(|l| l.addr).collect()
    }
}

/// Create a lane for `(shard, replica)` at `addr` and start its worker
/// thread (registered on the shared worker list for join-at-shutdown).
/// The worker holds the lane only weakly: swapping the lane out of its
/// [`ShardState`] retires the worker.
pub(crate) fn spawn_lane(
    shard: usize,
    replica: usize,
    addr: SocketAddr,
    shared: &Arc<RouterShared>,
) -> Arc<ReplicaLane> {
    let (tx, rx) = bounded(shared.queue_capacity.max(1));
    let lane = Arc::new(ReplicaLane {
        shard,
        replica,
        addr,
        tx,
        enqueued: AtomicU64::new(0),
        settled: AtomicU64::new(0),
        down: AtomicBool::new(false),
    });
    let weak = Arc::downgrade(&lane);
    let worker_shared = Arc::clone(shared);
    let handle = std::thread::spawn(move || lane_worker(weak, worker_shared, rx));
    shared.lane_workers.lock().push(handle);
    lane
}

/// One backend's ingest worker: drain the lane channel into pipelined
/// `ingest_batch` requests. After an I/O error the worker marks the
/// lane down and keeps draining, settling (discarding) records so flush
/// barriers always terminate. Exits when the lane is retired (its
/// [`Weak`] no longer upgrades), the channel disconnects, or shutdown
/// finds it idle.
fn lane_worker(lane_ref: Weak<ReplicaLane>, shared: Arc<RouterShared>, rx: Receiver<LaneItem>) {
    let mut conn: Option<LaneConn> = None;
    // per in-flight ingest_batch, oldest first: its record count plus
    // the `lane.batch` span finished when its ack arrives
    let mut outstanding: VecDeque<(u64, Option<ActiveSpan>)> = VecDeque::new();
    loop {
        // upgrade per iteration: a replaced lane stops being held by its
        // shard, the upgrade fails, and this worker retires
        let Some(lane) = lane_ref.upgrade() else {
            break;
        };
        let first = match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(r) => Some(r),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        if lane.is_down() {
            // drain mode: settle everything so barriers terminate
            let mut settled = u64::from(first.is_some());
            while rx.try_recv().is_ok() {
                settled += 1;
            }
            if settled > 0 {
                lane.settled.fetch_add(settled, Ordering::SeqCst);
            }
            if shared.shutdown.load(Ordering::SeqCst) && rx.is_empty() {
                break;
            }
            continue;
        }
        let Some(first) = first else {
            if shared.shutdown.load(Ordering::SeqCst) && rx.is_empty() && outstanding.is_empty() {
                break;
            }
            continue;
        };
        // pack a batch; a traced item gets its queue wait recorded, and
        // the first traced context parents this batch's `lane.batch`
        // span (the send→ack round trip the backend's spans nest under)
        let tracer = &shared.tracer;
        let mut batch_ctx: Option<TraceContext> = None;
        let mut note = |item: LaneItem, records: &mut Vec<Record>| {
            let (record, trace) = item;
            if let Some((ctx, enqueued_ns)) = trace {
                tracer.record(ctx, "lane.queue", enqueued_ns, tracer.now_ns(), &[]);
                batch_ctx = batch_ctx.or(Some(ctx));
            }
            records.push(record);
        };
        let mut records = Vec::new();
        note(first, &mut records);
        while records.len() < shared.batch {
            match rx.try_recv() {
                Ok(item) => note(item, &mut records),
                Err(_) => break,
            }
        }
        let n = records.len() as u64;
        shared.metrics.backend_batch_records.record(n);
        let mut span = shared.tracer.begin(batch_ctx, "lane.batch");
        if let Some(s) = &mut span {
            s.attr("shard", lane.shard as u64);
            s.attr("replica", lane.replica as u64);
            s.attr("records", n);
        }
        let ctx = span.as_ref().map(|s| s.ctx());
        let sent = ensure_conn(&mut conn, &lane, &shared)
            .and_then(|c| c.send_traced(&Request::IngestBatch { records }, ctx));
        match sent {
            Ok(()) => outstanding.push_back((n, span)),
            Err(e) => {
                if let Some(s) = span {
                    shared.tracer.finish(s);
                }
                fail_lane(&shared, &lane, &mut outstanding, n, &e.to_string());
                conn = None;
                continue;
            }
        }
        // read acks once the pipeline is full, and always drain fully
        // when no more input is waiting — an idle lane owes no acks, so
        // the flush barrier sees settled == enqueued promptly
        while outstanding.len() >= shared.depth || (rx.is_empty() && !outstanding.is_empty()) {
            let acked = conn.as_mut().expect("sent over this conn").recv_ack();
            match acked {
                Ok(()) => {
                    let (n, span) = outstanding.pop_front().expect("one ack per batch");
                    if let Some(s) = span {
                        shared.tracer.finish(s);
                    }
                    lane.settled.fetch_add(n, Ordering::SeqCst);
                }
                Err(e) => {
                    fail_lane(&shared, &lane, &mut outstanding, 0, &e.to_string());
                    conn = None;
                    break;
                }
            }
        }
    }
    // disconnected or shutdown: collect acks still owed (skipped when
    // the lane itself is already retired — nobody reads its counters)
    if let (Some(c), Some(lane)) = (conn.as_mut(), lane_ref.upgrade()) {
        while !outstanding.is_empty() {
            match c.recv_ack() {
                Ok(()) => {
                    let (n, span) = outstanding.pop_front().expect("one ack per batch");
                    if let Some(s) = span {
                        shared.tracer.finish(s);
                    }
                    lane.settled.fetch_add(n, Ordering::SeqCst);
                }
                Err(e) => {
                    fail_lane(&shared, &lane, &mut outstanding, 0, &e.to_string());
                    break;
                }
            }
        }
    }
}

fn ensure_conn<'a>(
    conn: &'a mut Option<LaneConn>,
    lane: &ReplicaLane,
    shared: &RouterShared,
) -> std::io::Result<&'a mut LaneConn> {
    if conn.is_none() {
        *conn = Some(connect_with_retry(
            lane.addr,
            &["ingest_batch"],
            shared.retries,
            &shared.metrics.retries,
        )?);
    }
    Ok(conn.as_mut().expect("just connected"))
}

/// Mark a lane's backend down and settle everything it will never ack:
/// the batch that failed to send (`pending`) plus every batch in
/// flight. In-flight `lane.batch` spans are finished here — a trace
/// through a dying lane shows the batch ending at the failure, not a
/// span that never closes.
fn fail_lane(
    shared: &RouterShared,
    lane: &ReplicaLane,
    outstanding: &mut VecDeque<(u64, Option<ActiveSpan>)>,
    pending: u64,
    err: &str,
) {
    let mut lost: u64 = pending;
    for (n, span) in outstanding.drain(..) {
        lost += n;
        if let Some(s) = span {
            shared.tracer.finish(s);
        }
    }
    if lost > 0 {
        lane.settled.fetch_add(lost, Ordering::SeqCst);
    }
    shared.mark_down(lane, err);
}
