//! A small blocking client for the JSON-lines protocol — used by the
//! load driver, the integration tests, and the `bdi load` subcommand.

use crate::protocol::{MetricsBody, Request, Response, StatsBody};
use crate::snapshot::Snapshot;
use bdi_core::catalog::CatalogEntry;
use bdi_types::Record;
use std::io::{BufRead, BufReader, Error, ErrorKind, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a running [`crate::Server`].
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

fn bad(message: impl Into<String>) -> Error {
    Error::new(ErrorKind::InvalidData, message.into())
}

impl Client {
    /// Connect to a server address.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        // request/response round trips are one small line each way; Nagle
        // + delayed ACK would add ~40ms to every call
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { writer, reader })
    }

    /// Send one request, read one response.
    pub fn call(&mut self, request: &Request) -> std::io::Result<Response> {
        let line = serde_json::to_string(request).map_err(|e| bad(e.to_string()))?;
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(Error::new(
                ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        serde_json::from_str(&reply).map_err(|e| bad(format!("bad response: {e}")))
    }

    /// Resolve an identifier to its entry, if integrated.
    pub fn lookup(&mut self, identifier: &str) -> std::io::Result<Option<CatalogEntry>> {
        Ok(self.lookup_traced(identifier)?.1)
    }

    /// [`Client::lookup`] plus the generation the answer was read from.
    pub fn lookup_traced(
        &mut self,
        identifier: &str,
    ) -> std::io::Result<(u64, Option<CatalogEntry>)> {
        match self.call(&Request::Lookup {
            identifier: identifier.to_string(),
        })? {
            Response::Entry { generation, entry } => Ok((generation, entry)),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Products with `attribute` in `[min, max]`, at most `limit`.
    pub fn filter(
        &mut self,
        attribute: &str,
        min: Option<f64>,
        max: Option<f64>,
        limit: Option<usize>,
    ) -> std::io::Result<Vec<CatalogEntry>> {
        let request = Request::Filter {
            attribute: attribute.to_string(),
            min,
            max,
            limit,
        };
        match self.call(&request)? {
            Response::Entries { entries, .. } => Ok(entries),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Top-k products by a numeric attribute.
    pub fn top_k(&mut self, attribute: &str, k: usize) -> std::io::Result<Vec<CatalogEntry>> {
        match self.call(&Request::TopK {
            attribute: attribute.to_string(),
            k,
        })? {
            Response::Entries { entries, .. } => Ok(entries),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Submit a record; returns the server's submitted counter. Blocks
    /// while the ingest queue is full (backpressure).
    pub fn ingest(&mut self, record: Record) -> std::io::Result<u64> {
        match self.call(&Request::Ingest { record })? {
            Response::Ack { submitted } => Ok(submitted),
            Response::Error { message } => Err(bad(message)),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Submit a whole batch of records in one request/response round
    /// trip; returns the server's submitted counter after the last
    /// record. Per-record round trips and syscalls amortize across the
    /// batch — this is the call the router tier pipelines ingest over.
    pub fn ingest_batch(&mut self, records: Vec<Record>) -> std::io::Result<u64> {
        match self.call(&Request::IngestBatch { records })? {
            Response::Ack { submitted } => Ok(submitted),
            Response::Error { message } => Err(bad(message)),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Wait until everything submitted so far is queryable; returns
    /// `(generation, applied)`.
    pub fn flush(&mut self) -> std::io::Result<(u64, u64)> {
        match self.call(&Request::Flush)? {
            Response::Flushed {
                generation,
                applied,
            } => Ok((generation, applied)),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Service counters.
    pub fn stats(&mut self) -> std::io::Result<StatsBody> {
        match self.call(&Request::Stats)? {
            Response::Stats(body) => Ok(body),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// The full metrics registry: counters, gauges, latency histograms.
    pub fn metrics(&mut self) -> std::io::Result<MetricsBody> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(body) => Ok(body),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Ask the server to stop accepting connections.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Version/feature handshake: `(protocol_version, features)`. A
    /// pre-v2 peer answers `hello` with an error response, which is
    /// surfaced as an `InvalidData` error here.
    pub fn hello(&mut self) -> std::io::Result<(u32, Vec<String>)> {
        match self.call(&Request::Hello)? {
            Response::Hello { version, features } => Ok((version, features)),
            Response::Error { message } => Err(bad(format!("peer rejected hello: {message}"))),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Ship a backend's state from absolute position `from`:
    /// `(position, snapshot, tail)`. Backend-only (routers reject it).
    pub fn sync(&mut self, from: u64) -> std::io::Result<(u64, Option<Snapshot>, Vec<Record>)> {
        match self.call(&Request::Sync { from })? {
            Response::SyncState {
                position,
                snapshot,
                tail,
            } => Ok((position, snapshot, tail)),
            Response::Error { message } => Err(bad(message)),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Install shipped state onto a backend, replacing whatever it
    /// held; returns the installed record count. Backend-only.
    pub fn restore(
        &mut self,
        snapshot: Option<Snapshot>,
        tail: Vec<Record>,
        position: u64,
    ) -> std::io::Result<u64> {
        match self.call(&Request::Restore {
            snapshot,
            tail,
            position,
        })? {
            Response::Restored { records, .. } => Ok(records),
            Response::Error { message } => Err(bad(message)),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Split `shard`'s hash range onto new backends at `addrs` (one per
    /// replica); returns `(new_shard, moved_records)`. Router-only.
    pub fn split(&mut self, shard: usize, addrs: Vec<String>) -> std::io::Result<(usize, u64)> {
        match self.call(&Request::Split { shard, addrs })? {
            Response::SplitDone {
                new_shard, moved, ..
            } => Ok((new_shard, moved)),
            Response::Error { message } => Err(bad(message)),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Replace replica `replica` of `shard` with a fresh backend at
    /// `addr`, bootstrapped over the wire from a live peer; returns the
    /// record count the replacement was synced to. Router-only.
    pub fn replace(&mut self, shard: usize, replica: usize, addr: String) -> std::io::Result<u64> {
        match self.call(&Request::Replace {
            shard,
            replica,
            addr,
        })? {
            Response::Replaced { synced, .. } => Ok(synced),
            Response::Error { message } => Err(bad(message)),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }
}
