//! Small blocking clients for both wire surfaces: [`Client`] for the
//! JSON-lines protocol and [`HttpClient`] for the HTTP/1.1 gateway —
//! used by the load driver, the integration tests, and the `bdi load`
//! subcommand.

use crate::frame;
use crate::protocol::{MetricsBody, Request, Response, StatsBody, TraceBody, TraceTree};
use crate::server::{FEATURE_BINARY, FEATURE_TRACE};
use crate::snapshot::Snapshot;
use bdi_core::catalog::CatalogEntry;
use bdi_obs::TraceContext;
use bdi_types::Record;
use std::io::{BufRead, BufReader, Error, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a running [`crate::Server`].
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Binary frames negotiated via [`Client::negotiate_binary`];
    /// requests with a binary mapping ship as frames, everything else
    /// stays on JSON lines.
    binary: bool,
    /// Server advertises the `trace-context` feature (learned on the
    /// same `hello` as `binary`): [`Client::call_traced`] may attach
    /// trace context to requests.
    trace: bool,
    /// Reused binary encode buffer.
    wbuf: Vec<u8>,
    /// Reused binary receive buffer.
    rbuf: Vec<u8>,
}

fn bad(message: impl Into<String>) -> Error {
    Error::new(ErrorKind::InvalidData, message.into())
}

impl Client {
    /// Connect to a server address.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        // request/response round trips are one small line each way; Nagle
        // + delayed ACK would add ~40ms to every call
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self {
            writer,
            reader,
            binary: false,
            trace: false,
            wbuf: Vec::new(),
            rbuf: Vec::new(),
        })
    }

    /// Run a `hello` round trip and switch this connection to binary
    /// frames if the server advertises the `binary-frames` feature.
    /// Returns whether the upgrade happened. Safe against old or
    /// JSON-only servers — they simply don't list the feature and the
    /// connection stays on JSON lines.
    pub fn negotiate_binary(&mut self) -> std::io::Result<bool> {
        let (_, features) = self.hello()?;
        self.binary = features.iter().any(|f| f == FEATURE_BINARY);
        self.trace = features.iter().any(|f| f == FEATURE_TRACE);
        Ok(self.binary)
    }

    /// Whether [`Client::negotiate_binary`] switched this connection to
    /// the binary wire path.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Whether the last `hello` (via [`Client::negotiate_binary`] or
    /// [`Client::negotiate_trace`]) advertised the `trace-context`
    /// feature, i.e. whether [`Client::call_traced`] will actually
    /// attach context.
    pub fn supports_trace(&self) -> bool {
        self.trace
    }

    /// Run a `hello` round trip and record whether the server
    /// advertises `trace-context`, *without* switching the connection
    /// to binary frames (unlike [`Client::negotiate_binary`], which
    /// learns both).
    pub fn negotiate_trace(&mut self) -> std::io::Result<bool> {
        let (_, features) = self.hello()?;
        self.trace = features.iter().any(|f| f == FEATURE_TRACE);
        Ok(self.trace)
    }

    /// Bound every future read on this connection, so a wedged or
    /// overloaded server surfaces as a [`ErrorKind::WouldBlock`] /
    /// [`ErrorKind::TimedOut`] error instead of hanging the caller.
    /// `None` removes the bound.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one request, read one response. After
    /// [`Client::negotiate_binary`], requests with a binary mapping
    /// (ingest_batch, flush, sync, restore) go as frames; everything
    /// else stays on JSON lines — the server autodetects per message.
    pub fn call(&mut self, request: &Request) -> std::io::Result<Response> {
        if self.binary && frame::encode_request(&mut self.wbuf, request) {
            self.writer.write_all(&self.wbuf)?;
            self.writer.flush()?;
            return self.recv();
        }
        let line = serde_json::to_string(request).map_err(|e| bad(e.to_string()))?;
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.recv()
    }

    /// [`Client::call`] carrying trace context, so the server joins its
    /// spans onto the caller's trace. Requires a prior
    /// [`Client::negotiate_binary`] whose `hello` advertised
    /// `trace-context` — against an older peer the context is silently
    /// dropped and this degrades to a plain [`Client::call`].
    pub fn call_traced(
        &mut self,
        request: &Request,
        ctx: TraceContext,
    ) -> std::io::Result<Response> {
        if !self.trace || ctx.trace == 0 {
            return self.call(request);
        }
        if self.binary
            && frame::encode_request_traced(&mut self.wbuf, request, Some((ctx.trace, ctx.parent)))
        {
            self.writer.write_all(&self.wbuf)?;
            self.writer.flush()?;
            return self.recv();
        }
        let line = serde_json::to_string(request).map_err(|e| bad(e.to_string()))?;
        writeln!(
            self.writer,
            "{{\"traced\":{{\"id\":{},\"parent\":{}}},\"request\":{line}}}",
            ctx.trace, ctx.parent
        )?;
        self.writer.flush()?;
        self.recv()
    }

    /// Read one response, autodetecting its format from the first byte.
    fn recv(&mut self) -> std::io::Result<Response> {
        let first = {
            let buf = self.reader.fill_buf()?;
            if buf.is_empty() {
                return Err(Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed connection",
                ));
            }
            buf[0]
        };
        if first == frame::FRAME_MAGIC {
            frame::read_frame(&mut self.reader, &mut self.rbuf)?;
            let (opcode, payload) = frame::open_frame(&self.rbuf)?;
            return frame::decode_response(opcode, payload);
        }
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(Error::new(
                ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        serde_json::from_str(&reply).map_err(|e| bad(format!("bad response: {e}")))
    }

    /// Resolve an identifier to its entry, if integrated.
    pub fn lookup(&mut self, identifier: &str) -> std::io::Result<Option<CatalogEntry>> {
        Ok(self.lookup_traced(identifier)?.1)
    }

    /// [`Client::lookup`] plus the generation the answer was read from.
    pub fn lookup_traced(
        &mut self,
        identifier: &str,
    ) -> std::io::Result<(u64, Option<CatalogEntry>)> {
        match self.call(&Request::Lookup {
            identifier: identifier.to_string(),
        })? {
            Response::Entry { generation, entry } => Ok((generation, entry)),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Products with `attribute` in `[min, max]`, at most `limit`.
    pub fn filter(
        &mut self,
        attribute: &str,
        min: Option<f64>,
        max: Option<f64>,
        limit: Option<usize>,
    ) -> std::io::Result<Vec<CatalogEntry>> {
        let request = Request::Filter {
            attribute: attribute.to_string(),
            min,
            max,
            limit,
        };
        match self.call(&request)? {
            Response::Entries { entries, .. } => Ok(entries),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Top-k products by a numeric attribute.
    pub fn top_k(&mut self, attribute: &str, k: usize) -> std::io::Result<Vec<CatalogEntry>> {
        match self.call(&Request::TopK {
            attribute: attribute.to_string(),
            k,
        })? {
            Response::Entries { entries, .. } => Ok(entries),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Submit a record; returns the server's submitted counter. Blocks
    /// while the ingest queue is full (backpressure).
    pub fn ingest(&mut self, record: Record) -> std::io::Result<u64> {
        match self.call(&Request::Ingest { record })? {
            Response::Ack { submitted } => Ok(submitted),
            Response::Error { message } => Err(bad(message)),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Submit a whole batch of records in one request/response round
    /// trip; returns the server's submitted counter after the last
    /// record. Per-record round trips and syscalls amortize across the
    /// batch — this is the call the router tier pipelines ingest over.
    pub fn ingest_batch(&mut self, records: Vec<Record>) -> std::io::Result<u64> {
        match self.call(&Request::IngestBatch { records })? {
            Response::Ack { submitted } => Ok(submitted),
            Response::Error { message } => Err(bad(message)),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Wait until everything submitted so far is queryable; returns
    /// `(generation, applied)`.
    pub fn flush(&mut self) -> std::io::Result<(u64, u64)> {
        match self.call(&Request::Flush)? {
            Response::Flushed {
                generation,
                applied,
            } => Ok((generation, applied)),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Service counters.
    pub fn stats(&mut self) -> std::io::Result<StatsBody> {
        match self.call(&Request::Stats)? {
            Response::Stats(body) => Ok(body),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// The full metrics registry: counters, gauges, latency histograms.
    pub fn metrics(&mut self) -> std::io::Result<MetricsBody> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(body) => Ok(body),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Every span of trace `id` still in the peer's flight recorder
    /// (a router merges in its backends' spans). Empty when the trace
    /// aged out or never existed.
    pub fn trace(&mut self, id: u64) -> std::io::Result<TraceBody> {
        match self.call(&Request::Trace {
            id: Some(id),
            recent: None,
        })? {
            Response::Trace(body) => Ok(body),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// The peer's most recently retained trace ids, newest first.
    pub fn trace_recent(&mut self, n: usize) -> std::io::Result<Vec<u64>> {
        match self.call(&Request::Trace {
            id: None,
            recent: Some(n),
        })? {
            Response::Trace(body) => Ok(body.recent),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Ask the server to stop accepting connections.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Version/feature handshake: `(protocol_version, features)`. A
    /// pre-v2 peer answers `hello` with an error response, which is
    /// surfaced as an `InvalidData` error here.
    pub fn hello(&mut self) -> std::io::Result<(u32, Vec<String>)> {
        match self.call(&Request::Hello)? {
            Response::Hello { version, features } => Ok((version, features)),
            Response::Error { message } => Err(bad(format!("peer rejected hello: {message}"))),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Ship a backend's state from absolute position `from`:
    /// `(position, snapshot, tail)`. Backend-only (routers reject it).
    pub fn sync(&mut self, from: u64) -> std::io::Result<(u64, Option<Snapshot>, Vec<Record>)> {
        match self.call(&Request::Sync { from })? {
            Response::SyncState {
                position,
                snapshot,
                tail,
            } => Ok((position, snapshot, tail)),
            Response::Error { message } => Err(bad(message)),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Install shipped state onto a backend, replacing whatever it
    /// held; returns the installed record count. Backend-only.
    pub fn restore(
        &mut self,
        snapshot: Option<Snapshot>,
        tail: Vec<Record>,
        position: u64,
    ) -> std::io::Result<u64> {
        match self.call(&Request::Restore {
            snapshot,
            tail,
            position,
        })? {
            Response::Restored { records, .. } => Ok(records),
            Response::Error { message } => Err(bad(message)),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Split `shard`'s hash range onto new backends at `addrs` (one per
    /// replica); returns `(new_shard, moved_records)`. Router-only.
    pub fn split(&mut self, shard: usize, addrs: Vec<String>) -> std::io::Result<(usize, u64)> {
        match self.call(&Request::Split { shard, addrs })? {
            Response::SplitDone {
                new_shard, moved, ..
            } => Ok((new_shard, moved)),
            Response::Error { message } => Err(bad(message)),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// Replace replica `replica` of `shard` with a fresh backend at
    /// `addr`, bootstrapped over the wire from a live peer; returns the
    /// record count the replacement was synced to. Router-only.
    pub fn replace(&mut self, shard: usize, replica: usize, addr: String) -> std::io::Result<u64> {
        match self.call(&Request::Replace {
            shard,
            replica,
            addr,
        })? {
            Response::Replaced { synced, .. } => Ok(synced),
            Response::Error { message } => Err(bad(message)),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }
}

/// One keep-alive connection to the HTTP/1.1 gateway — the same server
/// and port as [`Client`] (the front-end sniffs the protocol). Just
/// enough HTTP for the load driver, the integration tests, and the CI
/// smoke: `Content-Length` framing, no chunking, no redirects.
///
/// Success bodies are the wire response objects (see
/// `docs/HTTP_API.md`), so the typed helpers parse them with the same
/// serde types the JSON-lines client uses.
pub struct HttpClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// The server announced `Connection: close` on the last response;
    /// further calls would read from a dead socket.
    closed: bool,
    /// `X-Bdi-Trace` value to send with every request until cleared
    /// (see [`HttpClient::set_trace_header`]).
    trace_header: Option<String>,
    /// Trace id from the last response's `X-Bdi-Trace` header, if any.
    last_trace: Option<u64>,
}

impl HttpClient {
    /// Connect to a server (or router) address.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self {
            writer,
            reader,
            closed: false,
            trace_header: None,
            last_trace: None,
        })
    }

    /// Send `X-Bdi-Trace: value` with every subsequent request (`None`
    /// stops). `<16-hex-trace-id>[-<16-hex-parent-span>]` forces the
    /// gateway to trace the dispatch under that context.
    pub fn set_trace_header(&mut self, value: Option<String>) {
        self.trace_header = value;
    }

    /// Trace id announced by the last response's `X-Bdi-Trace` header
    /// (set when the gateway traced that request), if any.
    pub fn last_trace(&self) -> Option<u64> {
        self.last_trace
    }

    /// `GET /trace/:id`: the assembled span tree of one trace.
    pub fn trace(&mut self, id: u64) -> std::io::Result<TraceTree> {
        let (status, body) = self.get(&format!("/trace/{id:016x}"))?;
        if status != 200 {
            return Err(bad(format!(
                "HTTP {status} from /trace/{id:016x}: {}",
                String::from_utf8_lossy(&body)
            )));
        }
        serde_json::from_slice(&body).map_err(|e| bad(format!("bad trace body: {e}")))
    }

    /// Bound every future read on this connection (`None` removes the
    /// bound); see [`Client::set_read_timeout`].
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// `GET path` → `(status, body)`. The connection stays usable
    /// across calls (keep-alive) until the server closes it.
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, Vec<u8>)> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body → `(status, body)`.
    pub fn post(&mut self, path: &str, body: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
        self.request("POST", path, Some(body))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<(u16, Vec<u8>)> {
        if self.closed {
            return Err(Error::new(
                ErrorKind::NotConnected,
                "server closed this connection; reconnect",
            ));
        }
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: bdi\r\n");
        if let Some(trace) = &self.trace_header {
            head.push_str(&format!("X-Bdi-Trace: {trace}\r\n"));
        }
        if let Some(b) = body {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                b.len()
            ));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        if let Some(b) = body {
            self.writer.write_all(b)?;
        }
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<(u16, Vec<u8>)> {
        self.last_trace = None;
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(Error::new(
                ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad(format!("bad status line: {status_line:?}")))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(Error::new(ErrorKind::UnexpectedEof, "truncated head"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .parse()
                        .map_err(|_| bad(format!("bad content-length: {value:?}")))?;
                } else if name.eq_ignore_ascii_case("connection")
                    && value.eq_ignore_ascii_case("close")
                {
                    self.closed = true;
                } else if name.eq_ignore_ascii_case("x-bdi-trace") {
                    self.last_trace = u64::from_str_radix(value, 16).ok().filter(|&t| t != 0);
                }
            }
        }
        if status == 100 {
            // interim: the real response follows
            return self.read_response();
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok((status, body))
    }

    /// Parse a body as the wire response object; statuses ≥ 400 carry
    /// the error shape and surface as errors here.
    fn wire(&mut self, status: u16, body: &[u8]) -> std::io::Result<Response> {
        let response: Response =
            serde_json::from_slice(body).map_err(|e| bad(format!("bad response body: {e}")))?;
        match response {
            Response::Error { message } => Err(bad(format!("HTTP {status}: {message}"))),
            other => Ok(other),
        }
    }

    /// `GET /lookup/:id` (percent-encoded); 404 is `Ok(None)`.
    pub fn lookup(&mut self, identifier: &str) -> std::io::Result<Option<CatalogEntry>> {
        let path = format!("/lookup/{}", crate::http::percent_encode(identifier));
        let (status, body) = self.get(&path)?;
        if status == 404 {
            return Ok(None);
        }
        match self.wire(status, &body)? {
            Response::Entry { entry, .. } => Ok(entry),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// `POST /ingest` with one record; returns the submitted counter.
    pub fn ingest(&mut self, record: &Record) -> std::io::Result<u64> {
        let body = serde_json::to_string(record).map_err(|e| bad(e.to_string()))?;
        let (status, body) = self.post("/ingest", body.as_bytes())?;
        match self.wire(status, &body)? {
            Response::Ack { submitted } => Ok(submitted),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// `POST /ingest` with an array body (the batch form).
    pub fn ingest_batch(&mut self, records: &[Record]) -> std::io::Result<u64> {
        let body = serde_json::to_string(records).map_err(|e| bad(e.to_string()))?;
        let (status, body) = self.post("/ingest", body.as_bytes())?;
        match self.wire(status, &body)? {
            Response::Ack { submitted } => Ok(submitted),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// `POST /flush` → `(generation, applied)`.
    pub fn flush(&mut self) -> std::io::Result<(u64, u64)> {
        let (status, body) = self.post("/flush", b"")?;
        match self.wire(status, &body)? {
            Response::Flushed {
                generation,
                applied,
            } => Ok((generation, applied)),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// `GET /stats`.
    pub fn stats(&mut self) -> std::io::Result<StatsBody> {
        let (status, body) = self.get("/stats")?;
        match self.wire(status, &body)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// `GET /top_k?attribute=&k=`.
    pub fn top_k(&mut self, attribute: &str, k: usize) -> std::io::Result<Vec<CatalogEntry>> {
        let path = format!(
            "/top_k?attribute={}&k={k}",
            crate::http::percent_encode(attribute)
        );
        let (status, body) = self.get(&path)?;
        match self.wire(status, &body)? {
            Response::Entries { entries, .. } => Ok(entries),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }

    /// `GET /metrics`: the Prometheus text exposition.
    pub fn metrics_text(&mut self) -> std::io::Result<String> {
        let (status, body) = self.get("/metrics")?;
        if status != 200 {
            return Err(bad(format!("HTTP {status} from /metrics")));
        }
        String::from_utf8(body).map_err(|e| bad(e.to_string()))
    }

    /// `POST /shutdown`; the server answers, then closes.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        let (status, body) = self.post("/shutdown", b"")?;
        match self.wire(status, &body)? {
            Response::Bye => Ok(()),
            other => Err(bad(format!("unexpected response: {other:?}"))),
        }
    }
}
