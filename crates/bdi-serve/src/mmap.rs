//! Raw `mmap` via syscalls — the WAL's counterpart to `nio::sys`.
//!
//! The vendored-deps policy rules out `memmap2` and `libc`, but the std
//! runtime already links the platform C library, so the four symbols a
//! memory-mapped append log needs (`mmap` / `munmap` / `msync` /
//! `ftruncate`, plus `getpagesize` for `msync`'s alignment contract)
//! are declared here directly. Everything above this module is safe
//! Rust: the WAL sees a [`MmapFile`] that owns one fixed-size,
//! read-write, shared mapping of a preallocated segment file, with
//! bounds-checked writes and page-aligned range syncs.
//!
//! Mappings never grow — a segment's capacity is fixed at creation
//! (`ftruncate` up front), which keeps the shim remap-free and the
//! aliasing story trivial: one mapping, one owner, no views.
#![allow(unsafe_code)]

#[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
compile_error!(
    "the mmap-backed WAL speaks raw mmap/msync and only builds on 64-bit \
     Linux (the extern symbols below would not even link elsewhere, and \
     their i64 offset/length parameters assume off_t is 64-bit — on \
     32-bit Linux without _FILE_OFFSET_BITS=64 they would mismatch the \
     C ABI)"
);

use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::io::AsRawFd;
use std::path::Path;

const PROT_READ: i32 = 0x1;
const PROT_WRITE: i32 = 0x2;
const MAP_SHARED: i32 = 0x01;
const MS_SYNC: i32 = 0x4;

extern "C" {
    fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
    fn munmap(addr: *mut u8, len: usize) -> i32;
    fn msync(addr: *mut u8, len: usize, flags: i32) -> i32;
    fn ftruncate(fd: i32, length: i64) -> i32;
    fn getpagesize() -> i32;
}

/// One read-write shared mapping of a preallocated file. Writes go
/// through [`MmapFile::write_at`] (a bounds-checked `memcpy`); a
/// [`MmapFile::sync_range`] is a durability barrier for the touched
/// pages (`msync(MS_SYNC)` — the mmap analogue of `fdatasync`).
pub(crate) struct MmapFile {
    ptr: *mut u8,
    len: usize,
    file: File,
}

// SAFETY: the mapping has exactly one owner — `MmapFile` is created,
// moved into the ingest worker, and dropped there; no other alias of
// `ptr` exists anywhere (the struct hands out no raw pointers and no
// long-lived borrows), so moving the owner across threads is sound.
unsafe impl Send for MmapFile {}

impl MmapFile {
    /// Create (or truncate) `path` at exactly `capacity` bytes —
    /// preallocated so appends never change file size — and map it
    /// read-write shared. A fresh segment reads as all zeroes, which
    /// the WAL's frame scan relies on to find the append tail.
    pub(crate) fn create(path: &Path, capacity: usize) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        // SAFETY: plain syscall on an owned fd; the kernel validates.
        let rc = unsafe { ftruncate(file.as_raw_fd(), capacity as i64) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Self::map(file, capacity)
    }

    /// Map an existing segment file read-write shared at its current
    /// size.
    pub(crate) fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len() as usize;
        Self::map(file, len)
    }

    fn map(file: File, len: usize) -> io::Result<Self> {
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map an empty segment",
            ));
        }
        // SAFETY: we request a fresh mapping (addr = null) of `len`
        // bytes backed by an fd we own; MAP_FAILED is checked below.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { ptr, len, file })
    }

    /// Mapped (== file) size in bytes.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The whole mapping as a byte slice.
    pub(crate) fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr maps exactly `len` valid bytes for the lifetime
        // of `self`, and `&self` prevents concurrent `write_at`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Copy `bytes` into the mapping at `offset`. Panics if the write
    /// would run past the mapping — segment roll-over is the caller's
    /// job and a miss here is a WAL accounting bug, not an I/O error.
    pub(crate) fn write_at(&mut self, offset: usize, bytes: &[u8]) {
        assert!(
            offset + bytes.len() <= self.len,
            "segment write past capacity: {} + {} > {}",
            offset,
            bytes.len(),
            self.len
        );
        // SAFETY: range checked above; `&mut self` makes this the only
        // access to the mapping.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), self.ptr.add(offset), bytes.len());
        }
    }

    /// Zero `[offset, offset + len)` — used to erase a torn tail so a
    /// later scan cannot resurrect garbage past the truncation point.
    pub(crate) fn zero_range(&mut self, offset: usize, len: usize) {
        assert!(offset + len <= self.len, "zero range past capacity");
        // SAFETY: range checked above; exclusive access via `&mut`.
        unsafe {
            std::ptr::write_bytes(self.ptr.add(offset), 0, len);
        }
    }

    /// Durably flush `[offset, offset + len)` to the backing file
    /// (`msync(MS_SYNC)`, widened to page boundaries as the syscall
    /// requires).
    pub(crate) fn sync_range(&self, offset: usize, len: usize) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        assert!(offset + len <= self.len, "sync range past capacity");
        // SAFETY: no pointers involved.
        let page = unsafe { getpagesize() } as usize;
        let start = offset - offset % page;
        let end = (offset + len).div_ceil(page) * page;
        let end = end.min(self.len);
        // SAFETY: `[start, end)` lies within the mapping and start is
        // page-aligned, as msync demands.
        let rc = unsafe { msync(self.ptr.add(start), end - start, MS_SYNC) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Flush file metadata (size, allocation) — called once after
    /// creating a segment so the preallocation itself is durable.
    pub(crate) fn sync_file(&self) -> io::Result<()> {
        self.file.sync_all()
    }
}

impl Drop for MmapFile {
    fn drop(&mut self) {
        // SAFETY: ptr/len describe the one mapping this instance owns;
        // unmapped exactly once.
        unsafe { munmap(self.ptr, self.len) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bdi-mmap-{tag}-{}",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_survive_remap() {
        let dir = tmp_dir("rw");
        let path = dir.join("seg");
        {
            let mut m = MmapFile::create(&path, 4096).unwrap();
            assert_eq!(m.len(), 4096);
            assert!(m.as_slice().iter().all(|&b| b == 0), "fresh file is zeroes");
            m.write_at(10, b"hello");
            m.sync_range(10, 5).unwrap();
            m.sync_file().unwrap();
        }
        let m = MmapFile::open(&path).unwrap();
        assert_eq!(&m.as_slice()[10..15], b"hello");
        assert_eq!(m.as_slice()[15], 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_range_erases() {
        let dir = tmp_dir("zero");
        let path = dir.join("seg");
        let mut m = MmapFile::create(&path, 4096).unwrap();
        m.write_at(0, b"abcdef");
        m.zero_range(2, 3);
        assert_eq!(&m.as_slice()[..6], b"ab\0\0\0f");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "past capacity")]
    fn out_of_bounds_write_panics() {
        let dir = tmp_dir("oob");
        let path = dir.join("seg");
        let mut m = MmapFile::create(&path, 64).unwrap();
        m.write_at(60, b"too long");
    }
}
