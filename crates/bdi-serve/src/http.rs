//! The HTTP/1.1 adapter: the same dispatch layer the JSON-lines
//! protocol runs on, reachable by `curl`, load balancers, and ordinary
//! HTTP tooling.
//!
//! The mapping is deliberately thin: every success body **is** the
//! JSON-lines response object for the equivalent wire command
//! (externally tagged, e.g. `{"entry": {...}}`), and every error body
//! is the wire protocol's error shape `{"error": {"message": ...}}` —
//! one set of schemas to document, one serde type to parse with. The
//! only exception is `GET /metrics`, which renders the Prometheus text
//! exposition instead of JSON so scrapers can consume it directly.
//!
//! Status codes are derived from the response, not bolted on:
//!
//! * `200` — any success response;
//! * `400` — unparseable body/query, or a dispatch error beginning with
//!   `bad request` / naming a role mismatch (`router-only` /
//!   `backend-only`);
//! * `404` — `GET /lookup/:id` where the identifier resolves to no
//!   entry, or an unknown path;
//! * `405` — known path, wrong method;
//! * `503` — the service cannot take the request *right now*
//!   (`shutting down`, `ingest queue closed`, a dead shard) — retry
//!   against a healthy node;
//! * `500` — anything else (handler panic, internal invariant).
//!
//! Malformed requests are **answered**, not dropped: the connection
//! stays usable (keep-alive) except where the framing itself is gone
//! (oversized or unparseable head), where the response carries
//! `Connection: close`.
//!
//! `HEAD` is answered like the corresponding `GET` — same status,
//! `Content-Type`, and `Content-Length` — with no body bytes on the
//! wire, as HTTP/1.1 requires.
//!
//! Endpoints (full reference with `curl` examples: `docs/HTTP_API.md`):
//!
//! | endpoint | wire command |
//! |---|---|
//! | `GET /lookup/:id` | `lookup` |
//! | `GET /filter?attribute=&min=&max=&limit=` | `filter` |
//! | `GET /top_k?attribute=&k=` | `top_k` |
//! | `POST /ingest` (object or array body) | `ingest` / `ingest_batch` |
//! | `POST /flush` | `flush` |
//! | `GET /stats` | `stats` |
//! | `GET /metrics` | `metrics` (Prometheus text) |
//! | `GET /trace/:id`, `GET /trace/recent?n=` | `trace` |
//! | `POST /shutdown` | `shutdown` |
//! | `GET /` | endpoint index (no wire equivalent) |
//!
//! **Request tracing.** The gateway is the trace entry hop: when the
//! service's sampling policy picks a request (or the client sends an
//! `X-Bdi-Trace: <16-hex-trace-id>[-<16-hex-parent-span>]` header), the
//! whole dispatch runs under an `http.request` root span and the
//! response carries `X-Bdi-Trace: <trace-id>` so the caller can fetch
//! the assembled tree from `GET /trace/:id`.

use crate::protocol::{Request, Response, TraceTree};
use bdi_obs::{Counter, Histogram, Registry, TraceContext, Tracer};
use bdi_types::Record;
use std::sync::Arc;
use std::time::Instant;

/// One decoded HTTP request, ready for dispatch. Produced by the
/// readiness loop's incremental decoder ([`crate::nio`]); body framing
/// is `Content-Length` only (chunked uploads are answered with `400`).
pub(crate) struct HttpRequest {
    pub method: String,
    /// Path without the query string, percent-decoded per segment at
    /// routing time (identifiers may contain spaces).
    pub path: String,
    /// Raw query string (no leading `?`).
    pub query: String,
    pub body: Vec<u8>,
    /// Client asked for `Connection: close` (or is HTTP/1.0 without
    /// `keep-alive`): answer, then close.
    pub close: bool,
    /// Raw `X-Bdi-Trace` header value, when the client sent one.
    pub trace: Option<String>,
}

/// One encoded-ready HTTP response.
pub(crate) struct HttpResponse {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Close the connection after writing (protocol-fatal request, an
    /// explicit `Connection: close`, or `shutdown`).
    pub close: bool,
    /// Answering a `HEAD` request: advertise `Content-Length` as if the
    /// body were sent, but put no body bytes on the wire — a keep-alive
    /// client that got the body would read it as the start of the next
    /// response and desync.
    pub head: bool,
    /// Trace id to advertise in an `X-Bdi-Trace` response header (set
    /// when the request ran under a trace).
    pub trace: Option<u64>,
}

const JSON: &str = "application/json";
/// The Prometheus text exposition content type.
const PROMETHEUS: &str = "text/plain; version=0.0.4";

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize a response: status line, `Content-Type`, `Content-Length`
/// (the only body framing we emit), `Connection: close` when the
/// connection is ending.
pub(crate) fn encode(resp: &HttpResponse) -> Vec<u8> {
    let mut out = Vec::with_capacity(resp.body.len() + 128);
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            resp.status,
            reason(resp.status),
            resp.content_type,
            resp.body.len()
        )
        .as_bytes(),
    );
    if let Some(trace) = resp.trace {
        out.extend_from_slice(format!("X-Bdi-Trace: {trace:016x}\r\n").as_bytes());
    }
    if resp.close {
        out.extend_from_slice(b"Connection: close\r\n");
    }
    out.extend_from_slice(b"\r\n");
    if !resp.head {
        out.extend_from_slice(&resp.body);
    }
    out
}

/// The wire error shape, as an HTTP body.
fn error_body(message: &str) -> Vec<u8> {
    serde_json::to_string(&Response::Error {
        message: message.to_string(),
    })
    .expect("error responses serialize")
    .into_bytes()
}

fn error_response(status: u16, message: &str) -> HttpResponse {
    HttpResponse {
        status,
        content_type: JSON,
        body: error_body(message),
        close: false,
        head: false,
        trace: None,
    }
}

/// A protocol-fatal error: answered, then the connection closes.
pub(crate) fn fatal(status: u16, message: &str) -> HttpResponse {
    HttpResponse {
        close: true,
        ..error_response(status, message)
    }
}

/// Map a dispatch-level [`Response::Error`] message onto an HTTP
/// status. The JSON-lines protocol carries no status codes, so the
/// contract is the message prefix — pinned by tests here and by the
/// error table in `docs/PROTOCOL.md`.
fn error_status(message: &str) -> u16 {
    if message.starts_with("bad request")
        || message.starts_with("router-only")
        || message.starts_with("backend-only")
    {
        400
    } else if message.starts_with("shutting down")
        || message.starts_with("ingest queue closed")
        || message.contains("is down")
        || message.contains("replicas failed")
        || message.contains("backend(s) down")
    {
        503
    } else {
        500
    }
}

/// Endpoint labels for the `<prefix>.http.<endpoint>.latency_ns`
/// histogram family, in [`endpoint_slot`] order.
pub(crate) const HTTP_ENDPOINTS: [&str; 10] = [
    "lookup", "filter", "top_k", "ingest", "flush", "stats", "metrics", "trace", "shutdown",
    "other",
];

fn endpoint_slot(endpoint: &str) -> usize {
    HTTP_ENDPOINTS
        .iter()
        .position(|&e| e == endpoint)
        .unwrap_or(HTTP_ENDPOINTS.len() - 1)
}

/// Per-service HTTP metric handles, resolved once at startup: request
/// and error counters plus one latency histogram per endpoint, under
/// `<prefix>.http.*` (`serve.http.*` on a backend, `route.http.*` on a
/// router).
pub(crate) struct HttpMetrics {
    requests: Counter,
    errors: Counter,
    latency_ns: [Arc<Histogram>; HTTP_ENDPOINTS.len()],
}

impl HttpMetrics {
    pub(crate) fn register(registry: &Registry, prefix: &str) -> Self {
        Self {
            requests: registry.counter(&format!("{prefix}.http.requests")),
            errors: registry.counter(&format!("{prefix}.http.errors")),
            latency_ns: HTTP_ENDPOINTS
                .map(|e| registry.histogram(&format!("{prefix}.http.{e}.latency_ns"))),
        }
    }
}

/// Decode `%XX` escapes (and nothing else — `+` stays `+`; the wire
/// identifiers this serves are not form-encoded).
pub(crate) fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                let h = std::str::from_utf8(h).ok()?;
                u8::from_str_radix(h, 16).ok()
            });
            if let Some(b) = hex {
                out.push(b);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encode a path segment: everything but unreserved characters.
pub(crate) fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// First value of `key` in a query string, percent-decoded.
fn query_param(query: &str, key: &str) -> Option<String> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (k == key).then(|| percent_decode(v))
    })
}

fn num_param(query: &str, key: &str) -> Result<Option<f64>, String> {
    match query_param(query, key) {
        None => Ok(None),
        Some(v) if v.is_empty() => Ok(None),
        Some(v) => v
            .parse::<f64>()
            .map(Some)
            .map_err(|_| format!("bad request: query parameter '{key}' is not a number")),
    }
}

/// A success response: status 200, body = the wire response object.
fn ok(response: &Response) -> HttpResponse {
    HttpResponse {
        status: 200,
        content_type: JSON,
        body: serde_json::to_string(response)
            .expect("responses serialize")
            .into_bytes(),
        close: false,
        head: false,
        trace: None,
    }
}

/// Dispatch-backed responses flow through here so every adapter (server
/// and router) maps errors to statuses identically.
fn from_dispatch(response: Response) -> HttpResponse {
    match &response {
        Response::Error { message } => error_response(error_status(message), message),
        Response::Bye => HttpResponse {
            close: true,
            ..ok(&response)
        },
        _ => ok(&response),
    }
}

/// Parse an inbound `X-Bdi-Trace` header:
/// `<16-hex-trace-id>[-<16-hex-parent-span-id>]`.
pub(crate) fn parse_trace_header(value: &str) -> Option<TraceContext> {
    let value = value.trim();
    let (t, p) = match value.split_once('-') {
        Some((t, p)) => (t, Some(p)),
        None => (value, None),
    };
    let trace = u64::from_str_radix(t, 16).ok().filter(|&t| t != 0)?;
    let parent = match p {
        Some(p) => u64::from_str_radix(p, 16).ok()?,
        None => bdi_obs::trace::NO_PARENT,
    };
    Some(TraceContext { trace, parent })
}

/// Route one HTTP request through `dispatch` (the same function the
/// JSON-lines protocol calls) and record `<prefix>.http.*` metrics.
///
/// The gateway is the trace entry hop: an inbound `X-Bdi-Trace` header
/// always traces (the caller already decided); otherwise `tracer`'s
/// sampling policy decides. Traced requests run under an
/// `http.request` root span — with a synthetic `queue.wait` child when
/// the front-end queued the request for `queued_ns` before a worker
/// picked it up — and the dispatch closure receives the child context
/// to propagate.
pub(crate) fn respond(
    req: &HttpRequest,
    metrics: &HttpMetrics,
    tracer: &Tracer,
    queued_ns: u64,
    dispatch: impl FnOnce(Request, Option<TraceContext>) -> Response,
) -> HttpResponse {
    let t0 = Instant::now();
    let root = match req.trace.as_deref().and_then(parse_trace_header) {
        Some(ctx) => Some(tracer.adopt(ctx, "http.request")),
        None => tracer.root("http.request").map(|r| r.span),
    };
    let trace_id = root.as_ref().map(|s| s.trace_id());
    if let Some(span) = &root {
        if queued_ns > 0 {
            // the wait precedes the root span: it ends where the span
            // starts
            let start = span.start_ns().saturating_sub(queued_ns);
            tracer.record(span.ctx(), "queue.wait", start, span.start_ns(), &[]);
        }
    }
    let mut scope = bdi_obs::TraceScope::wrap(tracer, root);
    let ctx = scope.ctx();
    // HEAD is GET with the body suppressed on the wire: same status,
    // Content-Type, and Content-Length, zero body bytes. Routing the
    // GET twin keeps HEAD read-only (GET /shutdown is a 405, so a HEAD
    // can never trigger a POST side effect).
    let head_only = req.method == "HEAD";
    let (endpoint, mut resp) = if head_only {
        let twin = HttpRequest {
            method: "GET".to_string(),
            path: req.path.clone(),
            query: req.query.clone(),
            body: Vec::new(),
            close: req.close,
            trace: None,
        };
        route(&twin, |r| dispatch(r, ctx))
    } else {
        route(req, |r| dispatch(r, ctx))
    };
    scope.set_cmd(endpoint);
    drop(scope);
    resp.head = head_only;
    resp.trace = trace_id;
    metrics.requests.inc();
    metrics.latency_ns[endpoint_slot(endpoint)].record_duration(t0.elapsed());
    if resp.status >= 400 {
        metrics.errors.inc();
    }
    if req.close {
        resp.close = true;
    }
    resp
}

/// The endpoint table: translate a request into a wire [`Request`],
/// dispatch it, and shape the reply. Returns the endpoint label for
/// metrics alongside the response.
fn route(
    req: &HttpRequest,
    dispatch: impl FnOnce(Request) -> Response,
) -> (&'static str, HttpResponse) {
    let method = req.method.as_str();
    let mut segments = req.path.trim_start_matches('/').splitn(2, '/');
    let head = segments.next().unwrap_or("");
    let rest = segments.next();
    match (method, head, rest) {
        ("GET", "", None) => ("other", index()),
        ("GET", "lookup", Some(id)) if !id.is_empty() => {
            let identifier = percent_decode(id);
            let response = dispatch(Request::Lookup {
                identifier: identifier.clone(),
            });
            let resp = match &response {
                Response::Entry { entry: None, .. } => {
                    error_response(404, &format!("identifier '{identifier}' is not integrated"))
                }
                _ => from_dispatch(response),
            };
            ("lookup", resp)
        }
        ("GET", "lookup", _) => (
            "lookup",
            error_response(400, "bad request: GET /lookup/:id needs an identifier"),
        ),
        ("GET", "filter", None) => {
            let Some(attribute) = query_param(&req.query, "attribute") else {
                return (
                    "filter",
                    error_response(400, "bad request: filter needs ?attribute="),
                );
            };
            let (min, max) = match (num_param(&req.query, "min"), num_param(&req.query, "max")) {
                (Ok(min), Ok(max)) => (min, max),
                (Err(e), _) | (_, Err(e)) => return ("filter", error_response(400, &e)),
            };
            let limit = query_param(&req.query, "limit").and_then(|v| v.parse::<usize>().ok());
            let response = dispatch(Request::Filter {
                attribute,
                min,
                max,
                limit,
            });
            ("filter", from_dispatch(response))
        }
        ("GET", "top_k", None) => {
            let Some(attribute) = query_param(&req.query, "attribute") else {
                return (
                    "top_k",
                    error_response(400, "bad request: top_k needs ?attribute="),
                );
            };
            let k = match query_param(&req.query, "k") {
                None => 10,
                Some(v) => match v.parse::<usize>() {
                    Ok(k) => k,
                    Err(_) => {
                        return (
                            "top_k",
                            error_response(400, "bad request: query parameter 'k' is not a number"),
                        );
                    }
                },
            };
            let response = dispatch(Request::TopK { attribute, k });
            ("top_k", from_dispatch(response))
        }
        ("POST", "ingest", None) => {
            // an array body is a batch, an object body is one record —
            // the same split as `ingest` vs `ingest_batch` on the wire
            let first = req.body.iter().find(|b| !b.is_ascii_whitespace());
            let request = match first {
                Some(b'[') => match serde_json::from_slice::<Vec<Record>>(&req.body) {
                    Ok(records) => Request::IngestBatch { records },
                    Err(e) => {
                        return ("ingest", error_response(400, &format!("bad request: {e}")));
                    }
                },
                _ => match serde_json::from_slice::<Record>(&req.body) {
                    Ok(record) => Request::Ingest { record },
                    Err(e) => {
                        return ("ingest", error_response(400, &format!("bad request: {e}")));
                    }
                },
            };
            ("ingest", from_dispatch(dispatch(request)))
        }
        ("POST", "flush", None) => ("flush", from_dispatch(dispatch(Request::Flush))),
        ("GET", "stats", None) => ("stats", from_dispatch(dispatch(Request::Stats))),
        ("GET", "metrics", None) => {
            let resp = match dispatch(Request::Metrics) {
                Response::Metrics(body) => match body.to_snapshot() {
                    Some(snap) => HttpResponse {
                        status: 200,
                        content_type: PROMETHEUS,
                        body: snap.to_prometheus().into_bytes(),
                        close: false,
                        head: false,
                        trace: None,
                    },
                    None => error_response(500, "internal error: malformed metrics body"),
                },
                other => from_dispatch(other),
            };
            ("metrics", resp)
        }
        ("GET", "trace", Some("recent")) => {
            let n = query_param(&req.query, "n")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(16);
            let response = dispatch(Request::Trace {
                id: None,
                recent: Some(n),
            });
            ("trace", from_dispatch(response))
        }
        ("GET", "trace", Some(id)) if !id.is_empty() => {
            let Some(trace_id) = u64::from_str_radix(id, 16).ok().filter(|&t| t != 0) else {
                return (
                    "trace",
                    error_response(400, "bad request: trace id is 1-16 hex digits"),
                );
            };
            let response = dispatch(Request::Trace {
                id: Some(trace_id),
                recent: None,
            });
            let resp = match response {
                Response::Trace(body) if body.spans.is_empty() => error_response(
                    404,
                    &format!("trace {trace_id:016x} is not in the flight recorder"),
                ),
                Response::Trace(body) => {
                    let tree = TraceTree::from_spans(trace_id, body.spans);
                    HttpResponse {
                        status: 200,
                        content_type: JSON,
                        body: serde_json::to_string(&tree)
                            .expect("trace trees serialize")
                            .into_bytes(),
                        close: false,
                        head: false,
                        trace: None,
                    }
                }
                other => from_dispatch(other),
            };
            ("trace", resp)
        }
        ("GET", "trace", _) => (
            "trace",
            error_response(400, "bad request: GET /trace/:id or GET /trace/recent?n="),
        ),
        ("POST", "shutdown", None) => ("shutdown", from_dispatch(dispatch(Request::Shutdown))),
        // known paths with the wrong method answer 405, not 404, so a
        // curl typo (`GET /ingest`) explains itself
        (_, "lookup" | "filter" | "top_k" | "stats" | "metrics" | "trace", _) => (
            "other",
            error_response(405, &format!("method {method} not allowed: use GET")),
        ),
        (_, "ingest" | "flush" | "shutdown", None) => (
            "other",
            error_response(405, &format!("method {method} not allowed: use POST")),
        ),
        _ => (
            "other",
            error_response(
                404,
                &format!("no such endpoint: {method} /{head}; see GET / for the endpoint index",),
            ),
        ),
    }
}

/// `GET /`: a discoverability index (endpoint → wire command).
fn index() -> HttpResponse {
    let body = concat!(
        "{\"endpoints\":{",
        "\"GET /lookup/:id\":\"lookup\",",
        "\"GET /filter?attribute=&min=&max=&limit=\":\"filter\",",
        "\"GET /top_k?attribute=&k=\":\"top_k\",",
        "\"POST /ingest\":\"ingest | ingest_batch\",",
        "\"POST /flush\":\"flush\",",
        "\"GET /stats\":\"stats\",",
        "\"GET /metrics\":\"metrics (prometheus text)\",",
        "\"GET /trace/:id\":\"trace\",",
        "\"GET /trace/recent?n=\":\"trace\",",
        "\"POST /shutdown\":\"shutdown\"",
        "}}"
    );
    HttpResponse {
        status: 200,
        content_type: JSON,
        body: body.as_bytes().to_vec(),
        close: false,
        head: false,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str, query: &str) -> HttpRequest {
        HttpRequest {
            method: "GET".into(),
            path: path.into(),
            query: query.into(),
            body: Vec::new(),
            close: false,
            trace: None,
        }
    }

    #[test]
    fn error_statuses_are_pinned() {
        // the contract between dispatch error messages and HTTP codes
        assert_eq!(error_status("bad request: expected value"), 400);
        assert_eq!(
            error_status("router-only command: issue it against `bdi route`, not a backend"),
            400
        );
        assert_eq!(
            error_status(
                "backend-only command: issue it against a `bdi serve` backend, not the router"
            ),
            400
        );
        assert_eq!(error_status("shutting down"), 503);
        assert_eq!(error_status("ingest queue closed"), 503);
        assert_eq!(error_status("shard 1 (127.0.0.1:9) is down"), 503);
        assert_eq!(
            error_status("shard 0: all replicas failed; last: shard 0 replica 1: refused"),
            503
        );
        assert_eq!(error_status("backend(s) down: shard 1 (127.0.0.1:9)"), 503);
        assert_eq!(
            error_status("internal error: request handler panicked"),
            500
        );
    }

    #[test]
    fn unknown_id_is_404_with_error_body() {
        let req = get("/lookup/NO-SUCH-00000", "");
        let (endpoint, resp) = route(&req, |_| Response::Entry {
            generation: 7,
            entry: None,
        });
        assert_eq!(endpoint, "lookup");
        assert_eq!(resp.status, 404);
        assert!(!resp.close, "connection survives a miss");
        let body: Response = serde_json::from_slice(&resp.body).unwrap();
        let Response::Error { message } = body else {
            panic!("404 body is the wire error shape");
        };
        assert!(message.contains("NO-SUCH-00000"));
    }

    #[test]
    fn flush_barrier_unavailability_is_503() {
        let req = HttpRequest {
            method: "POST".into(),
            path: "/flush".into(),
            query: String::new(),
            body: Vec::new(),
            close: false,
            trace: None,
        };
        let (_, resp) = route(&req, |_| Response::Error {
            message: "backend(s) down: shard 1 (127.0.0.1:9)".into(),
        });
        assert_eq!(resp.status, 503);
        assert!(!resp.close, "503 answers, it does not hang up");
    }

    #[test]
    fn malformed_ingest_body_is_400_and_keeps_the_connection() {
        let req = HttpRequest {
            method: "POST".into(),
            path: "/ingest".into(),
            query: String::new(),
            body: b"{not json".to_vec(),
            close: false,
            trace: None,
        };
        let (_, resp) = route(&req, |_| unreachable!("never dispatched"));
        assert_eq!(resp.status, 400);
        assert!(!resp.close);
        let body: Response = serde_json::from_slice(&resp.body).unwrap();
        assert!(matches!(body, Response::Error { .. }));
    }

    #[test]
    fn wrong_method_is_405_unknown_path_is_404() {
        let (_, resp) = route(&get("/ingest", ""), |_| unreachable!());
        assert_eq!(resp.status, 405);
        let (_, resp) = route(&get("/nope", ""), |_| unreachable!());
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn lookup_path_is_percent_decoded() {
        let req = get("/lookup/cam%20lum%2000100", "");
        let (_, resp) = route(&req, |r| {
            let Request::Lookup { identifier } = r else {
                panic!("lookup dispatched");
            };
            assert_eq!(identifier, "cam lum 00100");
            Response::Entry {
                generation: 1,
                entry: None,
            }
        });
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn percent_coding_round_trips() {
        for s in ["plain", "cam lum 00100", "a/b?c&d=e", "100%"] {
            assert_eq!(percent_decode(&percent_encode(s)), s);
        }
        assert_eq!(percent_decode("%zz"), "%zz", "bad escapes pass through");
    }

    #[test]
    fn encode_frames_with_content_length() {
        let text = encode(&HttpResponse {
            status: 200,
            content_type: JSON,
            body: b"{\"ok\":1}".to_vec(),
            close: false,
            head: false,
            trace: None,
        });
        let text = String::from_utf8(text).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 8\r\n"));
        assert!(!text.contains("Connection: close"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":1}"));
    }

    #[test]
    fn head_advertises_length_but_sends_no_body() {
        let metrics = HttpMetrics::register(&Registry::new(), "test");
        let req = HttpRequest {
            method: "HEAD".into(),
            path: "/stats".into(),
            query: String::new(),
            body: Vec::new(),
            close: false,
            trace: None,
        };
        let resp = respond(&req, &metrics, &Tracer::new(), 0, |_, _| Response::Entry {
            generation: 1,
            entry: None,
        });
        assert_eq!(resp.status, 200);
        assert!(resp.head);
        assert!(!resp.body.is_empty(), "length still reflects the GET body");
        let text = String::from_utf8(encode(&resp)).unwrap();
        assert!(
            text.contains(&format!("Content-Length: {}\r\n", resp.body.len())),
            "got: {text}"
        );
        assert!(text.ends_with("\r\n\r\n"), "no body bytes after the head");
    }

    #[test]
    fn head_shutdown_is_405_not_a_side_effect() {
        let metrics = HttpMetrics::register(&Registry::new(), "test");
        let req = HttpRequest {
            method: "HEAD".into(),
            path: "/shutdown".into(),
            query: String::new(),
            body: Vec::new(),
            close: false,
            trace: None,
        };
        let resp = respond(&req, &metrics, &Tracer::new(), 0, |_, _| {
            unreachable!("never dispatched")
        });
        assert_eq!(resp.status, 405);
        assert!(resp.head);
    }
}
