//! The wire protocol: JSON lines over TCP.
//!
//! One request object per line in, one response object per line out.
//! Requests use externally tagged JSON (unit variants are bare strings),
//! so a session from `nc` looks like:
//!
//! ```json
//! {"lookup": {"identifier": "CAM-LUM-01042"}}
//! {"top_k": {"attribute": "price", "k": 3}}
//! "stats"
//! ```

use crate::snapshot::Snapshot;
use bdi_core::catalog::CatalogEntry;
use bdi_obs::{HistogramSnapshot, RegistrySnapshot};
use bdi_types::Record;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The protocol generation this build speaks. Bumped to 2 with the
/// fleet commands (`hello`, `sync`, `restore`, `split`, `replace`);
/// `hello` lets a router verify the peer's version and feature set up
/// front instead of discovering a mismatch as an unknown-command error
/// mid-stream.
pub const PROTOCOL_VERSION: u32 = 2;

/// A client request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Request {
    /// Resolve one product identifier (any published formatting).
    #[serde(rename = "lookup")]
    Lookup { identifier: String },
    /// Products whose fused numeric value for `attribute` lies in
    /// `[min, max]` (either bound optional); at most `limit` results.
    #[serde(rename = "filter")]
    Filter {
        attribute: String,
        min: Option<f64>,
        max: Option<f64>,
        limit: Option<usize>,
    },
    /// Top-k products by a numeric attribute, descending.
    #[serde(rename = "top_k")]
    TopK { attribute: String, k: usize },
    /// Submit one record to the ingest queue (blocks under backpressure).
    #[serde(rename = "ingest")]
    Ingest { record: Record },
    /// Submit many records in one length-framed request: the whole batch
    /// is enqueued in order and answered with a single `ack`, so
    /// per-record round trips and syscalls amortize across the batch.
    /// This is the command the router tier pipelines ingest over.
    #[serde(rename = "ingest_batch")]
    IngestBatch { records: Vec<Record> },
    /// Block until everything submitted so far is queryable.
    #[serde(rename = "flush")]
    Flush,
    /// Service counters.
    #[serde(rename = "stats")]
    Stats,
    /// The full metrics registry: counters, gauges, latency histograms.
    #[serde(rename = "metrics")]
    Metrics,
    /// Stop accepting connections and drain.
    #[serde(rename = "shutdown")]
    Shutdown,
    /// Version / feature handshake: answered with [`Response::Hello`]
    /// by every build that speaks protocol version ≥ 2; older builds
    /// answer with an `error`, which a caller must treat as a mismatch.
    #[serde(rename = "hello")]
    Hello,
    /// Stream this backend's state from absolute position `from`
    /// onward: a snapshot + WAL-tail pair sufficient to rebuild a peer
    /// (answered with [`Response::SyncState`]). Backend-only — the WAL
    /// shipping half of node replacement and shard splits.
    #[serde(rename = "sync")]
    Sync { from: u64 },
    /// Install shipped state: replace this backend's engine with
    /// `snapshot` (or a fresh engine when `None`), replay `tail` on
    /// top, and adopt `position` as the applied record count. Backend-
    /// only; answered with [`Response::Restored`].
    #[serde(rename = "restore")]
    Restore {
        snapshot: Option<Snapshot>,
        tail: Vec<Record>,
        position: u64,
    },
    /// Split `shard`'s hash range onto new backends at `addrs` (one per
    /// replica), moving half of its keyspace with no dropped or
    /// double-applied records. Router-only; answered with
    /// [`Response::SplitDone`].
    #[serde(rename = "split")]
    Split { shard: usize, addrs: Vec<String> },
    /// Replace replica `replica` of `shard` with a fresh backend at
    /// `addr`, bootstrapped from a live peer via `sync`. Router-only;
    /// answered with [`Response::Replaced`].
    #[serde(rename = "replace")]
    Replace {
        shard: usize,
        replica: usize,
        addr: String,
    },
    /// Read the flight recorder: with `id`, every span of that trace
    /// still in the ring (a router merges its own spans with the
    /// fleet's); with `id` absent, the most recently retained trace ids
    /// (at most `recent`, default 16). Answered with
    /// [`Response::Trace`].
    #[serde(rename = "trace")]
    Trace {
        id: Option<u64>,
        recent: Option<usize>,
    },
}

impl Request {
    /// The command's wire name — the label per-command metrics are
    /// recorded under (`serve.request.<kind>.latency_ns`).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Lookup { .. } => "lookup",
            Request::Filter { .. } => "filter",
            Request::TopK { .. } => "top_k",
            Request::Ingest { .. } => "ingest",
            Request::IngestBatch { .. } => "ingest_batch",
            Request::Flush => "flush",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
            Request::Hello => "hello",
            Request::Sync { .. } => "sync",
            Request::Restore { .. } => "restore",
            Request::Split { .. } => "split",
            Request::Replace { .. } => "replace",
            Request::Trace { .. } => "trace",
        }
    }
}

/// The optional trace envelope a JSON-lines request can arrive in:
/// `{"traced": {"id": …, "parent": …}, "request": <request>}`. A bare
/// request line stays exactly as before — the envelope is detected by
/// its leading `{"traced"` key (see the front ends), so untraced
/// traffic pays nothing. The key is `traced`, not `trace`, because
/// `{"trace": …}` is already the serialized [`Request::Trace`]
/// command. Senders only use the envelope once the peer's `hello`
/// advertised the `trace-context` feature.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TracedRequest {
    /// The trace context the server's spans should parent under.
    #[serde(rename = "traced")]
    pub trace: TraceWire,
    /// The wrapped request.
    pub request: Request,
}

/// Wire shape of a trace context: the trace id plus the caller's span
/// id (`0` = the server's request span becomes a root).
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct TraceWire {
    /// Trace id (nonzero for a live trace).
    pub id: u64,
    /// Parent span id, 0 for none.
    pub parent: u64,
}

impl TraceWire {
    /// Convert to the `bdi-obs` context type.
    pub fn ctx(self) -> bdi_obs::TraceContext {
        bdi_obs::TraceContext {
            trace: self.id,
            parent: self.parent,
        }
    }

    /// Build from a `bdi-obs` context.
    pub fn from_ctx(ctx: bdi_obs::TraceContext) -> Self {
        TraceWire {
            id: ctx.trace,
            parent: ctx.parent,
        }
    }
}

/// A server response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Response {
    /// Lookup result (with the generation it was read from).
    #[serde(rename = "entry")]
    Entry {
        generation: u64,
        entry: Option<CatalogEntry>,
    },
    /// Filter / top-k results.
    #[serde(rename = "entries")]
    Entries {
        generation: u64,
        entries: Vec<CatalogEntry>,
    },
    /// Ingest accepted into the queue.
    #[serde(rename = "ack")]
    Ack { submitted: u64 },
    /// Flush completed: all `applied` records are queryable.
    #[serde(rename = "flushed")]
    Flushed { generation: u64, applied: u64 },
    /// Service counters.
    #[serde(rename = "stats")]
    Stats(StatsBody),
    /// The full metrics registry.
    #[serde(rename = "metrics")]
    Metrics(MetricsBody),
    /// Request failed.
    #[serde(rename = "error")]
    Error { message: String },
    /// Shutdown acknowledged.
    #[serde(rename = "bye")]
    Bye,
    /// Handshake reply: the peer's protocol version and the wire
    /// features it supports (e.g. `ingest_batch`, `sync`).
    #[serde(rename = "hello")]
    Hello { version: u32, features: Vec<String> },
    /// Shipped state: everything needed to rebuild this backend from
    /// `position` — a full snapshot when the requested `from` predates
    /// the WAL (or the backend is in-memory), else just the WAL tail.
    #[serde(rename = "sync_state")]
    SyncState {
        /// Applied record count the shipped state reaches.
        position: u64,
        /// Full engine snapshot (`None` for a tail-only delta).
        snapshot: Option<Snapshot>,
        /// Records past the snapshot (or past `from`), in apply order.
        tail: Vec<Record>,
    },
    /// Restore installed and published.
    #[serde(rename = "restored")]
    Restored { generation: u64, records: u64 },
    /// Split finished: `new_shard` serves half of `shard`'s former
    /// range; `moved` records were replayed onto it.
    #[serde(rename = "split_done")]
    SplitDone {
        shard: usize,
        new_shard: usize,
        moved: u64,
    },
    /// Replica replaced: the new backend was synced to `synced` records
    /// and swapped into the replica set.
    #[serde(rename = "replaced")]
    Replaced {
        shard: usize,
        replica: usize,
        synced: u64,
    },
    /// Flight-recorder read: the spans of one trace, or the recent
    /// retained trace ids.
    #[serde(rename = "trace")]
    Trace(TraceBody),
}

/// Body of [`Response::Trace`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TraceBody {
    /// Every span of the requested trace still in the flight recorder
    /// (flat — the caller reassembles the tree; span ids are unique so
    /// spans merged from several fleet nodes coexist).
    pub spans: Vec<SpanBody>,
    /// Most recently retained trace ids, newest first (the `recent`
    /// query shape; empty on an `id` query).
    pub recent: Vec<u64>,
}

/// One span event on the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpanBody {
    /// Trace id.
    pub trace: u64,
    /// This span's id.
    pub span: u64,
    /// Parent span id, 0 for a root.
    pub parent: u64,
    /// Stage name, e.g. `"serve.request"`.
    pub name: String,
    /// Start, nanoseconds since the recording process's tracer epoch —
    /// only durations are comparable across processes.
    pub start_ns: u64,
    /// See `start_ns`.
    pub end_ns: u64,
    /// Command kind (`""` when not a request span).
    pub cmd: String,
    /// Small numeric attributes (`shard`, `records`, …).
    pub attrs: BTreeMap<String, u64>,
}

impl From<bdi_obs::SpanEvent> for SpanBody {
    fn from(e: bdi_obs::SpanEvent) -> Self {
        SpanBody {
            trace: e.trace,
            span: e.span,
            parent: e.parent,
            name: e.name.to_owned(),
            start_ns: e.start_ns,
            end_ns: e.end_ns,
            cmd: e.cmd.to_owned(),
            attrs: e.attrs.iter().map(|&(k, v)| (k.to_owned(), v)).collect(),
        }
    }
}

impl SpanBody {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// An assembled span tree, the `GET /trace/:id` response body (and
/// what `bdi admin --trace` renders). The wire `trace` command returns
/// flat spans; this is the reassembled view with per-node self-times.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceTree {
    /// The trace id the tree belongs to.
    pub id: u64,
    /// Root spans (normally one; orphaned spans whose parent aged out
    /// of the ring surface as extra roots), ordered by start time.
    pub roots: Vec<TraceTreeNode>,
}

/// One node of a [`TraceTree`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceTreeNode {
    /// The span itself.
    pub span: SpanBody,
    /// Span duration minus the summed durations of direct children —
    /// time this stage spent itself (clamped at zero: child wall time
    /// can exceed the parent's when stages overlap across threads).
    pub self_ns: u64,
    /// Child spans, ordered by start time.
    pub children: Vec<TraceTreeNode>,
}

impl TraceTree {
    /// Reassemble flat wire spans into the tree, mirroring
    /// [`bdi_obs::assemble`]: children attach to a present parent,
    /// anything else roots, siblings sort by start time.
    pub fn from_spans(id: u64, mut spans: Vec<SpanBody>) -> Self {
        use std::collections::{HashMap, HashSet};
        spans.sort_by_key(|s| (s.start_ns, s.span));
        let present: HashSet<u64> = spans.iter().map(|s| s.span).collect();
        let mut children: HashMap<u64, Vec<SpanBody>> = HashMap::new();
        let mut roots: Vec<SpanBody> = Vec::new();
        for s in spans {
            if s.parent != 0 && present.contains(&s.parent) && s.parent != s.span {
                children.entry(s.parent).or_default().push(s);
            } else {
                roots.push(s);
            }
        }
        fn build(
            span: SpanBody,
            children: &mut std::collections::HashMap<u64, Vec<SpanBody>>,
        ) -> TraceTreeNode {
            let kids = children.remove(&span.span).unwrap_or_default();
            let kids: Vec<TraceTreeNode> = kids.into_iter().map(|c| build(c, children)).collect();
            let child_ns: u64 = kids.iter().map(|c| c.span.duration_ns()).sum();
            TraceTreeNode {
                self_ns: span.duration_ns().saturating_sub(child_ns),
                span,
                children: kids,
            }
        }
        TraceTree {
            id,
            roots: roots.into_iter().map(|r| build(r, &mut children)).collect(),
        }
    }

    /// Every span name in the tree, depth-first — what smoke checks
    /// assert against.
    pub fn span_names(&self) -> Vec<String> {
        fn walk(node: &TraceTreeNode, out: &mut Vec<String>) {
            out.push(node.span.name.clone());
            for c in &node.children {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        for r in &self.roots {
            walk(r, &mut out);
        }
        out
    }
}

/// Counters reported by [`Response::Stats`].
///
/// The `wal_*` and `snapshot_*` fields describe the durability subsystem
/// and are all zero when the server runs in-memory (`durable: false`).
/// Positions are absolute ingest sequence numbers — a count of records
/// ever applied — not file offsets.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StatsBody {
    /// Published generation number.
    pub generation: u64,
    /// Integrated products in that generation.
    pub products: usize,
    /// Records integrated into that generation.
    pub records: usize,
    /// Records accepted into the queue so far.
    pub submitted: u64,
    /// Records applied (linked + fused + published) so far.
    pub applied: u64,
    /// Records that failed to apply (the handler caught a panic on the
    /// ingest path); counted into `applied` so `flush` still terminates.
    pub rejected: u64,
    /// Pairwise candidate comparisons the linker has performed, as of
    /// the published generation — `comparisons / applied` is the
    /// per-insert comparison cost the blocking index is holding down.
    pub comparisons: u64,
    /// Identifier-index shards per generation.
    pub shards: usize,
    /// True when a write-ahead log backs the ingest path.
    pub durable: bool,
    /// Position one past the last record appended to the WAL.
    pub wal_position: u64,
    /// Position through which the WAL is known fsync'd — records below
    /// this survive any crash.
    pub wal_synced: u64,
    /// WAL entries past the last snapshot (the replay tail a restart
    /// would pay for right now).
    pub wal_tail: u64,
    /// Position covered by the last on-disk snapshot.
    pub snapshot_records: u64,
    /// Generation number the last snapshot was captured at.
    pub snapshot_generation: u64,
    /// Per-command latency summary (command kind → count/p50/p99 in
    /// microseconds), pulled from the same histograms `metrics`
    /// exposes in full — a quick look without scraping Prometheus
    /// text. `None` from peers predating the field (it decodes from
    /// a missing key); a router reply carries the worst (max) p50/p99
    /// across shards with counts summed.
    pub latency: Option<BTreeMap<String, CommandLatency>>,
}

/// One command's latency summary inside [`StatsBody::latency`].
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct CommandLatency {
    /// Requests measured.
    pub count: u64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
}

/// The full metrics registry reported by [`Response::Metrics`] — the
/// wire mirror of [`bdi_obs::RegistrySnapshot`]. Metric names follow
/// the dotted convention documented in `bdi-obs` (all latency
/// histograms record nanoseconds).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MetricsBody {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram name → sparse histogram state.
    pub histograms: BTreeMap<String, HistogramBody>,
}

/// One latency histogram on the wire: the sparse non-empty buckets of
/// the `bdi-obs` log-linear layout (see its crate docs for the bucket
/// math — both ends of the wire share the layout constants).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct HistogramBody {
    /// Non-empty buckets as `(bucket index, count)` pairs, ascending.
    pub buckets: Vec<(usize, u64)>,
    /// Total recorded values (the sum of the bucket counts — exact).
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl From<RegistrySnapshot> for MetricsBody {
    fn from(snapshot: RegistrySnapshot) -> Self {
        Self {
            counters: snapshot.counters,
            gauges: snapshot.gauges,
            histograms: snapshot
                .histograms
                .into_iter()
                .map(|(name, h)| {
                    (
                        name,
                        HistogramBody {
                            buckets: h.buckets,
                            count: h.count,
                            sum: h.sum,
                            max: h.max,
                        },
                    )
                })
                .collect(),
        }
    }
}

impl MetricsBody {
    /// Rebuild the registry snapshot this body mirrors (the client-side
    /// decode path behind `bdi stats --prometheus` and the load
    /// driver's server-side percentiles). Returns `None` when a
    /// histogram's sparse buckets are malformed — an out-of-range
    /// index, a zero count, or a non-ascending index list.
    pub fn to_snapshot(&self) -> Option<RegistrySnapshot> {
        let mut histograms = BTreeMap::new();
        for (name, h) in &self.histograms {
            let snap = HistogramSnapshot::from_parts(h.buckets.clone(), h.sum, h.max)?;
            if snap.count != h.count {
                return None;
            }
            histograms.insert(name.clone(), snap);
        }
        Some(RegistrySnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms,
        })
    }

    /// Quantile of a named histogram, in nanoseconds (`None` when the
    /// histogram is absent or empty).
    pub fn quantile_ns(&self, histogram: &str, q: f64) -> Option<u64> {
        let h = self.histograms.get(histogram)?;
        let snap = HistogramSnapshot::from_parts(h.buckets.clone(), h.sum, h.max)?;
        if snap.count == 0 {
            return None;
        }
        Some(snap.quantile(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_types::{RecordId, SourceId};

    #[test]
    fn request_json_round_trips() {
        let reqs = vec![
            Request::Lookup {
                identifier: "CAM-LUM-01042".into(),
            },
            Request::Filter {
                attribute: "price".into(),
                min: Some(1.0),
                max: None,
                limit: Some(5),
            },
            Request::TopK {
                attribute: "weight".into(),
                k: 3,
            },
            Request::Flush,
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
            Request::Hello,
            Request::Sync { from: 42 },
            Request::Split {
                shard: 1,
                addrs: vec!["127.0.0.1:7100".into()],
            },
            Request::Replace {
                shard: 0,
                replica: 1,
                addr: "127.0.0.1:7101".into(),
            },
            Request::Trace {
                id: Some(0xABCD),
                recent: None,
            },
            Request::Trace {
                id: None,
                recent: Some(8),
            },
        ];
        for r in reqs {
            let line = serde_json::to_string(&r).unwrap();
            assert!(!line.contains('\n'), "one request per line");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(
                serde_json::to_string(&back).unwrap(),
                line,
                "round trip stable"
            );
        }
    }

    #[test]
    fn ingest_carries_a_full_record() {
        let mut rec = Record::new(RecordId::new(SourceId(3), 7), "Lumetra LX-100");
        rec.identifiers.push("CAM-LUM-00100".into());
        let line = serde_json::to_string(&Request::Ingest { record: rec }).unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        let Request::Ingest { record } = back else {
            panic!("wrong variant")
        };
        assert_eq!(record.id, RecordId::new(SourceId(3), 7));
        assert_eq!(record.primary_identifier(), Some("CAM-LUM-00100"));
    }

    #[test]
    fn ingest_batch_carries_records_in_order() {
        let records: Vec<Record> = (0..3u32)
            .map(|i| {
                let mut r = Record::new(RecordId::new(SourceId(i), 0), format!("Gadget{i}"));
                r.identifiers.push(format!("XXX-YYY-{i:05}"));
                r
            })
            .collect();
        let line = serde_json::to_string(&Request::IngestBatch {
            records: records.clone(),
        })
        .unwrap();
        assert!(!line.contains('\n'), "one batch per line");
        let back: Request = serde_json::from_str(&line).unwrap();
        let Request::IngestBatch { records: got } = back else {
            panic!("wrong variant")
        };
        assert_eq!(got.len(), 3);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(r.id, records[i].id, "batch order preserved");
        }
    }

    #[test]
    fn metrics_body_round_trips_and_rebuilds_the_snapshot() {
        let registry = bdi_obs::Registry::new();
        registry.counter("serve.ingest.submitted").add(12);
        registry.gauge("serve.catalog.generation").set(3);
        let h = registry.histogram("serve.request.lookup.latency_ns");
        for v in [800u64, 950, 52_000, 1_000_000] {
            h.record(v);
        }
        let original = registry.snapshot();

        let body = MetricsBody::from(original.clone());
        let line = serde_json::to_string(&Response::Metrics(body)).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        let Response::Metrics(body) = back else {
            panic!("wrong variant")
        };
        assert_eq!(body.counters["serve.ingest.submitted"], 12);
        assert_eq!(
            body.to_snapshot().expect("wire body is well-formed"),
            original,
            "registry snapshot survives the wire round trip exactly"
        );
        let p99 = body
            .quantile_ns("serve.request.lookup.latency_ns", 0.99)
            .unwrap();
        let (lo, hi) = bdi_obs::bucket_bounds(bdi_obs::bucket_index(1_000_000));
        assert!(
            (lo..hi).contains(&p99),
            "p99 lands in the bucket holding 1_000_000, got {p99}"
        );
    }

    #[test]
    fn malformed_histogram_body_is_rejected() {
        let mut body = MetricsBody::default();
        body.histograms.insert(
            "h".into(),
            HistogramBody {
                buckets: vec![(3, 1), (2, 1)], // not ascending
                count: 2,
                sum: 10,
                max: 8,
            },
        );
        assert!(body.to_snapshot().is_none());
    }

    #[test]
    fn sync_state_round_trips_with_and_without_a_snapshot() {
        let mut engine = crate::engine::Engine::new(0.9);
        let mut r = Record::new(RecordId::new(SourceId(0), 0), "Lumetra LX-100");
        r.identifiers.push("CAM-LUM-00100".into());
        engine.ingest(r.clone());
        let snap = Snapshot::capture(&engine, 1);

        for resp in [
            Response::SyncState {
                position: 1,
                snapshot: Some(snap.clone()),
                tail: vec![],
            },
            Response::SyncState {
                position: 2,
                snapshot: None,
                tail: vec![r.clone()],
            },
        ] {
            let line = serde_json::to_string(&resp).unwrap();
            assert!(!line.contains('\n'), "one response per line");
            let back: Response = serde_json::from_str(&line).unwrap();
            let Response::SyncState {
                position,
                snapshot,
                tail,
            } = back
            else {
                panic!("wrong variant")
            };
            match snapshot {
                Some(s) => {
                    assert_eq!(position, 1);
                    assert_eq!(s.records, 1);
                    assert!(tail.is_empty());
                }
                None => {
                    assert_eq!(position, 2);
                    assert_eq!(tail.len(), 1);
                    assert_eq!(tail[0].id, r.id);
                }
            }
        }

        let line = serde_json::to_string(&Request::Restore {
            snapshot: Some(snap),
            tail: vec![r],
            position: 2,
        })
        .unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        let Request::Restore { position: 2, .. } = back else {
            panic!("wrong variant")
        };
    }

    #[test]
    fn trace_envelope_and_body_round_trip() {
        // the envelope wraps any request without touching its shape;
        // senders splice the line with the `traced` key first (serde's
        // own field order is not guaranteed), which is what the front
        // ends' starts_with detection keys on
        let inner = serde_json::to_string(&Request::Flush).unwrap();
        let line = format!(r#"{{"traced":{{"id":7,"parent":3}},"request":{inner}}}"#);
        assert!(
            line.starts_with(r#"{"traced""#),
            "envelope is detectable by its leading key: {line}"
        );
        let back: TracedRequest = serde_json::from_str(&line).unwrap();
        assert_eq!(back.trace, TraceWire { id: 7, parent: 3 });
        assert!(matches!(back.request, Request::Flush));

        let mut attrs = BTreeMap::new();
        attrs.insert("records".to_owned(), 64u64);
        let resp = Response::Trace(TraceBody {
            spans: vec![SpanBody {
                trace: 7,
                span: 9,
                parent: 3,
                name: "serve.request".into(),
                start_ns: 100,
                end_ns: 350,
                cmd: "ingest_batch".into(),
                attrs,
            }],
            recent: vec![7, 5],
        });
        let line = serde_json::to_string(&resp).unwrap();
        let Response::Trace(body) = serde_json::from_str(&line).unwrap() else {
            panic!("wrong variant")
        };
        assert_eq!(body.spans.len(), 1);
        assert_eq!(body.spans[0].duration_ns(), 250);
        assert_eq!(body.spans[0].attrs["records"], 64);
        assert_eq!(body.recent, vec![7, 5]);
    }

    #[test]
    fn stats_without_latency_key_still_decodes() {
        // a peer predating the latency summary omits the key entirely
        let old = r#"{"stats": {"generation": 3, "products": 1, "records": 2,
            "submitted": 2, "applied": 2, "rejected": 0, "comparisons": 5,
            "shards": 8, "durable": false, "wal_position": 0, "wal_synced": 0,
            "wal_tail": 0, "snapshot_records": 0, "snapshot_generation": 0}}"#;
        let Response::Stats(body) = serde_json::from_str(old).unwrap() else {
            panic!("wrong variant")
        };
        assert_eq!(body.generation, 3);
        assert!(body.latency.is_none(), "missing key decodes to None");
    }

    #[test]
    fn the_nc_example_parses() {
        let r: Request =
            serde_json::from_str(r#"{"lookup": {"identifier": "CAM-LUM-01042"}}"#).unwrap();
        assert!(matches!(r, Request::Lookup { .. }));
        let r: Request =
            serde_json::from_str(r#"{"top_k": {"attribute": "price", "k": 3}}"#).unwrap();
        assert!(matches!(r, Request::TopK { k: 3, .. }));
    }
}
