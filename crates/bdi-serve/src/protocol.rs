//! The wire protocol: JSON lines over TCP.
//!
//! One request object per line in, one response object per line out.
//! Requests use externally tagged JSON (unit variants are bare strings),
//! so a session from `nc` looks like:
//!
//! ```json
//! {"lookup": {"identifier": "CAM-LUM-01042"}}
//! {"top_k": {"attribute": "price", "k": 3}}
//! "stats"
//! ```

use crate::snapshot::Snapshot;
use bdi_core::catalog::CatalogEntry;
use bdi_obs::{HistogramSnapshot, RegistrySnapshot};
use bdi_types::Record;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The protocol generation this build speaks. Bumped to 2 with the
/// fleet commands (`hello`, `sync`, `restore`, `split`, `replace`);
/// `hello` lets a router verify the peer's version and feature set up
/// front instead of discovering a mismatch as an unknown-command error
/// mid-stream.
pub const PROTOCOL_VERSION: u32 = 2;

/// A client request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Request {
    /// Resolve one product identifier (any published formatting).
    #[serde(rename = "lookup")]
    Lookup { identifier: String },
    /// Products whose fused numeric value for `attribute` lies in
    /// `[min, max]` (either bound optional); at most `limit` results.
    #[serde(rename = "filter")]
    Filter {
        attribute: String,
        min: Option<f64>,
        max: Option<f64>,
        limit: Option<usize>,
    },
    /// Top-k products by a numeric attribute, descending.
    #[serde(rename = "top_k")]
    TopK { attribute: String, k: usize },
    /// Submit one record to the ingest queue (blocks under backpressure).
    #[serde(rename = "ingest")]
    Ingest { record: Record },
    /// Submit many records in one length-framed request: the whole batch
    /// is enqueued in order and answered with a single `ack`, so
    /// per-record round trips and syscalls amortize across the batch.
    /// This is the command the router tier pipelines ingest over.
    #[serde(rename = "ingest_batch")]
    IngestBatch { records: Vec<Record> },
    /// Block until everything submitted so far is queryable.
    #[serde(rename = "flush")]
    Flush,
    /// Service counters.
    #[serde(rename = "stats")]
    Stats,
    /// The full metrics registry: counters, gauges, latency histograms.
    #[serde(rename = "metrics")]
    Metrics,
    /// Stop accepting connections and drain.
    #[serde(rename = "shutdown")]
    Shutdown,
    /// Version / feature handshake: answered with [`Response::Hello`]
    /// by every build that speaks protocol version ≥ 2; older builds
    /// answer with an `error`, which a caller must treat as a mismatch.
    #[serde(rename = "hello")]
    Hello,
    /// Stream this backend's state from absolute position `from`
    /// onward: a snapshot + WAL-tail pair sufficient to rebuild a peer
    /// (answered with [`Response::SyncState`]). Backend-only — the WAL
    /// shipping half of node replacement and shard splits.
    #[serde(rename = "sync")]
    Sync { from: u64 },
    /// Install shipped state: replace this backend's engine with
    /// `snapshot` (or a fresh engine when `None`), replay `tail` on
    /// top, and adopt `position` as the applied record count. Backend-
    /// only; answered with [`Response::Restored`].
    #[serde(rename = "restore")]
    Restore {
        snapshot: Option<Snapshot>,
        tail: Vec<Record>,
        position: u64,
    },
    /// Split `shard`'s hash range onto new backends at `addrs` (one per
    /// replica), moving half of its keyspace with no dropped or
    /// double-applied records. Router-only; answered with
    /// [`Response::SplitDone`].
    #[serde(rename = "split")]
    Split { shard: usize, addrs: Vec<String> },
    /// Replace replica `replica` of `shard` with a fresh backend at
    /// `addr`, bootstrapped from a live peer via `sync`. Router-only;
    /// answered with [`Response::Replaced`].
    #[serde(rename = "replace")]
    Replace {
        shard: usize,
        replica: usize,
        addr: String,
    },
}

impl Request {
    /// The command's wire name — the label per-command metrics are
    /// recorded under (`serve.request.<kind>.latency_ns`).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Lookup { .. } => "lookup",
            Request::Filter { .. } => "filter",
            Request::TopK { .. } => "top_k",
            Request::Ingest { .. } => "ingest",
            Request::IngestBatch { .. } => "ingest_batch",
            Request::Flush => "flush",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
            Request::Hello => "hello",
            Request::Sync { .. } => "sync",
            Request::Restore { .. } => "restore",
            Request::Split { .. } => "split",
            Request::Replace { .. } => "replace",
        }
    }
}

/// A server response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Response {
    /// Lookup result (with the generation it was read from).
    #[serde(rename = "entry")]
    Entry {
        generation: u64,
        entry: Option<CatalogEntry>,
    },
    /// Filter / top-k results.
    #[serde(rename = "entries")]
    Entries {
        generation: u64,
        entries: Vec<CatalogEntry>,
    },
    /// Ingest accepted into the queue.
    #[serde(rename = "ack")]
    Ack { submitted: u64 },
    /// Flush completed: all `applied` records are queryable.
    #[serde(rename = "flushed")]
    Flushed { generation: u64, applied: u64 },
    /// Service counters.
    #[serde(rename = "stats")]
    Stats(StatsBody),
    /// The full metrics registry.
    #[serde(rename = "metrics")]
    Metrics(MetricsBody),
    /// Request failed.
    #[serde(rename = "error")]
    Error { message: String },
    /// Shutdown acknowledged.
    #[serde(rename = "bye")]
    Bye,
    /// Handshake reply: the peer's protocol version and the wire
    /// features it supports (e.g. `ingest_batch`, `sync`).
    #[serde(rename = "hello")]
    Hello { version: u32, features: Vec<String> },
    /// Shipped state: everything needed to rebuild this backend from
    /// `position` — a full snapshot when the requested `from` predates
    /// the WAL (or the backend is in-memory), else just the WAL tail.
    #[serde(rename = "sync_state")]
    SyncState {
        /// Applied record count the shipped state reaches.
        position: u64,
        /// Full engine snapshot (`None` for a tail-only delta).
        snapshot: Option<Snapshot>,
        /// Records past the snapshot (or past `from`), in apply order.
        tail: Vec<Record>,
    },
    /// Restore installed and published.
    #[serde(rename = "restored")]
    Restored { generation: u64, records: u64 },
    /// Split finished: `new_shard` serves half of `shard`'s former
    /// range; `moved` records were replayed onto it.
    #[serde(rename = "split_done")]
    SplitDone {
        shard: usize,
        new_shard: usize,
        moved: u64,
    },
    /// Replica replaced: the new backend was synced to `synced` records
    /// and swapped into the replica set.
    #[serde(rename = "replaced")]
    Replaced {
        shard: usize,
        replica: usize,
        synced: u64,
    },
}

/// Counters reported by [`Response::Stats`].
///
/// The `wal_*` and `snapshot_*` fields describe the durability subsystem
/// and are all zero when the server runs in-memory (`durable: false`).
/// Positions are absolute ingest sequence numbers — a count of records
/// ever applied — not file offsets.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StatsBody {
    /// Published generation number.
    pub generation: u64,
    /// Integrated products in that generation.
    pub products: usize,
    /// Records integrated into that generation.
    pub records: usize,
    /// Records accepted into the queue so far.
    pub submitted: u64,
    /// Records applied (linked + fused + published) so far.
    pub applied: u64,
    /// Records that failed to apply (the handler caught a panic on the
    /// ingest path); counted into `applied` so `flush` still terminates.
    pub rejected: u64,
    /// Pairwise candidate comparisons the linker has performed, as of
    /// the published generation — `comparisons / applied` is the
    /// per-insert comparison cost the blocking index is holding down.
    pub comparisons: u64,
    /// Identifier-index shards per generation.
    pub shards: usize,
    /// True when a write-ahead log backs the ingest path.
    pub durable: bool,
    /// Position one past the last record appended to the WAL.
    pub wal_position: u64,
    /// Position through which the WAL is known fsync'd — records below
    /// this survive any crash.
    pub wal_synced: u64,
    /// WAL entries past the last snapshot (the replay tail a restart
    /// would pay for right now).
    pub wal_tail: u64,
    /// Position covered by the last on-disk snapshot.
    pub snapshot_records: u64,
    /// Generation number the last snapshot was captured at.
    pub snapshot_generation: u64,
}

/// The full metrics registry reported by [`Response::Metrics`] — the
/// wire mirror of [`bdi_obs::RegistrySnapshot`]. Metric names follow
/// the dotted convention documented in `bdi-obs` (all latency
/// histograms record nanoseconds).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MetricsBody {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram name → sparse histogram state.
    pub histograms: BTreeMap<String, HistogramBody>,
}

/// One latency histogram on the wire: the sparse non-empty buckets of
/// the `bdi-obs` log-linear layout (see its crate docs for the bucket
/// math — both ends of the wire share the layout constants).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct HistogramBody {
    /// Non-empty buckets as `(bucket index, count)` pairs, ascending.
    pub buckets: Vec<(usize, u64)>,
    /// Total recorded values (the sum of the bucket counts — exact).
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl From<RegistrySnapshot> for MetricsBody {
    fn from(snapshot: RegistrySnapshot) -> Self {
        Self {
            counters: snapshot.counters,
            gauges: snapshot.gauges,
            histograms: snapshot
                .histograms
                .into_iter()
                .map(|(name, h)| {
                    (
                        name,
                        HistogramBody {
                            buckets: h.buckets,
                            count: h.count,
                            sum: h.sum,
                            max: h.max,
                        },
                    )
                })
                .collect(),
        }
    }
}

impl MetricsBody {
    /// Rebuild the registry snapshot this body mirrors (the client-side
    /// decode path behind `bdi stats --prometheus` and the load
    /// driver's server-side percentiles). Returns `None` when a
    /// histogram's sparse buckets are malformed — an out-of-range
    /// index, a zero count, or a non-ascending index list.
    pub fn to_snapshot(&self) -> Option<RegistrySnapshot> {
        let mut histograms = BTreeMap::new();
        for (name, h) in &self.histograms {
            let snap = HistogramSnapshot::from_parts(h.buckets.clone(), h.sum, h.max)?;
            if snap.count != h.count {
                return None;
            }
            histograms.insert(name.clone(), snap);
        }
        Some(RegistrySnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms,
        })
    }

    /// Quantile of a named histogram, in nanoseconds (`None` when the
    /// histogram is absent or empty).
    pub fn quantile_ns(&self, histogram: &str, q: f64) -> Option<u64> {
        let h = self.histograms.get(histogram)?;
        let snap = HistogramSnapshot::from_parts(h.buckets.clone(), h.sum, h.max)?;
        if snap.count == 0 {
            return None;
        }
        Some(snap.quantile(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_types::{RecordId, SourceId};

    #[test]
    fn request_json_round_trips() {
        let reqs = vec![
            Request::Lookup {
                identifier: "CAM-LUM-01042".into(),
            },
            Request::Filter {
                attribute: "price".into(),
                min: Some(1.0),
                max: None,
                limit: Some(5),
            },
            Request::TopK {
                attribute: "weight".into(),
                k: 3,
            },
            Request::Flush,
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
            Request::Hello,
            Request::Sync { from: 42 },
            Request::Split {
                shard: 1,
                addrs: vec!["127.0.0.1:7100".into()],
            },
            Request::Replace {
                shard: 0,
                replica: 1,
                addr: "127.0.0.1:7101".into(),
            },
        ];
        for r in reqs {
            let line = serde_json::to_string(&r).unwrap();
            assert!(!line.contains('\n'), "one request per line");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(
                serde_json::to_string(&back).unwrap(),
                line,
                "round trip stable"
            );
        }
    }

    #[test]
    fn ingest_carries_a_full_record() {
        let mut rec = Record::new(RecordId::new(SourceId(3), 7), "Lumetra LX-100");
        rec.identifiers.push("CAM-LUM-00100".into());
        let line = serde_json::to_string(&Request::Ingest { record: rec }).unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        let Request::Ingest { record } = back else {
            panic!("wrong variant")
        };
        assert_eq!(record.id, RecordId::new(SourceId(3), 7));
        assert_eq!(record.primary_identifier(), Some("CAM-LUM-00100"));
    }

    #[test]
    fn ingest_batch_carries_records_in_order() {
        let records: Vec<Record> = (0..3u32)
            .map(|i| {
                let mut r = Record::new(RecordId::new(SourceId(i), 0), format!("Gadget{i}"));
                r.identifiers.push(format!("XXX-YYY-{i:05}"));
                r
            })
            .collect();
        let line = serde_json::to_string(&Request::IngestBatch {
            records: records.clone(),
        })
        .unwrap();
        assert!(!line.contains('\n'), "one batch per line");
        let back: Request = serde_json::from_str(&line).unwrap();
        let Request::IngestBatch { records: got } = back else {
            panic!("wrong variant")
        };
        assert_eq!(got.len(), 3);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(r.id, records[i].id, "batch order preserved");
        }
    }

    #[test]
    fn metrics_body_round_trips_and_rebuilds_the_snapshot() {
        let registry = bdi_obs::Registry::new();
        registry.counter("serve.ingest.submitted").add(12);
        registry.gauge("serve.catalog.generation").set(3);
        let h = registry.histogram("serve.request.lookup.latency_ns");
        for v in [800u64, 950, 52_000, 1_000_000] {
            h.record(v);
        }
        let original = registry.snapshot();

        let body = MetricsBody::from(original.clone());
        let line = serde_json::to_string(&Response::Metrics(body)).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        let Response::Metrics(body) = back else {
            panic!("wrong variant")
        };
        assert_eq!(body.counters["serve.ingest.submitted"], 12);
        assert_eq!(
            body.to_snapshot().expect("wire body is well-formed"),
            original,
            "registry snapshot survives the wire round trip exactly"
        );
        let p99 = body
            .quantile_ns("serve.request.lookup.latency_ns", 0.99)
            .unwrap();
        let (lo, hi) = bdi_obs::bucket_bounds(bdi_obs::bucket_index(1_000_000));
        assert!(
            (lo..hi).contains(&p99),
            "p99 lands in the bucket holding 1_000_000, got {p99}"
        );
    }

    #[test]
    fn malformed_histogram_body_is_rejected() {
        let mut body = MetricsBody::default();
        body.histograms.insert(
            "h".into(),
            HistogramBody {
                buckets: vec![(3, 1), (2, 1)], // not ascending
                count: 2,
                sum: 10,
                max: 8,
            },
        );
        assert!(body.to_snapshot().is_none());
    }

    #[test]
    fn sync_state_round_trips_with_and_without_a_snapshot() {
        let mut engine = crate::engine::Engine::new(0.9);
        let mut r = Record::new(RecordId::new(SourceId(0), 0), "Lumetra LX-100");
        r.identifiers.push("CAM-LUM-00100".into());
        engine.ingest(r.clone());
        let snap = Snapshot::capture(&engine, 1);

        for resp in [
            Response::SyncState {
                position: 1,
                snapshot: Some(snap.clone()),
                tail: vec![],
            },
            Response::SyncState {
                position: 2,
                snapshot: None,
                tail: vec![r.clone()],
            },
        ] {
            let line = serde_json::to_string(&resp).unwrap();
            assert!(!line.contains('\n'), "one response per line");
            let back: Response = serde_json::from_str(&line).unwrap();
            let Response::SyncState {
                position,
                snapshot,
                tail,
            } = back
            else {
                panic!("wrong variant")
            };
            match snapshot {
                Some(s) => {
                    assert_eq!(position, 1);
                    assert_eq!(s.records, 1);
                    assert!(tail.is_empty());
                }
                None => {
                    assert_eq!(position, 2);
                    assert_eq!(tail.len(), 1);
                    assert_eq!(tail[0].id, r.id);
                }
            }
        }

        let line = serde_json::to_string(&Request::Restore {
            snapshot: Some(snap),
            tail: vec![r],
            position: 2,
        })
        .unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        let Request::Restore { position: 2, .. } = back else {
            panic!("wrong variant")
        };
    }

    #[test]
    fn the_nc_example_parses() {
        let r: Request =
            serde_json::from_str(r#"{"lookup": {"identifier": "CAM-LUM-01042"}}"#).unwrap();
        assert!(matches!(r, Request::Lookup { .. }));
        let r: Request =
            serde_json::from_str(r#"{"top_k": {"attribute": "price", "k": 3}}"#).unwrap();
        assert!(matches!(r, Request::TopK { k: 3, .. }));
    }
}
