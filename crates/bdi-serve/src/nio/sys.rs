//! Raw `epoll` via syscalls — the one `unsafe` corner of the crate.
//!
//! The vendored-deps policy rules out `mio` and even `libc`, but the
//! std runtime already links the platform C library, so the four
//! symbols a readiness loop needs (`epoll_create1` / `epoll_ctl` /
//! `epoll_wait` / `close`, plus `getrlimit`/`setrlimit` for the C10K
//! bench) are declared here directly. Everything above this module is
//! safe Rust: the loop sees an [`Epoll`] that registers `RawFd`s under
//! `u64` tokens and yields `(token, readiness)` pairs.
//!
//! Level-triggered mode only. The loop re-arms `EPOLLOUT` explicitly
//! when a connection has backlog, so edge-triggered's
//! read-until-EAGAIN discipline buys nothing here and level-triggered
//! removes a whole class of lost-wakeup bugs.
#![allow(unsafe_code)]

#[cfg(not(target_os = "linux"))]
compile_error!(
    "the readiness-loop front-end speaks raw epoll and only builds on Linux \
     (the extern symbols below would not even link elsewhere)"
);

use std::io;
use std::os::unix::io::RawFd;

/// `struct epoll_event`. The kernel ABI packs it **only on x86-64**
/// (no padding between the 32-bit event mask and the 64-bit payload,
/// 12 bytes); every other Linux arch uses the naturally-aligned
/// 16-byte layout. Packing unconditionally would make `epoll_wait`
/// write 16-byte entries into a 12-byte-stride buffer on aarch64 —
/// a heap overrun — so the attribute is arch-gated.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

const RLIMIT_NOFILE: i32 = 7;

#[repr(C)]
struct Rlimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
}

/// An epoll instance plus its reusable event buffer.
pub(crate) struct Epoll {
    fd: RawFd,
    buf: Vec<EpollEvent>,
}

impl Epoll {
    pub(crate) fn new() -> io::Result<Self> {
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            fd,
            buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` under `token` with the given interest mask.
    pub(crate) fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change `fd`'s interest mask.
    pub(crate) fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregister `fd`. Errors are ignored — the fd may already be
    /// closed, which deregisters implicitly.
    pub(crate) fn delete(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Block up to `timeout_ms` (-1 = forever) and append the ready
    /// `(token, events)` pairs to `out`.
    pub(crate) fn wait(&mut self, out: &mut Vec<(u64, u32)>, timeout_ms: i32) -> io::Result<()> {
        // SAFETY: the buffer is sized and valid for `maxevents` entries.
        let n = unsafe {
            epoll_wait(
                self.fd,
                self.buf.as_mut_ptr(),
                self.buf.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(e);
        }
        for ev in &self.buf[..n as usize] {
            // copy out of the packed struct before taking references
            let (events, data) = (ev.events, ev.data);
            out.push((data, events));
        }
        Ok(())
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this instance and closed exactly once.
        unsafe { close(self.fd) };
    }
}

/// Raise `RLIMIT_NOFILE` toward `target` (root may raise the hard
/// limit too) and return the soft limit actually in effect. Used by
/// the C10K bench and the 10k-idle-connections smoke test, where one
/// process holds both ends of every connection.
pub fn raise_nofile_limit(target: u64) -> u64 {
    let mut lim = Rlimit { cur: 0, max: 0 };
    // SAFETY: out-pointer to a live struct.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.cur >= target {
        return lim.cur;
    }
    let want = Rlimit {
        cur: target,
        max: lim.max.max(target),
    };
    // SAFETY: in-pointer to a live struct.
    if unsafe { setrlimit(RLIMIT_NOFILE, &want) } != 0 {
        // can't touch the hard limit: settle for soft = hard
        let fallback = Rlimit {
            cur: lim.max,
            max: lim.max,
        };
        // SAFETY: in-pointer to a live struct.
        unsafe { setrlimit(RLIMIT_NOFILE, &fallback) };
    }
    // SAFETY: out-pointer to a live struct.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    lim.cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn epoll_reports_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut epoll = Epoll::new().unwrap();
        epoll.add(listener.as_raw_fd(), 7, EPOLLIN).unwrap();

        let mut events = Vec::new();
        epoll.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "nothing pending yet");

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        epoll.wait(&mut events, 1000).unwrap();
        assert!(
            events.iter().any(|&(t, e)| t == 7 && e & EPOLLIN != 0),
            "pending accept surfaces as EPOLLIN on the listener token"
        );

        // a connected socket is write-ready at once
        client.write_all(b"x").unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        epoll
            .add(server_side.as_raw_fd(), 9, EPOLLIN | EPOLLOUT)
            .unwrap();
        events.clear();
        epoll.wait(&mut events, 1000).unwrap();
        let ev = events
            .iter()
            .find(|&&(t, _)| t == 9)
            .expect("conn token fires");
        assert!(ev.1 & EPOLLIN != 0, "1 byte to read");
        assert!(ev.1 & EPOLLOUT != 0, "empty socket buffer is writable");
        epoll.delete(server_side.as_raw_fd());
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotone() {
        let now = raise_nofile_limit(1024);
        assert!(now >= 1024, "limit at least the floor we asked for");
        assert!(raise_nofile_limit(1024) >= now, "idempotent");
    }
}
