//! The readiness-loop front-end: one event-loop thread multiplexing
//! every connection over raw `epoll` ([`sys`]), plus a small worker
//! pool executing dispatch.
//!
//! The thread-per-connection front-end capped concurrent clients at
//! thread count; this one holds tens of thousands of mostly-idle
//! connections per node. The division of labor:
//!
//! * **The loop thread** owns every socket. It accepts (nonblocking
//!   listeners), reads into per-connection buffers, frames requests
//!   incrementally (JSON lines *or* HTTP/1.1 — the protocol is sniffed
//!   from a connection's first bytes, so one listener serves both),
//!   and writes responses, arming `EPOLLOUT` only while a connection
//!   has backlog. It never parses JSON and never touches the engine,
//!   so slow engine work (a flush barrier, ingest backpressure, a
//!   scatter-gather fan-out) can never stall accept/read/write
//!   progress.
//! * **Workers** execute [`Service`] dispatch. Frames queue per
//!   connection ([`ConnCell`]), and at most one worker services a
//!   given connection at a time — requests on one connection are
//!   processed strictly in order and responses never interleave,
//!   exactly the guarantee the threaded front-end gave (and what makes
//!   HTTP pipelining answer in request order). Workers may block; the
//!   pool size bounds how many blocking commands run at once.
//! * Finished responses flow back through a completion list and a
//!   waker (a socketpair byte), and the loop pushes the bytes out.
//!
//! Framing errors are *answered in order*: the framing layer emits a
//! pre-encoded response as a [`Frame::Raw`] that rides the same
//! per-connection queue as real requests, so a pipelined client never
//! sees an error overtake an earlier response.

pub(crate) mod sys;

pub use sys::raise_nofile_limit;

use crate::frame;
use crate::http::{self, HttpRequest, HttpResponse};
use bdi_obs::{Counter, Gauge, Registry};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sys::{Epoll, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Longest JSON line accepted (a `restore` ships a whole snapshot as
/// one line, so this is generous).
const MAX_LINE: usize = 256 << 20;
/// Longest HTTP request head (request line + headers).
const MAX_HTTP_HEAD: usize = 16 * 1024;
/// Longest HTTP body accepted (bounds a `POST /ingest` batch).
const MAX_HTTP_BODY: usize = 64 << 20;
/// Read at most this much per readiness event before yielding to other
/// connections (level-triggered epoll re-fires for the remainder).
const READ_QUANTUM: usize = 256 * 1024;
/// How long the shutdown drain waits for in-flight work and undelivered
/// response bytes before force-dropping what remains. A client that
/// stops reading its socket keeps its `wbuf` non-empty forever; without
/// a deadline, `Server::shutdown()` (which joins the loop thread) would
/// hang on it.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

const TOKEN_WAKER: u64 = u64::MAX;
/// First connection token; listener tokens are their index below this.
const TOKEN_CONN0: u64 = 1024;

/// Per-request context the framing layer knows and dispatch doesn't:
/// who sent it and how long it sat on the dispatch queue before a
/// worker picked it up. The slow-request log wants the peer; the
/// request tracer turns the wait into a `queue.wait` span.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RequestMeta {
    /// Peer socket address, when the transport had one.
    pub peer: Option<SocketAddr>,
    /// Nanoseconds between framing completion and dispatch start.
    pub queued_ns: u64,
}

impl RequestMeta {
    /// Meta for the thread-per-connection front-end: a known peer, no
    /// queueing (dispatch runs inline on the connection's thread).
    pub fn direct(peer: Option<SocketAddr>) -> Self {
        Self { peer, queued_ns: 0 }
    }
}

/// What a front-end serves: per-connection state plus the two protocol
/// entry points. Implemented by the backend ([`crate::server`]) and
/// the router ([`crate::router`]); both run the same loop.
pub(crate) trait Service: Send + Sync + 'static {
    /// Per-connection dispatch state (the router's lazy backend
    /// connections; `()` for a backend). Only one worker touches a
    /// connection's state at a time.
    type Conn: Send + 'static;

    fn new_conn(&self) -> Self::Conn;

    /// Handle one JSON-lines request: the response line (no trailing
    /// newline) and whether to close the connection after writing it.
    fn handle_line(&self, conn: &mut Self::Conn, line: &str, meta: &RequestMeta) -> (String, bool);

    /// Handle one complete binary frame (`[frame::FRAME_MAGIC]`-led,
    /// CRC-validated length on the framing side; the payload CRC is
    /// checked here via [`frame::open_frame`]). Returns the encoded
    /// response frame and whether to close. The default rejects the
    /// format — a service opts in by overriding.
    fn handle_frame(
        &self,
        conn: &mut Self::Conn,
        raw: &[u8],
        meta: &RequestMeta,
    ) -> (Vec<u8>, bool) {
        let _ = (conn, raw, meta);
        let mut out = Vec::new();
        frame::encode_error(&mut out, "binary frames not supported on this endpoint");
        (out, true)
    }

    /// Handle one decoded HTTP request.
    fn handle_http(
        &self,
        conn: &mut Self::Conn,
        req: HttpRequest,
        meta: &RequestMeta,
    ) -> HttpResponse;

    /// The service's shutdown flag: the loop stops accepting and
    /// drains once this reads true.
    fn shutting_down(&self) -> bool;
}

/// One framed request (or framing-layer output) on a connection's
/// queue.
enum Frame {
    /// A complete JSON line (newline stripped, non-blank).
    Line(String),
    /// A complete binary frame (magic through CRC trailer, verbatim).
    Binary(Vec<u8>),
    /// A complete HTTP request.
    Http(HttpRequest),
    /// Pre-encoded bytes from the framing layer itself — an interim
    /// `100 Continue`, or the response to a framing-fatal request —
    /// queued so they stay in order with real responses.
    Raw { bytes: Vec<u8>, close: bool },
}

/// The worker-facing half of a connection: its frame queue, its
/// response buffer, and its dispatch state.
struct ConnShared<C> {
    /// Framed requests with the instant they finished framing (the gap
    /// to dispatch is the queue wait reported in [`RequestMeta`]).
    pending: VecDeque<(Frame, Instant)>,
    out: Vec<u8>,
    /// A worker currently owns this connection's queue.
    busy: bool,
    /// The loop tore the connection down; discard further output.
    closed: bool,
    /// A response requested close (`shutdown`, `Connection: close`, a
    /// framing-fatal error): no more frames are accepted, and the loop
    /// closes once the outbox drains.
    done: bool,
    /// Dispatch state, taken by the servicing worker for the duration
    /// of a batch.
    state: Option<C>,
}

struct ConnCell<C> {
    token: u64,
    /// Peer address captured at accept (the worker-side [`RequestMeta`]
    /// carries it into dispatch for slow-request logging).
    peer: Option<SocketAddr>,
    shared: Mutex<ConnShared<C>>,
}

/// Completed-connection tokens, handed from workers to the loop.
struct Completions {
    ids: Mutex<Vec<u64>>,
    /// True while a wake byte is already in flight (dedup).
    wake_pending: AtomicBool,
    waker_tx: UnixStream,
}

impl Completions {
    fn notify(&self, token: u64) {
        let wake = {
            let mut ids = self.ids.lock();
            ids.push(token);
            !self.wake_pending.swap(true, Ordering::SeqCst)
        };
        if wake {
            // nonblocking 1-byte write; a full pipe means wakes are
            // already queued
            let _ = (&self.waker_tx).write(&[1u8]);
        }
    }

    fn take(&self) -> Vec<u64> {
        let mut ids = self.ids.lock();
        self.wake_pending.store(false, Ordering::SeqCst);
        std::mem::take(&mut *ids)
    }
}

/// Protocol decode state for one connection.
enum Proto {
    /// First bytes not yet seen.
    Unknown,
    Json,
    Http(HttpDecoder),
}

/// Loop-side connection state.
struct Conn<C> {
    stream: TcpStream,
    cell: Arc<ConnCell<C>>,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    proto: Proto,
    interest: u32,
    /// Read side saw EOF (client half-closed; keep writing).
    peer_closed: bool,
    /// Framing is unrecoverable; stop parsing input.
    broken: bool,
    /// Close once `wbuf` and the outbox drain.
    closing: bool,
}

/// Decide JSON lines vs HTTP from a connection's first bytes: an HTTP
/// method token means HTTP, anything else (JSON values start with `{`,
/// `"`, `[`…) means JSON lines. `None` = ambiguous prefix, need more.
fn sniff(buf: &[u8]) -> Option<bool> {
    const METHODS: [&[u8]; 7] = [
        b"GET ",
        b"POST ",
        b"PUT ",
        b"HEAD ",
        b"DELETE ",
        b"OPTIONS ",
        b"PATCH ",
    ];
    if buf.is_empty() {
        return None;
    }
    let mut maybe = false;
    for m in METHODS {
        if buf.len() >= m.len() {
            if &buf[..m.len()] == m {
                return Some(true);
            }
        } else if m.starts_with(buf) {
            maybe = true;
        }
    }
    if maybe {
        None
    } else {
        Some(false)
    }
}

/// What one decoder step produced.
enum Advance {
    NeedMore,
    /// An interim response to send now (`100 Continue`); decoding
    /// continues.
    Interim(Vec<u8>),
    Request(HttpRequest),
    /// Unrecoverable framing: answer this, then close.
    Fatal(HttpResponse),
}

/// Incremental HTTP/1.1 request decoder: head (request line +
/// headers), then a `Content-Length` body. Keep-alive: after each
/// request the state resets for the next one on the same connection.
struct HttpDecoder {
    body: Option<PendingBody>,
}

struct PendingBody {
    method: String,
    path: String,
    query: String,
    close: bool,
    need: usize,
    trace: Option<String>,
}

impl HttpDecoder {
    fn new() -> Self {
        Self { body: None }
    }

    fn advance(&mut self, buf: &mut Vec<u8>) -> Advance {
        if let Some(pending) = &self.body {
            if buf.len() < pending.need {
                return Advance::NeedMore;
            }
            let pending = self.body.take().expect("checked above");
            let body: Vec<u8> = buf.drain(..pending.need).collect();
            return Advance::Request(HttpRequest {
                method: pending.method,
                path: pending.path,
                query: pending.query,
                body,
                close: pending.close,
                trace: pending.trace,
            });
        }
        // hunt for the blank line ending the head
        let Some(head_end) = find_head_end(buf) else {
            if buf.len() > MAX_HTTP_HEAD {
                return Advance::Fatal(http::fatal(
                    431,
                    &format!("request head exceeds {MAX_HTTP_HEAD} bytes"),
                ));
            }
            return Advance::NeedMore;
        };
        if head_end > MAX_HTTP_HEAD {
            return Advance::Fatal(http::fatal(
                431,
                &format!("request head exceeds {MAX_HTTP_HEAD} bytes"),
            ));
        }
        let head: Vec<u8> = buf.drain(..head_end).collect();
        let head = String::from_utf8_lossy(&head).into_owned();
        let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
        let (Some(method), Some(target), Some(version)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Advance::Fatal(http::fatal(
                400,
                &format!("bad request line: '{request_line}'"),
            ));
        };
        if !version.starts_with("HTTP/1.") {
            return Advance::Fatal(http::fatal(400, &format!("unsupported version {version}")));
        }
        let http10 = version == "HTTP/1.0";
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };
        let mut content_length: Option<usize> = None;
        let mut close = http10;
        let mut expect_continue = false;
        let mut trace: Option<String> = None;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                match value.parse::<usize>() {
                    // identical repeats are tolerated (RFC 9110 §8.6),
                    // but conflicting duplicates are a request-smuggling
                    // vector behind a proxy that picks the other one
                    Ok(n) => {
                        if content_length.is_some_and(|prev| prev != n) {
                            return Advance::Fatal(http::fatal(
                                400,
                                "conflicting content-length headers",
                            ));
                        }
                        content_length = Some(n);
                    }
                    Err(_) => {
                        return Advance::Fatal(http::fatal(
                            400,
                            &format!("bad content-length: '{value}'"),
                        ));
                    }
                }
            } else if name.eq_ignore_ascii_case("connection") {
                // the value is a comma-separated token list
                // ("keep-alive, TE"); match tokens, not the whole value
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        close = true;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        close = false;
                    }
                }
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Advance::Fatal(http::fatal(
                    400,
                    "transfer-encoding is unsupported: frame the body with content-length",
                ));
            } else if name.eq_ignore_ascii_case("expect")
                && value.eq_ignore_ascii_case("100-continue")
            {
                expect_continue = true;
            } else if name.eq_ignore_ascii_case("x-bdi-trace") {
                trace = Some(value.to_string());
            }
        }
        let content_length = content_length.unwrap_or(0);
        if content_length > MAX_HTTP_BODY {
            return Advance::Fatal(http::fatal(
                413,
                &format!("body exceeds {MAX_HTTP_BODY} bytes"),
            ));
        }
        self.body = Some(PendingBody {
            method: method.to_string(),
            path,
            query,
            close,
            need: content_length,
            trace,
        });
        if expect_continue {
            return Advance::Interim(b"HTTP/1.1 100 Continue\r\n\r\n".to_vec());
        }
        // loop around (via the caller) to consume the body, which may
        // already be buffered
        self.advance(buf)
    }
}

/// Index one past the head-terminating blank line (`\r\n\r\n`, with a
/// bare `\n\n` tolerated).
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if i + 1 < buf.len() && buf[i + 1] == b'\n' {
                return Some(i + 2);
            }
            if i + 2 < buf.len() && buf[i + 1] == b'\r' && buf[i + 2] == b'\n' {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// Spawn the front-end over `listeners`: the loop thread plus
/// `workers` dispatch workers. Returns the loop's join handle (it
/// joins the workers itself). `prefix` names the connection metrics:
/// `<prefix>.conn.open` (gauge) and `<prefix>.conn.accepted`
/// (counter).
pub(crate) fn spawn_front_end<S: Service>(
    listeners: Vec<TcpListener>,
    service: Arc<S>,
    registry: &Registry,
    prefix: &str,
    workers: usize,
) -> io::Result<JoinHandle<()>> {
    let epoll = Epoll::new()?;
    for (i, l) in listeners.iter().enumerate() {
        l.set_nonblocking(true)?;
        epoll.add(l.as_raw_fd(), i as u64, EPOLLIN)?;
    }
    let (waker_rx, waker_tx) = UnixStream::pair()?;
    waker_rx.set_nonblocking(true)?;
    waker_tx.set_nonblocking(true)?;
    epoll.add(waker_rx.as_raw_fd(), TOKEN_WAKER, EPOLLIN)?;

    let completions = Arc::new(Completions {
        ids: Mutex::new(Vec::new()),
        wake_pending: AtomicBool::new(false),
        waker_tx,
    });
    let inflight = Arc::new(AtomicU64::new(0));
    let (inject, worker_rx) = unbounded::<Arc<ConnCell<S::Conn>>>();
    let workers = workers.max(1);
    let pool: Vec<JoinHandle<()>> = (0..workers)
        .map(|i| {
            let service = Arc::clone(&service);
            let rx = worker_rx.clone();
            let completions = Arc::clone(&completions);
            let inflight = Arc::clone(&inflight);
            std::thread::Builder::new()
                .name(format!("{prefix}-dispatch-{i}"))
                .spawn(move || worker_loop(service, rx, completions, inflight))
                .expect("spawn dispatch worker")
        })
        .collect();

    let state = EventLoop {
        epoll,
        listeners,
        conns: HashMap::new(),
        next_token: TOKEN_CONN0,
        service,
        inject,
        completions,
        waker_rx,
        inflight,
        conn_open: registry.gauge(&format!("{prefix}.conn.open")),
        conn_accepted: registry.counter(&format!("{prefix}.conn.accepted")),
        pool,
    };
    std::thread::Builder::new()
        .name(format!("{prefix}-nio"))
        .spawn(move || state.run())
        .map_err(io::Error::other)
}

struct EventLoop<S: Service> {
    epoll: Epoll,
    listeners: Vec<TcpListener>,
    conns: HashMap<u64, Conn<S::Conn>>,
    next_token: u64,
    service: Arc<S>,
    inject: Sender<Arc<ConnCell<S::Conn>>>,
    completions: Arc<Completions>,
    waker_rx: UnixStream,
    inflight: Arc<AtomicU64>,
    conn_open: Gauge,
    conn_accepted: Counter,
    pool: Vec<JoinHandle<()>>,
}

impl<S: Service> EventLoop<S> {
    fn run(mut self) {
        let mut events: Vec<(u64, u32)> = Vec::with_capacity(1024);
        let mut drain_deadline: Option<Instant> = None;
        loop {
            events.clear();
            let timeout = if self.service.shutting_down() {
                10
            } else {
                250
            };
            if self.epoll.wait(&mut events, timeout).is_err() {
                break;
            }
            let drain = std::mem::take(&mut events);
            for &(token, ev) in &drain {
                if token == TOKEN_WAKER {
                    self.on_waker();
                } else if (token as usize) < self.listeners.len() {
                    self.on_accept(token as usize);
                } else {
                    if ev & EPOLLERR != 0 {
                        self.drop_conn(token);
                        continue;
                    }
                    if ev & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0 {
                        self.on_readable(token);
                    }
                    if ev & EPOLLOUT != 0 {
                        self.pump_out(token);
                    }
                }
            }
            events = drain;
            if self.service.shutting_down() {
                let deadline =
                    *drain_deadline.get_or_insert_with(|| Instant::now() + DRAIN_DEADLINE);
                if self.try_drain() || Instant::now() >= deadline {
                    break;
                }
            }
        }
        // teardown: close every connection, retire the pool
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for t in tokens {
            self.drop_conn(t);
        }
        drop(self.inject);
        for h in self.pool {
            let _ = h.join();
        }
    }

    /// Shutdown drain: true once nothing is in flight in the pool and
    /// every response byte has hit a socket (or its connection died).
    /// The caller bounds this with [`DRAIN_DEADLINE`] — a wedged peer
    /// that never reads keeps its `wbuf` non-empty indefinitely and
    /// must not block shutdown forever.
    fn try_drain(&mut self) -> bool {
        if self.inflight.load(Ordering::SeqCst) != 0 {
            return false;
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for t in tokens {
            self.pump_out(t);
        }
        self.conns
            .values()
            .all(|c| c.wbuf.is_empty() && c.cell.shared.lock().out.is_empty())
    }

    fn on_accept(&mut self, idx: usize) {
        loop {
            match self.listeners[idx].accept() {
                Ok((stream, peer)) => {
                    if self.service.shutting_down() {
                        continue; // accept-and-drop until the loop exits
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let interest = EPOLLIN | EPOLLRDHUP;
                    if self.epoll.add(stream.as_raw_fd(), token, interest).is_err() {
                        continue;
                    }
                    let cell = Arc::new(ConnCell {
                        token,
                        peer: Some(peer),
                        shared: Mutex::new(ConnShared {
                            pending: VecDeque::new(),
                            out: Vec::new(),
                            busy: false,
                            closed: false,
                            done: false,
                            state: Some(self.service.new_conn()),
                        }),
                    });
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            cell,
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            proto: Proto::Unknown,
                            interest,
                            peer_closed: false,
                            broken: false,
                            closing: false,
                        },
                    );
                    self.conn_accepted.inc();
                    self.conn_open.inc();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // EMFILE and friends: stop; the level-triggered event
                // re-fires and we retry after the next wait
                Err(_) => break,
            }
        }
    }

    fn on_waker(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.waker_rx).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        for token in self.completions.take() {
            self.pump_out(token);
        }
    }

    fn on_readable(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut buf = [0u8; 16 * 1024];
        let mut total = 0usize;
        loop {
            match (&conn.stream).read(&mut buf) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    if !conn.broken {
                        conn.rbuf.extend_from_slice(&buf[..n]);
                    }
                    total += n;
                    if total >= READ_QUANTUM {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_conn(token);
                    return;
                }
            }
        }
        let frames = parse_frames(self.conns.get_mut(&token).expect("still present"));
        self.deliver(token, frames);
        let conn = self.conns.get_mut(&token).expect("still present");
        if conn.peer_closed || conn.broken {
            // EOF stays readable forever under level triggering — mask
            // reads off; writes (and the completion path) finish up
            let interest = conn.interest & !(EPOLLIN | EPOLLRDHUP);
            if interest != conn.interest {
                conn.interest = interest;
                let _ = self.epoll.modify(conn.stream.as_raw_fd(), token, interest);
            }
        }
        if conn.peer_closed {
            let quiescent = {
                let g = conn.cell.shared.lock();
                g.pending.is_empty() && !g.busy && g.out.is_empty()
            };
            if quiescent && conn.wbuf.is_empty() {
                self.drop_conn(token);
            }
        }
    }

    /// Queue parsed frames for dispatch, scheduling the connection on
    /// the pool if no worker currently owns it.
    fn deliver(&mut self, token: u64, frames: Vec<Frame>) {
        if frames.is_empty() {
            return;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let schedule = {
            let mut g = conn.cell.shared.lock();
            if g.done {
                return; // closing: no further requests accepted
            }
            self.inflight
                .fetch_add(frames.len() as u64, Ordering::SeqCst);
            let framed = Instant::now();
            g.pending.extend(frames.into_iter().map(|f| (f, framed)));
            if g.busy {
                false
            } else {
                g.busy = true;
                true
            }
        };
        if schedule {
            let _ = self.inject.send(Arc::clone(&conn.cell));
        }
    }

    /// Move completed response bytes toward the socket; close when a
    /// finished connection drains.
    fn pump_out(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        {
            let mut g = conn.cell.shared.lock();
            if !g.out.is_empty() {
                conn.wbuf.append(&mut g.out);
            }
            if (g.done || conn.peer_closed) && g.pending.is_empty() && !g.busy {
                conn.closing = true;
            }
        }
        while !conn.wbuf.is_empty() {
            match (&conn.stream).write(&conn.wbuf) {
                Ok(0) => {
                    self.drop_conn(token);
                    return;
                }
                Ok(n) => {
                    conn.wbuf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_conn(token);
                    return;
                }
            }
        }
        if conn.wbuf.is_empty() {
            if conn.closing {
                self.drop_conn(token);
                return;
            }
            if conn.interest & EPOLLOUT != 0 {
                conn.interest &= !EPOLLOUT;
                let _ = self
                    .epoll
                    .modify(conn.stream.as_raw_fd(), token, conn.interest);
            }
        } else if conn.interest & EPOLLOUT == 0 {
            conn.interest |= EPOLLOUT;
            let _ = self
                .epoll
                .modify(conn.stream.as_raw_fd(), token, conn.interest);
        }
    }

    fn drop_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        self.epoll.delete(conn.stream.as_raw_fd());
        conn.cell.shared.lock().closed = true;
        self.conn_open.dec();
    }
}

/// Frame whatever `rbuf` holds. Framing-fatal conditions mark the
/// connection broken and emit their response as an in-order
/// [`Frame::Raw`].
fn parse_frames<C>(conn: &mut Conn<C>) -> Vec<Frame> {
    let mut frames = Vec::new();
    while !conn.broken {
        match &mut conn.proto {
            Proto::Unknown => match sniff(&conn.rbuf) {
                None => break,
                Some(true) => conn.proto = Proto::Http(HttpDecoder::new()),
                Some(false) => conn.proto = Proto::Json,
            },
            // The Json arm also frames binary: `sniff` routes anything
            // that isn't an HTTP method here, and 0xB5 (frame magic) is
            // not valid JSON, so the two formats coexist per-frame on
            // one connection (a client can `hello` in JSON, then switch).
            Proto::Json if conn.rbuf.first() == Some(&frame::FRAME_MAGIC) => {
                match frame::frame_len(&conn.rbuf) {
                    Ok(None) => break, // header still arriving
                    // a complete header only promises a length: the
                    // body may still be in flight (a batch split across
                    // TCP reads), so wait — draining early would panic
                    // the loop thread. The same MAX_LINE bound as the
                    // JSON arm caps how much one frame can buffer here
                    // (frame_len's per-opcode caps already reject
                    // hostile lengths for everything but state
                    // shipping).
                    Ok(Some(total)) if total > MAX_LINE => {
                        conn.broken = true;
                        let mut bytes = Vec::new();
                        frame::encode_error(
                            &mut bytes,
                            &format!("bad frame: exceeds {MAX_LINE} bytes"),
                        );
                        frames.push(Frame::Raw { bytes, close: true });
                        break;
                    }
                    Ok(Some(total)) if conn.rbuf.len() < total => break, // body still arriving
                    Ok(Some(total)) => {
                        let raw: Vec<u8> = conn.rbuf.drain(..total).collect();
                        frames.push(Frame::Binary(raw));
                    }
                    Err(e) => {
                        conn.broken = true;
                        let mut bytes = Vec::new();
                        frame::encode_error(&mut bytes, &format!("bad frame: {e}"));
                        frames.push(Frame::Raw { bytes, close: true });
                        break;
                    }
                }
            }
            Proto::Json => match conn.rbuf.iter().position(|&b| b == b'\n') {
                Some(idx) => {
                    let mut line: Vec<u8> = conn.rbuf.drain(..=idx).collect();
                    line.pop(); // the \n
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    // mirror `BufRead::lines`: invalid UTF-8 tears the
                    // connection down without a response
                    let Ok(line) = String::from_utf8(line) else {
                        conn.broken = true;
                        frames.push(Frame::Raw {
                            bytes: Vec::new(),
                            close: true,
                        });
                        break;
                    };
                    if line.trim().is_empty() {
                        continue;
                    }
                    frames.push(Frame::Line(line));
                }
                None => {
                    if conn.rbuf.len() > MAX_LINE {
                        conn.broken = true;
                        frames.push(Frame::Raw {
                            bytes: format!(
                                "{{\"error\":{{\"message\":\"bad request: line exceeds {MAX_LINE} bytes\"}}}}\n"
                            )
                            .into_bytes(),
                            close: true,
                        });
                    }
                    break;
                }
            },
            Proto::Http(decoder) => match decoder.advance(&mut conn.rbuf) {
                Advance::NeedMore => break,
                Advance::Interim(bytes) => frames.push(Frame::Raw {
                    bytes,
                    close: false,
                }),
                Advance::Request(req) => frames.push(Frame::Http(req)),
                Advance::Fatal(resp) => {
                    conn.broken = true;
                    frames.push(Frame::Raw {
                        bytes: http::encode(&resp),
                        close: true,
                    });
                    break;
                }
            },
        }
    }
    frames
}

/// A pool worker: claim a connection, drain its frame queue in order,
/// hand the response bytes back, repeat. Dispatch may block (flush
/// barriers, ingest backpressure) — that is the point of running it
/// here and not on the loop.
fn worker_loop<S: Service>(
    service: Arc<S>,
    rx: Receiver<Arc<ConnCell<S::Conn>>>,
    completions: Arc<Completions>,
    inflight: Arc<AtomicU64>,
) {
    while let Ok(cell) = rx.recv() {
        loop {
            let (frames, state) = {
                let mut g = cell.shared.lock();
                if g.pending.is_empty() || g.done {
                    let leftover = g.pending.len() as u64;
                    g.pending.clear();
                    g.busy = false;
                    drop(g);
                    if leftover > 0 {
                        inflight.fetch_sub(leftover, Ordering::SeqCst);
                    }
                    // notify even with nothing new to write: the loop
                    // must re-check its close condition now that `busy`
                    // is false, or a half-closed connection whose final
                    // pump raced this transition would never be torn
                    // down (its read interest is already masked off, so
                    // no further event arrives on its own)
                    completions.notify(cell.token);
                    break;
                }
                let frames: Vec<(Frame, Instant)> = g.pending.drain(..).collect();
                let state = g.state.take().expect("state present while busy");
                (frames, state)
            };
            let mut state = state;
            let n = frames.len() as u64;
            let mut out = Vec::new();
            let mut done = false;
            for (frame, framed_at) in frames {
                if done {
                    break; // a close drops the rest, as the threaded
                           // front-end did by not reading past `bye`
                }
                let meta = RequestMeta {
                    peer: cell.peer,
                    queued_ns: framed_at.elapsed().as_nanos() as u64,
                };
                match frame {
                    Frame::Line(line) => {
                        let (resp, close) = service.handle_line(&mut state, &line, &meta);
                        out.extend_from_slice(resp.as_bytes());
                        out.push(b'\n');
                        done = close;
                    }
                    Frame::Binary(raw) => {
                        let (resp, close) = service.handle_frame(&mut state, &raw, &meta);
                        out.extend_from_slice(&resp);
                        done = close;
                    }
                    Frame::Http(req) => {
                        let resp = service.handle_http(&mut state, req, &meta);
                        done = resp.close;
                        out.extend_from_slice(&http::encode(&resp));
                    }
                    Frame::Raw { bytes, close } => {
                        out.extend_from_slice(&bytes);
                        done = close;
                    }
                }
            }
            {
                let mut g = cell.shared.lock();
                g.state = Some(state);
                if !g.closed {
                    g.out.extend_from_slice(&out);
                }
                if done {
                    g.done = true;
                    let dropped = g.pending.len() as u64;
                    g.pending.clear();
                    inflight.fetch_sub(dropped, Ordering::SeqCst);
                }
                inflight.fetch_sub(n, Ordering::SeqCst);
            }
            completions.notify(cell.token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sniff_distinguishes_protocols() {
        assert_eq!(sniff(b""), None, "no bytes, no verdict");
        assert_eq!(sniff(b"GE"), None, "could still become GET");
        assert_eq!(sniff(b"GET "), Some(true));
        assert_eq!(sniff(b"DELETE /x"), Some(true));
        assert_eq!(sniff(b"{\"lookup\""), Some(false));
        assert_eq!(sniff(b"\"stats\""), Some(false));
        assert_eq!(sniff(b"GETX"), Some(false), "not a method after all");
    }

    #[test]
    fn decoder_handles_split_and_pipelined_requests() {
        let mut d = HttpDecoder::new();
        let mut buf: Vec<u8> = b"GET /stats HT".to_vec();
        assert!(matches!(d.advance(&mut buf), Advance::NeedMore));
        buf.extend_from_slice(
            b"TP/1.1\r\nHost: x\r\n\r\nPOST /flush HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi",
        );
        let Advance::Request(first) = d.advance(&mut buf) else {
            panic!("first request complete");
        };
        assert_eq!(first.method, "GET");
        assert_eq!(first.path, "/stats");
        assert!(!first.close, "HTTP/1.1 defaults to keep-alive");
        let Advance::Request(second) = d.advance(&mut buf) else {
            panic!("pipelined request complete");
        };
        assert_eq!(second.method, "POST");
        assert_eq!(second.body, b"hi");
        assert!(buf.is_empty());
    }

    #[test]
    fn decoder_rejects_oversized_heads() {
        let mut d = HttpDecoder::new();
        let mut buf = vec![b'A'; MAX_HTTP_HEAD + 10];
        let Advance::Fatal(resp) = d.advance(&mut buf) else {
            panic!("oversized head is fatal");
        };
        assert_eq!(resp.status, 431);
        assert!(resp.close);
    }

    #[test]
    fn decoder_matches_connection_tokens_in_comma_lists() {
        // "close" buried in a token list still closes...
        let mut d = HttpDecoder::new();
        let mut buf: Vec<u8> = b"GET /stats HTTP/1.1\r\nConnection: TE, close\r\n\r\n".to_vec();
        let Advance::Request(req) = d.advance(&mut buf) else {
            panic!("complete");
        };
        assert!(req.close, "'close' token honored inside a list");

        // ...and "keep-alive" in a list keeps an HTTP/1.0 conn open
        let mut d = HttpDecoder::new();
        let mut buf: Vec<u8> =
            b"GET /stats HTTP/1.0\r\nConnection: keep-alive, TE\r\n\r\n".to_vec();
        let Advance::Request(req) = d.advance(&mut buf) else {
            panic!("complete");
        };
        assert!(!req.close, "'keep-alive' token honored inside a list");
    }

    #[test]
    fn decoder_rejects_conflicting_content_lengths() {
        let mut d = HttpDecoder::new();
        let mut buf: Vec<u8> =
            b"POST /ingest HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nhihello"
                .to_vec();
        let Advance::Fatal(resp) = d.advance(&mut buf) else {
            panic!("conflicting content-lengths are fatal");
        };
        assert_eq!(resp.status, 400);
        assert!(resp.close);

        // identical repeats are tolerated
        let mut d = HttpDecoder::new();
        let mut buf: Vec<u8> =
            b"POST /flush HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi".to_vec();
        let Advance::Request(req) = d.advance(&mut buf) else {
            panic!("identical duplicates parse");
        };
        assert_eq!(req.body, b"hi");
    }

    /// A loop-side connection over a real loopback socket (the stream
    /// is never read in these tests; `parse_frames` only sees `rbuf`).
    fn test_conn() -> (Conn<()>, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let conn = Conn {
            stream,
            cell: Arc::new(ConnCell {
                token: TOKEN_CONN0,
                peer: None,
                shared: Mutex::new(ConnShared {
                    pending: VecDeque::new(),
                    out: Vec::new(),
                    busy: false,
                    closed: false,
                    done: false,
                    state: Some(()),
                }),
            }),
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            proto: Proto::Unknown,
            interest: 0,
            peer_closed: false,
            broken: false,
            closing: false,
        };
        (conn, peer)
    }

    #[test]
    fn partial_binary_frames_wait_for_the_rest() {
        let (mut conn, _peer) = test_conn();
        let mut wire = Vec::new();
        frame::encode_error(&mut wire, "payload long enough to split");

        // bare header: a known length, but no body yet — must not drain
        conn.rbuf.extend_from_slice(&wire[..frame::HEADER_LEN]);
        assert!(parse_frames(&mut conn).is_empty());
        assert!(!conn.broken);
        assert_eq!(conn.rbuf.len(), frame::HEADER_LEN, "buffer kept intact");

        // half the payload: still waiting
        conn.rbuf
            .extend_from_slice(&wire[frame::HEADER_LEN..wire.len() / 2]);
        assert!(parse_frames(&mut conn).is_empty());
        assert!(!conn.broken);

        // the rest arrives: exactly one complete frame comes out
        conn.rbuf.extend_from_slice(&wire[wire.len() / 2..]);
        let frames = parse_frames(&mut conn);
        assert_eq!(frames.len(), 1);
        let Frame::Binary(raw) = &frames[0] else {
            panic!("expected a binary frame");
        };
        assert_eq!(raw, &wire);
        assert!(conn.rbuf.is_empty());
        assert!(!conn.broken);
    }

    #[test]
    fn oversized_binary_frame_headers_break_the_connection() {
        let (mut conn, _peer) = test_conn();
        // a state-shipping opcode passes frame_len's per-opcode cap up
        // to 1 GiB, so the loop's own MAX_LINE bound has to stop it
        // from buffering that much
        let mut header = vec![
            frame::FRAME_MAGIC,
            frame::FRAME_VERSION,
            frame::OP_RESTORE,
            0,
        ];
        header.extend_from_slice(&(MAX_LINE as u32).to_le_bytes());
        conn.rbuf.extend_from_slice(&header);
        let frames = parse_frames(&mut conn);
        assert!(conn.broken);
        assert_eq!(frames.len(), 1);
        assert!(matches!(&frames[0], Frame::Raw { close: true, .. }));

        // a hostile length on a control opcode dies at frame_len instead
        let (mut conn, _peer) = test_conn();
        let mut header = vec![frame::FRAME_MAGIC, frame::FRAME_VERSION, frame::OP_FLUSH, 0];
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        conn.rbuf.extend_from_slice(&header);
        let frames = parse_frames(&mut conn);
        assert!(conn.broken);
        assert_eq!(frames.len(), 1);
        assert!(matches!(&frames[0], Frame::Raw { close: true, .. }));
    }

    #[test]
    fn decoder_flags_connection_close_and_queries() {
        let mut d = HttpDecoder::new();
        let mut buf: Vec<u8> =
            b"GET /top_k?attribute=price&k=3 HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec();
        let Advance::Request(req) = d.advance(&mut buf) else {
            panic!("complete");
        };
        assert!(req.close);
        assert_eq!(req.path, "/top_k");
        assert_eq!(req.query, "attribute=price&k=3");
    }
}
