//! # bdi-serve — the live integration service
//!
//! The tutorial's pipeline is a batch artifact: crawl, integrate, ship a
//! fused catalog. Real consumers of web-scale integration sit *between*
//! crawls — pages keep arriving while price-comparison queries keep
//! coming in. This crate turns the pipeline into a long-running daemon:
//!
//! * **Ingest path** — records flow through a bounded, backpressured
//!   queue into an [`engine::Engine`] wrapping the incremental linker;
//!   each arrival dirties a handful of clusters, fusion re-runs on those
//!   members only, and a fresh catalog generation is published
//!   atomically ([`gen::Swap`]).
//! * **Query path** — any number of reader threads resolve `lookup` /
//!   `filter` / `top_k` against the generation they loaded; a snapshot
//!   is an immutable `Arc`, so readers never observe a half-applied
//!   batch and never block the writer.
//! * **Wire protocol** — JSON lines over TCP ([`protocol`]): one request
//!   object per line, one response object per line. `nc` is a usable
//!   client. The full reference lives in `docs/PROTOCOL.md`.
//! * **Durability** (optional, [`server::DurabilityConfig`]) — every
//!   record is appended to a write-ahead log ([`wal`]) before it is
//!   applied, fsync'd in batches; periodic on-disk checkpoints
//!   ([`snapshot`]) of the full engine state bound the replay tail, so
//!   a restart — graceful or `kill -9` — recovers the exact pre-crash
//!   state from one snapshot load plus the WAL tail.
//!
//! The load driver ([`load`]) replays a synthetic world as an ingest
//! stream while reader threads hammer lookups, reporting ingest
//! throughput and query latency percentiles — the serve-path analogue
//! of the crate's batch experiments.
//!
//! * **Observability** — every stage of the serve path records into a
//!   `bdi-obs` registry: per-command request latency and payload-size
//!   histograms, engine stage timings (candidate generation, scoring,
//!   union, refresh), WAL append/fsync latency and fsync batch sizes,
//!   snapshot write and recovery replay timings. The registry is
//!   readable three ways: the `metrics` wire command, a Prometheus
//!   text-exposition file rewritten atomically on an interval
//!   ([`server::ServerConfig::metrics_file`]), and `bdi stats
//!   --prometheus`. Requests slower than a threshold can be logged
//!   ([`server::ServerConfig::slow_ms`]).

// `deny`, not `forbid`: the raw-epoll shim (`nio::sys`) and the raw
// mmap shim behind the WAL (`mmap`) are the two carved-out
// `#![allow(unsafe_code)]` modules; everything else stays unsafe-free.
#![deny(unsafe_code)]

pub mod bridge;
pub mod client;
pub mod engine;
pub mod fleet;
pub mod frame;
pub mod gen;
pub(crate) mod http;
pub mod load;
pub(crate) mod mmap;
pub(crate) mod nio;
pub mod protocol;
pub mod replica;
pub mod router;
pub mod server;
pub mod snapshot;
pub mod wal;

pub use bridge::BridgeIndex;
pub use client::{Client, HttpClient};
pub use engine::{Engine, EngineState};
pub use fleet::RoutingTable;
pub use gen::{Generation, ShardedIndex, Swap};
pub use load::{run_load, LoadConfig, LoadReport};
pub use nio::raise_nofile_limit;
pub use protocol::{
    MetricsBody, Request, Response, StatsBody, TraceBody, TraceTree, TraceTreeNode,
};
pub use router::{Router, RouterConfig};
pub use server::{DurabilityConfig, FrontEndKind, Server, ServerConfig};
pub use snapshot::Snapshot;
pub use wal::Wal;
