//! # bdi-serve — the live integration service
//!
//! The tutorial's pipeline is a batch artifact: crawl, integrate, ship a
//! fused catalog. Real consumers of web-scale integration sit *between*
//! crawls — pages keep arriving while price-comparison queries keep
//! coming in. This crate turns the pipeline into a long-running daemon:
//!
//! * **Ingest path** — records flow through a bounded, backpressured
//!   queue into an [`engine::Engine`] wrapping the incremental linker;
//!   each arrival dirties a handful of clusters, fusion re-runs on those
//!   members only, and a fresh catalog generation is published
//!   atomically ([`gen::Swap`]).
//! * **Query path** — any number of reader threads resolve `lookup` /
//!   `filter` / `top_k` against the generation they loaded; a snapshot
//!   is an immutable `Arc`, so readers never observe a half-applied
//!   batch and never block the writer.
//! * **Wire protocol** — JSON lines over TCP ([`protocol`]): one request
//!   object per line, one response object per line. `nc` is a usable
//!   client.
//!
//! The load driver ([`load`]) replays a synthetic world as an ingest
//! stream while reader threads hammer lookups, reporting ingest
//! throughput and query latency percentiles — the serve-path analogue
//! of the crate's batch experiments.

#![forbid(unsafe_code)]

pub mod client;
pub mod engine;
pub mod gen;
pub mod load;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use engine::Engine;
pub use gen::{Generation, ShardedIndex, Swap};
pub use load::{run_load, LoadConfig, LoadReport};
pub use protocol::{Request, Response};
pub use server::{Server, ServerConfig};
