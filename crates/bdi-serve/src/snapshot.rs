//! Generation snapshots: the engine's full state, atomically on disk.
//!
//! A snapshot bounds recovery cost: instead of replaying every record
//! ever ingested through the linker, recovery loads the last snapshot
//! (a straight deserialization — no pairwise matching) and replays only
//! the WAL tail past it. The ingest worker writes one whenever the tail
//! grows beyond the configured threshold, then compacts the WAL through
//! the snapshot position ([`crate::wal::Wal::compact_through`]).
//!
//! Writes are atomic in the classic way: serialize to `snapshot.json.tmp`,
//! fsync, rename over `snapshot.json`, fsync the directory. A crash
//! during the write leaves the previous snapshot intact; a crash between
//! snapshot and WAL compaction merely replays a longer tail (records are
//! idempotent to re-apply only if not already covered — the recovery path
//! skips entries below the snapshot position, so double-apply cannot
//! happen).

use crate::engine::{Engine, EngineState};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// File name of the live snapshot inside a data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";
const SNAPSHOT_TMP: &str = "snapshot.json.tmp";

/// One on-disk snapshot: the engine state plus the positions needed to
/// splice the WAL tail back on. Also the unit of WAL shipping — the
/// `sync` wire command carries one to bootstrap a replacement backend
/// (hence `Clone`: the wire path serializes a copy).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Snapshot {
    /// Generation sequence number published when this state was current.
    pub seq: u64,
    /// Absolute ingest position covered: every record at a position
    /// below this is inside `engine`; WAL entries at or past it are not.
    pub records: u64,
    /// The complete engine state (see [`EngineState`]).
    pub engine: EngineState,
}

impl Snapshot {
    /// Capture the current engine state at generation `seq`.
    pub fn capture(engine: &Engine, seq: u64) -> Self {
        let state = engine.export_state();
        Self {
            seq,
            records: state.records.len() as u64,
            engine: state,
        }
    }

    /// Atomically persist into `dir` (tmp + fsync + rename + dir fsync).
    pub fn write(&self, dir: &Path) -> std::io::Result<()> {
        self.write_timed(dir).map(|_| ())
    }

    /// [`Snapshot::write`], returning how long the whole persist took
    /// (serialize through directory fsync) — what the serve path
    /// records as `serve.snapshot.write.latency_ns`.
    pub fn write_timed(&self, dir: &Path) -> std::io::Result<std::time::Duration> {
        let t0 = std::time::Instant::now();
        std::fs::create_dir_all(dir)?;
        let body = serde_json::to_string(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = dir.join(SNAPSHOT_TMP);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
        File::open(dir)?.sync_all()?;
        Ok(t0.elapsed())
    }

    /// Load the snapshot from `dir`, if one exists. A missing file is
    /// `Ok(None)` (cold start); an unreadable or corrupt file is an
    /// error — silently ignoring it would resurrect a stale state.
    pub fn load(dir: &Path) -> std::io::Result<Option<Snapshot>> {
        let path = dir.join(SNAPSHOT_FILE);
        if !path.exists() {
            return Ok(None);
        }
        let text = std::fs::read_to_string(&path)?;
        let snapshot: Snapshot = serde_json::from_str(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("corrupt snapshot {}: {e}", path.display()),
            )
        })?;
        Ok(Some(snapshot))
    }

    /// Rebuild the engine this snapshot captured.
    pub fn restore_engine(self) -> std::io::Result<(Engine, u64, u64)> {
        let (seq, records) = (self.seq, self.records);
        if records != self.engine.records.len() as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "snapshot position disagrees with its record count",
            ));
        }
        let engine = Engine::from_state(self.engine).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "snapshot engine state is internally inconsistent",
            )
        })?;
        Ok((engine, seq, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_types::{Record, RecordId, SourceId};
    use std::path::PathBuf;

    fn rec(s: u32, q: u32, i: u32) -> Record {
        let mut r = Record::new(RecordId::new(SourceId(s), q), format!("Gadget{i} model{i}"));
        r.identifiers.push(format!("XXX-YYY-{i:05}"));
        r
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bdi-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_load_restore_round_trips() {
        let dir = tmp_dir("roundtrip");
        let mut engine = Engine::new(0.9);
        for i in 0..8u32 {
            engine.ingest(rec(i % 2, i, i / 2));
        }
        let catalog = engine.refresh();
        Snapshot::capture(&engine, 3).write(&dir).unwrap();

        let loaded = Snapshot::load(&dir).unwrap().expect("snapshot exists");
        let (mut restored, seq, records) = loaded.restore_engine().unwrap();
        assert_eq!(seq, 3);
        assert_eq!(records, 8);
        assert_eq!(restored.records(), engine.records());
        let again = restored.refresh();
        assert_eq!(again.len(), catalog.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_is_none_and_corrupt_is_error() {
        let dir = tmp_dir("corrupt");
        assert!(Snapshot::load(&dir).unwrap().is_none());
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(SNAPSHOT_FILE), b"{not json").unwrap();
        assert!(Snapshot::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let dir = tmp_dir("rewrite");
        let mut engine = Engine::new(0.9);
        engine.ingest(rec(0, 0, 0));
        engine.refresh();
        Snapshot::capture(&engine, 1).write(&dir).unwrap();
        engine.ingest(rec(1, 0, 0));
        engine.refresh();
        Snapshot::capture(&engine, 2).write(&dir).unwrap();
        let loaded = Snapshot::load(&dir).unwrap().unwrap();
        assert_eq!(loaded.seq, 2);
        assert_eq!(loaded.records, 2);
        assert!(
            !dir.join(SNAPSHOT_TMP).exists(),
            "tmp file consumed by rename"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
