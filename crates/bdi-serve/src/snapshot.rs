//! Generation snapshots: the engine's full state, atomically on disk.
//!
//! A snapshot bounds recovery cost: instead of replaying every record
//! ever ingested through the linker, recovery loads the last snapshot
//! (a straight deserialization — no pairwise matching) and replays only
//! the WAL tail past it. The ingest worker writes one whenever the tail
//! grows beyond the configured threshold, then compacts the WAL through
//! the snapshot position ([`crate::wal::Wal::compact_through`]).
//!
//! Writes are atomic in the classic way: serialize to `snapshot.bin.tmp`,
//! fsync, rename over `snapshot.bin`, fsync the directory. A crash
//! during the write leaves the previous snapshot intact; a crash between
//! snapshot and WAL compaction merely replays a longer tail (records are
//! idempotent to re-apply only if not already covered — the recovery path
//! skips entries below the snapshot position, so double-apply cannot
//! happen).
//!
//! The on-disk body is the crate's binary frame encoding
//! ([`crate::frame::put_snapshot`]) behind an 9-byte header and ahead
//! of a trailing CRC-32 — a straight walk of the engine state with no
//! `serde_json` value tree on either side:
//!
//! ```text
//! [magic "BDISNAP1" 8B][version u8 = 1][snapshot body][crc32 u32 LE]
//! ```
//!
//! Snapshots written by older builds (`snapshot.json`) still load; the
//! first write after an upgrade replaces them with the binary file and
//! removes the text one, so a data directory converges.

use crate::engine::{Engine, EngineState};
use crate::frame;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// File name of the live snapshot inside a data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.bin.tmp";
/// Legacy JSON snapshot file name — loaded when no binary snapshot
/// exists, removed once a binary one is written.
pub const SNAPSHOT_LEGACY_FILE: &str = "snapshot.json";
const SNAPSHOT_LEGACY_TMP: &str = "snapshot.json.tmp";

/// Magic bytes opening a binary snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"BDISNAP1";
const SNAPSHOT_VERSION: u8 = 1;

/// One on-disk snapshot: the engine state plus the positions needed to
/// splice the WAL tail back on. Also the unit of WAL shipping — the
/// `sync` wire command carries one to bootstrap a replacement backend
/// (hence `Clone`: the wire path serializes a copy).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Snapshot {
    /// Generation sequence number published when this state was current.
    pub seq: u64,
    /// Absolute ingest position covered: every record at a position
    /// below this is inside `engine`; WAL entries at or past it are not.
    pub records: u64,
    /// The complete engine state (see [`EngineState`]).
    pub engine: EngineState,
}

impl Snapshot {
    /// Capture the current engine state at generation `seq`.
    pub fn capture(engine: &Engine, seq: u64) -> Self {
        let state = engine.export_state();
        Self {
            seq,
            records: state.records.len() as u64,
            engine: state,
        }
    }

    /// Atomically persist into `dir` (tmp + fsync + rename + dir fsync).
    pub fn write(&self, dir: &Path) -> std::io::Result<()> {
        self.write_timed(dir).map(|_| ())
    }

    /// [`Snapshot::write`], returning how long the whole persist took
    /// (serialize through directory fsync) — what the serve path
    /// records as `serve.snapshot.write.latency_ns`.
    pub fn write_timed(&self, dir: &Path) -> std::io::Result<std::time::Duration> {
        let t0 = std::time::Instant::now();
        std::fs::create_dir_all(dir)?;
        let mut body = Vec::with_capacity(4096);
        body.extend_from_slice(SNAPSHOT_MAGIC);
        body.push(SNAPSHOT_VERSION);
        frame::put_snapshot(&mut body, self);
        let crc = frame::crc32(&body[SNAPSHOT_MAGIC.len() + 1..]);
        body.extend_from_slice(&crc.to_le_bytes());
        let tmp = dir.join(SNAPSHOT_TMP);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&body)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
        File::open(dir)?.sync_all()?;
        // the binary file now owns the state: drop a leftover legacy
        // text snapshot so a rollback cannot resurrect stale state
        for stale in [SNAPSHOT_LEGACY_FILE, SNAPSHOT_LEGACY_TMP] {
            let path = dir.join(stale);
            if path.exists() {
                std::fs::remove_file(&path)?;
            }
        }
        Ok(t0.elapsed())
    }

    /// Load the snapshot from `dir`, if one exists — the binary file
    /// when present, else a legacy JSON snapshot. A missing file is
    /// `Ok(None)` (cold start); an unreadable or corrupt file is an
    /// error — silently ignoring it would resurrect a stale state.
    pub fn load(dir: &Path) -> std::io::Result<Option<Snapshot>> {
        let path = dir.join(SNAPSHOT_FILE);
        if path.exists() {
            let bytes = std::fs::read(&path)?;
            return Self::decode_file(&bytes).map(Some).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("corrupt snapshot {}: {e}", path.display()),
                )
            });
        }
        let legacy = dir.join(SNAPSHOT_LEGACY_FILE);
        if !legacy.exists() {
            return Ok(None);
        }
        let text = std::fs::read_to_string(&legacy)?;
        let snapshot: Snapshot = serde_json::from_str(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("corrupt snapshot {}: {e}", legacy.display()),
            )
        })?;
        Ok(Some(snapshot))
    }

    /// Decode a binary snapshot file image (header + body + CRC).
    fn decode_file(bytes: &[u8]) -> std::io::Result<Snapshot> {
        let header = SNAPSHOT_MAGIC.len() + 1;
        if bytes.len() < header + 4 || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "missing snapshot magic",
            ));
        }
        if bytes[SNAPSHOT_MAGIC.len()] != SNAPSHOT_VERSION {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "unsupported snapshot version {}",
                    bytes[SNAPSHOT_MAGIC.len()]
                ),
            ));
        }
        let body = &bytes[header..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        let computed = frame::crc32(body);
        if stored != computed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("snapshot CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"),
            ));
        }
        let mut r = frame::Reader::new(body);
        let snapshot = frame::read_snapshot(&mut r)?;
        if r.remaining() != 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "trailing bytes after snapshot body",
            ));
        }
        Ok(snapshot)
    }

    /// Rebuild the engine this snapshot captured.
    pub fn restore_engine(self) -> std::io::Result<(Engine, u64, u64)> {
        let (seq, records) = (self.seq, self.records);
        if records != self.engine.records.len() as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "snapshot position disagrees with its record count",
            ));
        }
        let engine = Engine::from_state(self.engine).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "snapshot engine state is internally inconsistent",
            )
        })?;
        Ok((engine, seq, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_types::{Record, RecordId, SourceId};
    use std::path::PathBuf;

    fn rec(s: u32, q: u32, i: u32) -> Record {
        let mut r = Record::new(RecordId::new(SourceId(s), q), format!("Gadget{i} model{i}"));
        r.identifiers.push(format!("XXX-YYY-{i:05}"));
        r
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bdi-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_load_restore_round_trips() {
        let dir = tmp_dir("roundtrip");
        let mut engine = Engine::new(0.9);
        for i in 0..8u32 {
            engine.ingest(rec(i % 2, i, i / 2));
        }
        let catalog = engine.refresh();
        Snapshot::capture(&engine, 3).write(&dir).unwrap();

        let loaded = Snapshot::load(&dir).unwrap().expect("snapshot exists");
        let (mut restored, seq, records) = loaded.restore_engine().unwrap();
        assert_eq!(seq, 3);
        assert_eq!(records, 8);
        assert_eq!(restored.records(), engine.records());
        let again = restored.refresh();
        assert_eq!(again.len(), catalog.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_is_none_and_corrupt_is_error() {
        let dir = tmp_dir("corrupt");
        assert!(Snapshot::load(&dir).unwrap().is_none());
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(SNAPSHOT_FILE), b"{not a snapshot").unwrap();
        assert!(Snapshot::load(&dir).is_err(), "bad magic is an error");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_bit_fails_the_crc() {
        let dir = tmp_dir("bitflip");
        let mut engine = Engine::new(0.9);
        engine.ingest(rec(0, 0, 0));
        engine.refresh();
        Snapshot::capture(&engine, 1).write(&dir).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = Snapshot::load(&dir).unwrap_err();
        assert!(err.to_string().contains("CRC"), "got: {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_json_snapshot_loads_and_is_replaced_on_write() {
        let dir = tmp_dir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let mut engine = Engine::new(0.9);
        for i in 0..4u32 {
            engine.ingest(rec(i % 2, i, i / 2));
        }
        engine.refresh();
        let snap = Snapshot::capture(&engine, 2);
        // hand-write the legacy text format an older build would leave
        std::fs::write(
            dir.join(SNAPSHOT_LEGACY_FILE),
            serde_json::to_string(&snap).unwrap(),
        )
        .unwrap();

        let loaded = Snapshot::load(&dir).unwrap().expect("legacy loads");
        assert_eq!(loaded.seq, 2);
        assert_eq!(loaded.records, 4);
        let (mut restored, _, _) = loaded.clone().restore_engine().unwrap();
        assert_eq!(restored.refresh().len(), engine.refresh().len());

        // the next write converges the directory on the binary format
        loaded.write(&dir).unwrap();
        assert!(dir.join(SNAPSHOT_FILE).exists());
        assert!(
            !dir.join(SNAPSHOT_LEGACY_FILE).exists(),
            "legacy file removed after the binary write"
        );
        assert_eq!(Snapshot::load(&dir).unwrap().unwrap().records, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let dir = tmp_dir("rewrite");
        let mut engine = Engine::new(0.9);
        engine.ingest(rec(0, 0, 0));
        engine.refresh();
        Snapshot::capture(&engine, 1).write(&dir).unwrap();
        engine.ingest(rec(1, 0, 0));
        engine.refresh();
        Snapshot::capture(&engine, 2).write(&dir).unwrap();
        let loaded = Snapshot::load(&dir).unwrap().unwrap();
        assert_eq!(loaded.seq, 2);
        assert_eq!(loaded.records, 2);
        assert!(
            !dir.join(SNAPSHOT_TMP).exists(),
            "tmp file consumed by rename"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
