//! The versioned, length-framed binary record format.
//!
//! One codec backs all three byte paths that used to round-trip through
//! JSON text: the WAL (`wal.rs` appends length+CRC-framed record bodies
//! into mmap'd segments), snapshots (`snapshot.rs` serializes
//! [`Snapshot`] without building a `serde::Value` tree), and the wire
//! (`hello` negotiates the `binary-frames` feature; batches then ship as
//! one contiguous frame instead of a JSON line per batch).
//!
//! ## Wire frame layout
//!
//! ```text
//! offset  size  field
//! 0       1     magic (0xB5 — non-ASCII, so it can never open a JSON
//!               line or an HTTP method; the per-message autodetect in
//!               the front ends keys off this byte)
//! 1       1     format version (0x01)
//! 2       1     opcode
//! 3       1     flags (0x00 unless an extension is present)
//! 4       4     payload length, u32 LE
//! 8       len   payload
//! 8+len   4     CRC-32 (IEEE), u32 LE, over bytes [1, 8+len)
//! ```
//!
//! The CRC covers everything after the magic byte — version, opcode,
//! flags, length, and payload — so a flipped bit anywhere in the
//! frame is caught, while the magic byte stays a pure dispatch tag.
//!
//! Byte 3 was reserved-zero through format version 0x01's debut and is
//! now a **flags** byte. The one defined flag, [`FLAG_TRACE`], prefixes
//! the payload with a 16-byte trace-context extension (`u64` trace id +
//! `u64` parent span id, both LE); the length field counts the
//! extension, so framing math is unchanged and an unflagged frame is
//! byte-identical to the pre-flag format. Senders only set flags to
//! peers that advertised the matching `hello` feature (`trace-context`
//! for [`FLAG_TRACE`]) — an old receiver would misread the extension as
//! payload — and receivers reject unknown flag bits
//! ([`open_frame_traced`]).
//!
//! ## Body encoding
//!
//! All integers are little-endian. Strings are `u32` length + UTF-8
//! bytes. Floats are IEEE-754 bit patterns (`f64::to_bits`), which is
//! lossless and bit-stable — [`OrderedF64`] already excludes NaN.
//! Decoding validates every length against the remaining buffer and
//! never panics on corrupt input. String decoding yields borrowed
//! `&str` views into the receive buffer ([`Reader::read_str`]); an
//! owned [`Record`] is built with exactly one allocation per string
//! field and no intermediate value tree.
//!
//! The WAL uses a leaner per-record frame (`u32` length + `u32` CRC +
//! body, see `wal.rs`) built from the same body codec and
//! [`crc32`] — the full wire header would be dead weight inside a
//! segment file that already knows its own format.

use crate::engine::EngineState;
use crate::protocol::{Request, Response};
use crate::snapshot::Snapshot;
use bdi_core::catalog::{Catalog, CatalogEntry};
use bdi_types::{Record, RecordId, SourceId, Unit, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read};

/// First byte of every binary frame.
pub const FRAME_MAGIC: u8 = 0xB5;
/// Format generation; bumped on any incompatible layout change.
pub const FRAME_VERSION: u8 = 0x01;
/// Fixed header size (magic + version + opcode + reserved + length).
pub const HEADER_LEN: usize = 8;
/// Trailing CRC size.
pub const TRAILER_LEN: usize = 4;
/// Upper bound on a single frame's payload — a defense against a
/// corrupt or hostile length field committing us to a huge allocation.
/// Only the state-shipping opcodes ([`OP_RESTORE`], [`OP_SYNC_STATE`])
/// get this generous bound — they carry a full snapshot; everything
/// else is capped far lower by [`payload_cap`].
pub const MAX_PAYLOAD: usize = 1 << 30;
/// Payload cap for [`OP_INGEST_BATCH`] — mirrors the front ends' JSON
/// line cap, so a batch that fits as a JSON line fits as a frame.
pub const MAX_BATCH_PAYLOAD: usize = 256 << 20;
/// Payload cap for every other opcode (control frames and errors carry
/// at most a few integers or a message string).
pub const MAX_CONTROL_PAYLOAD: usize = 1 << 20;

/// Submit a batch of records (payload: `u32` count + record bodies).
pub const OP_INGEST_BATCH: u8 = 0x01;
/// Durability + visibility barrier (empty payload).
pub const OP_FLUSH: u8 = 0x02;
/// Ship state from an absolute position (payload: `u64 from`).
pub const OP_SYNC: u8 = 0x03;
/// Install shipped state (payload: position + optional snapshot + tail
/// records — see [`put_state_body`]).
pub const OP_RESTORE: u8 = 0x04;
/// Batch accepted (payload: `u64 submitted`).
pub const OP_ACK: u8 = 0x05;
/// Flush completed (payload: `u64 generation`, `u64 applied`).
pub const OP_FLUSHED: u8 = 0x06;
/// Shipped state reply (payload mirrors [`OP_RESTORE`]'s body).
pub const OP_SYNC_STATE: u8 = 0x07;
/// Restore installed (payload: `u64 generation`, `u64 records`).
pub const OP_RESTORED: u8 = 0x08;
/// Request failed (payload: message string).
pub const OP_ERROR: u8 = 0x09;

/// Header flag (byte 3, bit 0): the payload starts with a 16-byte
/// trace-context extension — `u64` trace id + `u64` parent span id.
/// Only sent to peers that negotiated the `trace-context` feature.
pub const FLAG_TRACE: u8 = 0x01;
/// Size of the [`FLAG_TRACE`] payload prefix.
pub const TRACE_EXT_LEN: usize = 16;

/// Every opcode with its wire name, in opcode order. The docs-drift
/// check cross-references this table against the "binary frames"
/// section of PROTOCOL.md, and the names deliberately match the JSON
/// commands they mirror.
pub const OPCODES: &[(u8, &str)] = &[
    (OP_INGEST_BATCH, "ingest_batch"),
    (OP_FLUSH, "flush"),
    (OP_SYNC, "sync"),
    (OP_RESTORE, "restore"),
    (OP_ACK, "ack"),
    (OP_FLUSHED, "flushed"),
    (OP_SYNC_STATE, "sync_state"),
    (OP_RESTORED, "restored"),
    (OP_ERROR, "error"),
];

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// The largest payload a receiver will accept for `opcode`. Applied at
/// the framing layer ([`frame_len`]), before any allocation or
/// buffering, so a corrupt or hostile 8-byte header can only commit a
/// receiver to the allocation its opcode plausibly needs — unknown
/// opcodes get the small cap.
pub fn payload_cap(opcode: u8) -> usize {
    match opcode {
        OP_RESTORE | OP_SYNC_STATE => MAX_PAYLOAD,
        OP_INGEST_BATCH => MAX_BATCH_PAYLOAD,
        _ => MAX_CONTROL_PAYLOAD,
    }
}

/// A `usize` length as the `u32` the wire encoding carries. Lengths
/// beyond `u32::MAX` cannot be represented; panicking here turns what
/// would otherwise be a silently mis-framed (yet validly-CRC'd)
/// encoding into a loud failure at the encode site.
fn len_u32(n: usize) -> u32 {
    u32::try_from(n).expect("length exceeds u32::MAX and cannot be frame-encoded")
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, built at compile time.
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Primitive writers. All append to a caller-owned Vec so encode
// buffers can be reused across batches.
// ---------------------------------------------------------------------

/// Append a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a `u32`, little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its IEEE-754 bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, len_u32(s.len()));
    buf.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------
// Bounds-checked reader over a borrowed buffer.
// ---------------------------------------------------------------------

/// Cursor over a received byte buffer. Every read validates length
/// against the remaining bytes; strings come back as borrowed views.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset from the start of the buffer.
    pub fn pos(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(bad(format!(
                "truncated frame body: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn read_u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn read_u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn read_u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `f64` bit pattern.
    pub fn read_f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Read a `u64` that must fit a `usize` (collection sizes).
    pub fn read_len(&mut self) -> io::Result<usize> {
        let v = self.read_u64()?;
        usize::try_from(v).map_err(|_| bad(format!("length {v} overflows usize")))
    }

    /// Read a length-prefixed string as a borrowed view into the
    /// receive buffer — the zero-copy half of batch decoding.
    pub fn read_str(&mut self) -> io::Result<&'a str> {
        let len = self.read_u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|e| bad(format!("invalid UTF-8 in string: {e}")))
    }
}

// ---------------------------------------------------------------------
// Value / Unit / Record bodies.
// ---------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_STR: u8 = 1;
const TAG_NUM: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_QUANTITY: u8 = 4;
const TAG_LIST: u8 = 5;

/// Stable `u8` tag for a [`Unit`]. Explicit in both directions so the
/// on-disk format cannot drift if the enum is ever reordered.
pub fn unit_tag(unit: Unit) -> u8 {
    match unit {
        Unit::Millimeter => 0,
        Unit::Centimeter => 1,
        Unit::Meter => 2,
        Unit::Inch => 3,
        Unit::Gram => 4,
        Unit::Kilogram => 5,
        Unit::Ounce => 6,
        Unit::Pound => 7,
        Unit::Megabyte => 8,
        Unit::Gigabyte => 9,
        Unit::Terabyte => 10,
        Unit::Hertz => 11,
        Unit::Kilohertz => 12,
        Unit::Megahertz => 13,
        Unit::Gigahertz => 14,
        Unit::Watt => 15,
        Unit::Usd => 16,
        Unit::Eur => 17,
        Unit::Count => 18,
    }
}

fn unit_from_tag(tag: u8) -> io::Result<Unit> {
    Ok(match tag {
        0 => Unit::Millimeter,
        1 => Unit::Centimeter,
        2 => Unit::Meter,
        3 => Unit::Inch,
        4 => Unit::Gram,
        5 => Unit::Kilogram,
        6 => Unit::Ounce,
        7 => Unit::Pound,
        8 => Unit::Megabyte,
        9 => Unit::Gigabyte,
        10 => Unit::Terabyte,
        11 => Unit::Hertz,
        12 => Unit::Kilohertz,
        13 => Unit::Megahertz,
        14 => Unit::Gigahertz,
        15 => Unit::Watt,
        16 => Unit::Usd,
        17 => Unit::Eur,
        18 => Unit::Count,
        other => return Err(bad(format!("unknown unit tag {other}"))),
    })
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, TAG_NULL),
        Value::Str(s) => {
            put_u8(buf, TAG_STR);
            put_str(buf, s);
        }
        Value::Num(n) => {
            put_u8(buf, TAG_NUM);
            put_f64(buf, n.get());
        }
        Value::Bool(b) => {
            put_u8(buf, TAG_BOOL);
            put_u8(buf, *b as u8);
        }
        Value::Quantity { magnitude, unit } => {
            put_u8(buf, TAG_QUANTITY);
            put_f64(buf, magnitude.get());
            put_u8(buf, unit_tag(*unit));
        }
        Value::List(items) => {
            put_u8(buf, TAG_LIST);
            put_u32(buf, len_u32(items.len()));
            for item in items {
                put_value(buf, item);
            }
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> io::Result<Value> {
    Ok(match r.read_u8()? {
        TAG_NULL => Value::Null,
        TAG_STR => Value::Str(r.read_str()?.to_owned()),
        TAG_NUM => Value::num_checked(r.read_f64()?)?,
        TAG_BOOL => Value::Bool(r.read_u8()? != 0),
        TAG_QUANTITY => {
            let magnitude = r.read_f64()?;
            let unit = unit_from_tag(r.read_u8()?)?;
            match bdi_types::OrderedF64::new(magnitude) {
                Some(m) => Value::Quantity { magnitude: m, unit },
                None => return Err(bad("NaN quantity magnitude")),
            }
        }
        TAG_LIST => {
            let n = r.read_u32()? as usize;
            // Cap the pre-allocation by what the buffer could possibly
            // hold (1 byte per element minimum).
            let mut items = Vec::with_capacity(n.min(r.remaining()));
            for _ in 0..n {
                items.push(read_value(r)?);
            }
            Value::List(items)
        }
        other => return Err(bad(format!("unknown value tag {other}"))),
    })
}

trait NumChecked {
    fn num_checked(v: f64) -> io::Result<Value>;
}

impl NumChecked for Value {
    fn num_checked(v: f64) -> io::Result<Value> {
        match bdi_types::OrderedF64::new(v) {
            Some(n) => Ok(Value::Num(n)),
            None => Err(bad("NaN numeric value")),
        }
    }
}

/// Append one record body: id, timestamp, title, identifiers,
/// attributes — a flat walk of the struct, no intermediate tree.
pub fn put_record(buf: &mut Vec<u8>, record: &Record) {
    put_u32(buf, record.id.source.0);
    put_u32(buf, record.id.seq);
    put_u32(buf, record.timestamp);
    put_str(buf, &record.title);
    put_u32(buf, len_u32(record.identifiers.len()));
    for ident in &record.identifiers {
        put_str(buf, ident);
    }
    put_u32(buf, len_u32(record.attributes.len()));
    for (name, value) in &record.attributes {
        put_str(buf, name);
        put_value(buf, value);
    }
}

/// Decode one record body at the reader's cursor. String fields are
/// first borrowed from the buffer ([`Reader::read_str`]) and then
/// promoted to owned storage — one allocation per string, zero
/// intermediate `Value`-tree nodes.
pub fn read_record(r: &mut Reader<'_>) -> io::Result<Record> {
    let source = r.read_u32()?;
    let seq = r.read_u32()?;
    let timestamp = r.read_u32()?;
    let title = r.read_str()?.to_owned();
    let ident_count = r.read_u32()? as usize;
    let mut identifiers = Vec::with_capacity(ident_count.min(r.remaining()));
    for _ in 0..ident_count {
        identifiers.push(r.read_str()?.to_owned());
    }
    let attr_count = r.read_u32()? as usize;
    let mut attributes = BTreeMap::new();
    for _ in 0..attr_count {
        let name = r.read_str()?.to_owned();
        let value = read_value(r)?;
        attributes.insert(name, value);
    }
    Ok(Record {
        id: RecordId::new(SourceId(source), seq),
        title,
        identifiers,
        attributes,
        timestamp,
    })
}

/// Encode a single record body into a fresh buffer — the unit the WAL
/// appends and the router's lane channel carries.
pub fn encode_record_body(record: &Record) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    put_record(&mut buf, record);
    buf
}

/// Decode a single record body (must consume the whole buffer).
pub fn decode_record_body(body: &[u8]) -> io::Result<Record> {
    let mut r = Reader::new(body);
    let record = read_record(&mut r)?;
    if r.remaining() != 0 {
        return Err(bad(format!(
            "{} trailing bytes after record body",
            r.remaining()
        )));
    }
    Ok(record)
}

/// Append a record batch: `u32` count + bodies.
pub fn put_records(buf: &mut Vec<u8>, records: &[Record]) {
    put_u32(buf, len_u32(records.len()));
    for record in records {
        put_record(buf, record);
    }
}

/// Decode a record batch at the cursor.
pub fn read_records(r: &mut Reader<'_>) -> io::Result<Vec<Record>> {
    let n = r.read_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(r.remaining().max(1)));
    for _ in 0..n {
        out.push(read_record(r)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Engine state + snapshot bodies.
// ---------------------------------------------------------------------

fn put_usize_seq(buf: &mut Vec<u8>, seq: impl ExactSizeIterator<Item = usize>) {
    put_u64(buf, seq.len() as u64);
    for v in seq {
        put_u64(buf, v as u64);
    }
}

fn read_usize_vec(r: &mut Reader<'_>) -> io::Result<Vec<usize>> {
    let n = r.read_len()?;
    let mut out = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        out.push(r.read_len()?);
    }
    Ok(out)
}

fn put_catalog_entry(buf: &mut Vec<u8>, entry: &CatalogEntry) {
    put_u64(buf, entry.id as u64);
    put_str(buf, &entry.title);
    put_u32(buf, len_u32(entry.pages.len()));
    for page in &entry.pages {
        put_u32(buf, page.source.0);
        put_u32(buf, page.seq);
    }
    put_u32(buf, len_u32(entry.attributes.len()));
    for (name, value) in &entry.attributes {
        put_str(buf, name);
        put_value(buf, value);
    }
    put_u32(buf, len_u32(entry.identifiers.len()));
    for ident in &entry.identifiers {
        put_str(buf, ident);
    }
}

fn read_catalog_entry(r: &mut Reader<'_>) -> io::Result<CatalogEntry> {
    let id = r.read_len()?;
    let title = r.read_str()?.to_owned();
    let page_count = r.read_u32()? as usize;
    let mut pages = Vec::with_capacity(page_count.min(r.remaining()));
    for _ in 0..page_count {
        let source = r.read_u32()?;
        let seq = r.read_u32()?;
        pages.push(RecordId::new(SourceId(source), seq));
    }
    let attr_count = r.read_u32()? as usize;
    let mut attributes = BTreeMap::new();
    for _ in 0..attr_count {
        let name = r.read_str()?.to_owned();
        attributes.insert(name, read_value(r)?);
    }
    let ident_count = r.read_u32()? as usize;
    let mut identifiers = Vec::with_capacity(ident_count.min(r.remaining()));
    for _ in 0..ident_count {
        identifiers.push(r.read_str()?.to_owned());
    }
    Ok(CatalogEntry {
        id,
        title,
        pages,
        attributes,
        identifiers,
    })
}

/// Append a full [`EngineState`] body.
pub fn put_engine_state(buf: &mut Vec<u8>, state: &EngineState) {
    put_f64(buf, state.threshold);
    put_u64(buf, state.records.len() as u64);
    for record in &state.records {
        put_record(buf, record);
    }
    put_usize_seq(buf, state.parents.iter().copied());
    put_u64(buf, state.ranks.len() as u64);
    buf.extend_from_slice(&state.ranks);
    put_u64(buf, state.comparisons);
    put_u64(buf, state.members.len() as u64);
    for (root, members) in &state.members {
        put_u64(buf, *root as u64);
        put_usize_seq(buf, members.iter().copied());
    }
    put_usize_seq(buf, state.dirty.iter().copied());
    put_usize_seq(buf, state.dead.iter().copied());
    let entries = state.catalog.entries();
    put_u64(buf, entries.len() as u64);
    for entry in entries {
        put_catalog_entry(buf, entry);
    }
}

/// Decode a full [`EngineState`] body at the cursor.
pub fn read_engine_state(r: &mut Reader<'_>) -> io::Result<EngineState> {
    let threshold = r.read_f64()?;
    let record_count = r.read_len()?;
    let mut records = Vec::with_capacity(record_count.min(r.remaining()));
    for _ in 0..record_count {
        records.push(read_record(r)?);
    }
    let parents = read_usize_vec(r)?;
    let rank_count = r.read_len()?;
    let ranks = r.take(rank_count)?.to_vec();
    let comparisons = r.read_u64()?;
    let member_count = r.read_len()?;
    let mut members = BTreeMap::new();
    for _ in 0..member_count {
        let root = r.read_len()?;
        members.insert(root, read_usize_vec(r)?);
    }
    let dirty: BTreeSet<usize> = read_usize_vec(r)?.into_iter().collect();
    let dead: BTreeSet<usize> = read_usize_vec(r)?.into_iter().collect();
    let entry_count = r.read_len()?;
    let mut entries = Vec::with_capacity(entry_count.min(r.remaining()));
    for _ in 0..entry_count {
        entries.push(read_catalog_entry(r)?);
    }
    Ok(EngineState {
        threshold,
        records,
        parents,
        ranks,
        comparisons,
        members,
        dirty,
        dead,
        catalog: Catalog::from_entries(entries),
    })
}

/// Append a [`Snapshot`] body (seq + covered records + engine state).
pub fn put_snapshot(buf: &mut Vec<u8>, snapshot: &Snapshot) {
    put_u64(buf, snapshot.seq);
    put_u64(buf, snapshot.records);
    put_engine_state(buf, &snapshot.engine);
}

/// Decode a [`Snapshot`] body at the cursor.
pub fn read_snapshot(r: &mut Reader<'_>) -> io::Result<Snapshot> {
    let seq = r.read_u64()?;
    let records = r.read_u64()?;
    let engine = read_engine_state(r)?;
    Ok(Snapshot {
        seq,
        records,
        engine,
    })
}

/// Append an optional snapshot (presence byte + body).
pub fn put_opt_snapshot(buf: &mut Vec<u8>, snapshot: Option<&Snapshot>) {
    match snapshot {
        None => put_u8(buf, 0),
        Some(s) => {
            put_u8(buf, 1);
            put_snapshot(buf, s);
        }
    }
}

/// Decode an optional snapshot at the cursor.
pub fn read_opt_snapshot(r: &mut Reader<'_>) -> io::Result<Option<Snapshot>> {
    match r.read_u8()? {
        0 => Ok(None),
        1 => Ok(Some(read_snapshot(r)?)),
        other => Err(bad(format!("bad option byte {other}"))),
    }
}

// ---------------------------------------------------------------------
// Wire frames.
// ---------------------------------------------------------------------

/// Start a frame: append the 8-byte header with a length placeholder
/// and return the payload's start offset for [`end_frame`].
pub fn begin_frame(buf: &mut Vec<u8>, opcode: u8) -> usize {
    begin_frame_traced(buf, opcode, None)
}

/// Start a frame, optionally carrying a `(trace id, parent span id)`
/// context: the header's flags byte gains [`FLAG_TRACE`] and the
/// 16-byte extension opens the payload. With `None` this is
/// byte-identical to [`begin_frame`].
pub fn begin_frame_traced(buf: &mut Vec<u8>, opcode: u8, trace: Option<(u64, u64)>) -> usize {
    let flags = if trace.is_some() { FLAG_TRACE } else { 0 };
    buf.extend_from_slice(&[FRAME_MAGIC, FRAME_VERSION, opcode, flags, 0, 0, 0, 0]);
    let start = buf.len();
    if let Some((trace_id, parent)) = trace {
        put_u64(buf, trace_id);
        put_u64(buf, parent);
    }
    start
}

/// Finish a frame started at `payload_start`: back-patch the payload
/// length and append the CRC over bytes `[1, payload end)`.
pub fn end_frame(buf: &mut Vec<u8>, payload_start: usize) {
    let frame_start = payload_start - HEADER_LEN;
    let payload_len = (buf.len() - payload_start) as u32;
    buf[frame_start + 4..frame_start + 8].copy_from_slice(&payload_len.to_le_bytes());
    let crc = crc32(&buf[frame_start + 1..]);
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// Encode a complete frame with a payload written by `body` into a
/// reusable buffer (cleared first).
pub fn encode_frame_into(buf: &mut Vec<u8>, opcode: u8, body: impl FnOnce(&mut Vec<u8>)) {
    encode_frame_traced_into(buf, opcode, None, body);
}

/// [`encode_frame_into`] with an optional trace-context extension (see
/// [`begin_frame_traced`]).
pub fn encode_frame_traced_into(
    buf: &mut Vec<u8>,
    opcode: u8,
    trace: Option<(u64, u64)>,
    body: impl FnOnce(&mut Vec<u8>),
) {
    buf.clear();
    let start = begin_frame_traced(buf, opcode, trace);
    body(buf);
    end_frame(buf, start);
}

/// Total frame size implied by a buffer that starts at a frame
/// boundary: `Ok(None)` when more bytes are needed to know, `Err` when
/// the header is not a valid frame header (wrong magic or version, or
/// a length beyond the opcode's [`payload_cap`] — the connection
/// cannot be re-synchronized). A `Some` total only promises a valid
/// header: the body may still be in flight, so receivers must buffer
/// until `total` bytes are present before slicing the frame out.
pub fn frame_len(buf: &[u8]) -> io::Result<Option<usize>> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf[0] != FRAME_MAGIC {
        return Err(bad(format!("bad frame magic 0x{:02X}", buf[0])));
    }
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    if buf[1] != FRAME_VERSION {
        return Err(bad(format!("unsupported frame version {}", buf[1])));
    }
    let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    let cap = payload_cap(buf[2]);
    if len > cap {
        return Err(bad(format!(
            "frame payload {len} exceeds cap {cap} for opcode {:#04x}",
            buf[2]
        )));
    }
    Ok(Some(HEADER_LEN + len + TRAILER_LEN))
}

/// Validate a complete frame (magic, version, length, CRC) and return
/// its opcode and payload slice.
pub fn open_frame(frame: &[u8]) -> io::Result<(u8, &[u8])> {
    let total = frame_len(frame)?
        .ok_or_else(|| bad(format!("frame truncated at {} bytes", frame.len())))?;
    if frame.len() != total {
        return Err(bad(format!(
            "frame length mismatch: header says {total}, got {}",
            frame.len()
        )));
    }
    let payload_end = total - TRAILER_LEN;
    let want = u32::from_le_bytes([
        frame[payload_end],
        frame[payload_end + 1],
        frame[payload_end + 2],
        frame[payload_end + 3],
    ]);
    let got = crc32(&frame[1..payload_end]);
    if want != got {
        return Err(bad(format!(
            "frame CRC mismatch: stored {want:#010x}, computed {got:#010x}"
        )));
    }
    Ok((frame[2], &frame[HEADER_LEN..payload_end]))
}

/// What [`open_frame_traced`] yields: the opcode, the optional
/// `(trace id, parent span id)` pair, and the payload body.
pub type TracedFrame<'a> = (u8, Option<(u64, u64)>, &'a [u8]);

/// [`open_frame`] plus flags handling: validates the frame, rejects
/// unknown flag bits, and when [`FLAG_TRACE`] is set splits the 16-byte
/// trace-context extension off the payload, returning
/// `(opcode, Some((trace id, parent span id)), body)`.
pub fn open_frame_traced(frame: &[u8]) -> io::Result<TracedFrame<'_>> {
    let (opcode, payload) = open_frame(frame)?;
    let flags = frame[3];
    if flags & !FLAG_TRACE != 0 {
        return Err(bad(format!("unknown frame flags {flags:#04x}")));
    }
    if flags & FLAG_TRACE == 0 {
        return Ok((opcode, None, payload));
    }
    if payload.len() < TRACE_EXT_LEN {
        return Err(bad(format!(
            "trace-flagged frame payload ({} bytes) shorter than the {TRACE_EXT_LEN}-byte extension",
            payload.len()
        )));
    }
    let mut r = Reader::new(&payload[..TRACE_EXT_LEN]);
    let trace_id = r.read_u64()?;
    let parent = r.read_u64()?;
    Ok((opcode, Some((trace_id, parent)), &payload[TRACE_EXT_LEN..]))
}

/// Read exactly one frame from a byte stream into `scratch` (header,
/// payload, and CRC — ready for [`open_frame`]). The buffer is reused
/// across calls; only frame-sized reads hit the underlying stream.
pub fn read_frame(stream: &mut impl Read, scratch: &mut Vec<u8>) -> io::Result<()> {
    scratch.clear();
    scratch.resize(HEADER_LEN, 0);
    stream.read_exact(scratch)?;
    let total = frame_len(scratch)?.expect("full header implies a known length");
    scratch.resize(total, 0);
    stream.read_exact(&mut scratch[HEADER_LEN..])?;
    Ok(())
}

// ---------------------------------------------------------------------
// Opcode payload helpers shared by client, router, and server.
// ---------------------------------------------------------------------

/// Encode an `ingest_batch` frame from owned records into a reusable
/// buffer.
pub fn encode_ingest_batch(buf: &mut Vec<u8>, records: &[Record]) {
    encode_frame_into(buf, OP_INGEST_BATCH, |b| put_records(b, records));
}

/// Encode an `ingest_batch` frame from pre-encoded record bodies —
/// the router's zero-re-encode path: lane workers concatenate the
/// bodies the route step already produced. Carries `trace` as the
/// frame's context extension when the lane's batch span is traced.
pub fn encode_ingest_batch_bodies(
    buf: &mut Vec<u8>,
    bodies: &[Vec<u8>],
    trace: Option<(u64, u64)>,
) {
    encode_frame_traced_into(buf, OP_INGEST_BATCH, trace, |b| {
        put_u32(b, len_u32(bodies.len()));
        for body in bodies {
            b.extend_from_slice(body);
        }
    });
}

/// Encode an `error` frame.
pub fn encode_error(buf: &mut Vec<u8>, message: &str) {
    encode_frame_into(buf, OP_ERROR, |b| put_str(b, message));
}

/// Encode a `flush` request frame (empty payload).
pub fn encode_flush(buf: &mut Vec<u8>) {
    encode_frame_into(buf, OP_FLUSH, |_| {});
}

/// Encode a `sync` request frame.
pub fn encode_sync(buf: &mut Vec<u8>, from: u64) {
    encode_frame_into(buf, OP_SYNC, |b| put_u64(b, from));
}

/// The shared state-shipping body: `restore` requests and `sync_state`
/// replies carry the same layout — position, optional snapshot, tail
/// records.
pub fn put_state_body(
    buf: &mut Vec<u8>,
    position: u64,
    snapshot: Option<&Snapshot>,
    tail: &[Record],
) {
    put_u64(buf, position);
    put_opt_snapshot(buf, snapshot);
    put_records(buf, tail);
}

/// Decode a state-shipping body at the cursor.
pub fn read_state_body(r: &mut Reader<'_>) -> io::Result<(u64, Option<Snapshot>, Vec<Record>)> {
    let position = r.read_u64()?;
    let snapshot = read_opt_snapshot(r)?;
    let tail = read_records(r)?;
    Ok((position, snapshot, tail))
}

/// Encode a `restore` request frame.
pub fn encode_restore(
    buf: &mut Vec<u8>,
    position: u64,
    snapshot: Option<&Snapshot>,
    tail: &[Record],
) {
    encode_frame_into(buf, OP_RESTORE, |b| {
        put_state_body(b, position, snapshot, tail)
    });
}

/// Encode the binary request frame for `request` into `buf` (cleared
/// first). Returns `false`, leaving `buf` empty, for requests with no
/// binary mapping — those stay on the JSON surface.
pub fn encode_request(buf: &mut Vec<u8>, request: &Request) -> bool {
    encode_request_traced(buf, request, None)
}

/// [`encode_request`] carrying an optional `(trace id, parent span id)`
/// context as the frame extension. Callers must only pass `Some` to a
/// peer that negotiated the `trace-context` feature.
pub fn encode_request_traced(
    buf: &mut Vec<u8>,
    request: &Request,
    trace: Option<(u64, u64)>,
) -> bool {
    match request {
        Request::IngestBatch { records } => {
            encode_frame_traced_into(buf, OP_INGEST_BATCH, trace, |b| put_records(b, records))
        }
        Request::Flush => encode_frame_traced_into(buf, OP_FLUSH, trace, |_| {}),
        Request::Sync { from } => encode_frame_traced_into(buf, OP_SYNC, trace, |b| {
            put_u64(b, *from);
        }),
        Request::Restore {
            snapshot,
            tail,
            position,
        } => encode_frame_traced_into(buf, OP_RESTORE, trace, |b| {
            put_state_body(b, *position, snapshot.as_ref(), tail)
        }),
        _ => {
            buf.clear();
            return false;
        }
    }
    true
}

/// Encode the binary reply frame for `response` into `buf` (cleared
/// first). Returns `false`, leaving `buf` empty, for responses with no
/// binary mapping — those travel only as JSON.
pub fn encode_response(buf: &mut Vec<u8>, response: &Response) -> bool {
    match response {
        Response::Ack { submitted } => encode_frame_into(buf, OP_ACK, |b| put_u64(b, *submitted)),
        Response::Flushed {
            generation,
            applied,
        } => encode_frame_into(buf, OP_FLUSHED, |b| {
            put_u64(b, *generation);
            put_u64(b, *applied);
        }),
        Response::SyncState {
            position,
            snapshot,
            tail,
        } => encode_frame_into(buf, OP_SYNC_STATE, |b| {
            put_state_body(b, *position, snapshot.as_ref(), tail)
        }),
        Response::Restored {
            generation,
            records,
        } => encode_frame_into(buf, OP_RESTORED, |b| {
            put_u64(b, *generation);
            put_u64(b, *records);
        }),
        Response::Error { message } => encode_error(buf, message),
        _ => {
            buf.clear();
            return false;
        }
    }
    true
}

/// Decode a reply frame into the [`Response`] it mirrors. Only the
/// opcodes that answer binary requests are mapped; anything else is an
/// error (the JSON surface stays the sole transport for the rest).
pub fn decode_response(opcode: u8, payload: &[u8]) -> io::Result<Response> {
    let mut r = Reader::new(payload);
    let resp = match opcode {
        OP_ACK => Response::Ack {
            submitted: r.read_u64()?,
        },
        OP_FLUSHED => Response::Flushed {
            generation: r.read_u64()?,
            applied: r.read_u64()?,
        },
        OP_SYNC_STATE => {
            let (position, snapshot, tail) = read_state_body(&mut r)?;
            Response::SyncState {
                position,
                snapshot,
                tail,
            }
        }
        OP_RESTORED => Response::Restored {
            generation: r.read_u64()?,
            records: r.read_u64()?,
        },
        OP_ERROR => Response::Error {
            message: r.read_str()?.to_owned(),
        },
        other => return Err(bad(format!("unexpected reply opcode {other:#04x}"))),
    };
    if r.remaining() != 0 {
        return Err(bad(format!(
            "{} trailing bytes after reply payload",
            r.remaining()
        )));
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> Record {
        Record::new(RecordId::new(SourceId(3), 41), "Lumetra LX-100 Pro")
            .with_identifier("CAM-LUM-00100")
            .with_identifier("0042-LX100")
            .with_attr("color", Value::str("graphite"))
            .with_attr("weight", Value::quantity(1.25, Unit::Kilogram))
            .with_attr("ports", Value::num(4.0))
            .with_attr("wifi", Value::Bool(true))
            .with_attr("notes", Value::Null)
            .with_attr(
                "dims",
                Value::List(vec![
                    Value::quantity(120.0, Unit::Millimeter),
                    Value::quantity(80.0, Unit::Millimeter),
                ]),
            )
    }

    #[test]
    fn record_body_round_trips_bit_identically() {
        let mut rec = sample_record();
        rec.timestamp = 7;
        let body = encode_record_body(&rec);
        let back = decode_record_body(&body).unwrap();
        assert_eq!(back, rec);
        assert_eq!(encode_record_body(&back), body, "re-encode is stable");
    }

    #[test]
    fn every_unit_survives_its_tag() {
        use Unit::*;
        for unit in [
            Millimeter, Centimeter, Meter, Inch, Gram, Kilogram, Ounce, Pound, Megabyte, Gigabyte,
            Terabyte, Hertz, Kilohertz, Megahertz, Gigahertz, Watt, Usd, Eur, Count,
        ] {
            assert_eq!(unit_from_tag(unit_tag(unit)).unwrap(), unit);
        }
        assert!(unit_from_tag(19).is_err(), "unknown tags are rejected");
    }

    #[test]
    fn frame_round_trips_and_crc_catches_corruption() {
        let records = vec![
            sample_record(),
            Record::new(RecordId::new(SourceId(9), 0), "x"),
        ];
        let mut buf = Vec::new();
        encode_ingest_batch(&mut buf, &records);

        assert_eq!(frame_len(&buf).unwrap(), Some(buf.len()));
        let (op, payload) = open_frame(&buf).unwrap();
        assert_eq!(op, OP_INGEST_BATCH);
        let mut r = Reader::new(payload);
        let back = read_records(&mut r).unwrap();
        assert_eq!(back, records);
        assert_eq!(r.remaining(), 0);

        // flip one payload bit: the CRC must catch it
        let mut corrupt = buf.clone();
        let mid = HEADER_LEN + 3;
        corrupt[mid] ^= 0x40;
        assert!(open_frame(&corrupt).is_err());

        // a truncated frame is detected as incomplete, not mis-parsed
        assert!(open_frame(&buf[..buf.len() - 1]).is_err());
        assert_eq!(frame_len(&buf[..4]).unwrap(), None, "need more bytes");
        assert!(frame_len(&[0x7B]).is_err(), "JSON byte is not a frame");
    }

    #[test]
    fn payload_caps_are_per_opcode() {
        // a valid header whose declared length exceeds the opcode's cap
        let header = |opcode: u8, len: u32| {
            let mut h = vec![FRAME_MAGIC, FRAME_VERSION, opcode, 0];
            h.extend_from_slice(&len.to_le_bytes());
            h
        };
        // control frames never carry megabytes: reject before buffering
        let oversized_flush = header(OP_FLUSH, (MAX_CONTROL_PAYLOAD + 1) as u32);
        assert!(frame_len(&oversized_flush).is_err());
        // unknown opcodes get the small cap too — a hostile header
        // cannot pick an unassigned opcode to dodge the bound
        let oversized_unknown = header(0x7F, (MAX_CONTROL_PAYLOAD + 1) as u32);
        assert!(frame_len(&oversized_unknown).is_err());
        // the same length is fine on a state-shipping opcode
        let restore = header(OP_RESTORE, (MAX_CONTROL_PAYLOAD + 1) as u32);
        assert_eq!(
            frame_len(&restore).unwrap(),
            Some(HEADER_LEN + MAX_CONTROL_PAYLOAD + 1 + TRAILER_LEN)
        );
        // and batches get the batch cap, not the control cap
        let batch = header(OP_INGEST_BATCH, (MAX_BATCH_PAYLOAD) as u32);
        assert!(frame_len(&batch).unwrap().is_some());
        let oversized_batch = header(OP_INGEST_BATCH, (MAX_BATCH_PAYLOAD + 1) as u32);
        assert!(frame_len(&oversized_batch).is_err());
    }

    #[test]
    fn bodies_path_equals_records_path() {
        let records = vec![sample_record(), sample_record()];
        let mut direct = Vec::new();
        encode_ingest_batch(&mut direct, &records);
        let bodies: Vec<Vec<u8>> = records.iter().map(encode_record_body).collect();
        let mut concat = Vec::new();
        encode_ingest_batch_bodies(&mut concat, &bodies, None);
        assert_eq!(direct, concat, "pre-encoded bodies produce the same frame");
    }

    #[test]
    fn trace_extension_round_trips_and_unflagged_is_byte_identical() {
        let records = vec![sample_record()];
        // unflagged traced encode == the plain encode, byte for byte
        let mut plain = Vec::new();
        assert!(encode_request(
            &mut plain,
            &Request::IngestBatch {
                records: records.clone()
            }
        ));
        let mut untraced = Vec::new();
        assert!(encode_request_traced(
            &mut untraced,
            &Request::IngestBatch {
                records: records.clone()
            },
            None
        ));
        assert_eq!(plain, untraced);
        let (op, trace, body) = open_frame_traced(&plain).unwrap();
        assert_eq!((op, trace), (OP_INGEST_BATCH, None));
        assert_eq!(body, &plain[HEADER_LEN..plain.len() - TRAILER_LEN]);

        // flagged frame: 16 bytes longer, extension splits off cleanly
        let mut traced = Vec::new();
        assert!(encode_request_traced(
            &mut traced,
            &Request::IngestBatch { records },
            Some((0xDEAD_BEEF, 42))
        ));
        assert_eq!(traced.len(), plain.len() + TRACE_EXT_LEN);
        assert_eq!(traced[3], FLAG_TRACE);
        let (op, trace, body) = open_frame_traced(&traced).unwrap();
        assert_eq!((op, trace), (OP_INGEST_BATCH, Some((0xDEAD_BEEF, 42))));
        assert_eq!(body, &plain[HEADER_LEN..plain.len() - TRAILER_LEN]);

        // every control opcode carries the extension too
        for req in [Request::Flush, Request::Sync { from: 9 }] {
            let mut buf = Vec::new();
            assert!(encode_request_traced(&mut buf, &req, Some((7, 8))));
            let (_, trace, _) = open_frame_traced(&buf).unwrap();
            assert_eq!(trace, Some((7, 8)));
        }
    }

    #[test]
    fn unknown_frame_flags_are_rejected() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, OP_FLUSH, |_| {});
        // corrupt the flags byte and re-seal the CRC
        buf[3] = 0x02;
        let end = buf.len() - TRAILER_LEN;
        let crc = crc32(&buf[1..end]).to_le_bytes();
        buf[end..].copy_from_slice(&crc);
        assert!(open_frame(&buf).is_ok(), "plain open ignores flags");
        assert!(
            open_frame_traced(&buf).is_err(),
            "unknown flag bit rejected"
        );

        // a flagged frame whose payload is shorter than the extension
        let mut short = Vec::new();
        let start = begin_frame_traced(&mut short, OP_FLUSH, Some((1, 2)));
        short.truncate(start + 4); // lop off most of the extension
        end_frame(&mut short, start);
        assert!(open_frame_traced(&short).is_err());
    }

    #[test]
    fn responses_round_trip() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, OP_ACK, |b| put_u64(b, 17));
        let (op, payload) = open_frame(&buf).unwrap();
        assert!(matches!(
            decode_response(op, payload).unwrap(),
            Response::Ack { submitted: 17 }
        ));

        encode_error(&mut buf, "nope");
        let (op, payload) = open_frame(&buf).unwrap();
        let Response::Error { message } = decode_response(op, payload).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(message, "nope");
    }

    #[test]
    fn truncated_bodies_error_instead_of_panicking() {
        let body = encode_record_body(&sample_record());
        for cut in 0..body.len() {
            assert!(
                decode_record_body(&body[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn read_frame_pulls_exactly_one_frame_from_a_stream() {
        let mut wire = Vec::new();
        encode_frame_into(&mut wire, OP_FLUSH, |_| {});
        let first_len = wire.len();
        let mut second = Vec::new();
        encode_frame_into(&mut second, OP_ACK, |b| put_u64(b, 3));
        wire.extend_from_slice(&second);

        let mut cursor = io::Cursor::new(wire);
        let mut scratch = Vec::new();
        read_frame(&mut cursor, &mut scratch).unwrap();
        assert_eq!(scratch.len(), first_len);
        assert_eq!(open_frame(&scratch).unwrap().0, OP_FLUSH);
        read_frame(&mut cursor, &mut scratch).unwrap();
        assert_eq!(open_frame(&scratch).unwrap().0, OP_ACK);
    }
}
