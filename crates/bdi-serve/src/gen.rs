//! Generations and their publication point.
//!
//! A [`Generation`] is one immutable catalog snapshot: the fused
//! [`Catalog`] plus a sharded identifier index built over it. The ingest
//! worker builds the next generation off to the side and publishes it
//! through a [`Swap`] — readers that loaded the previous `Arc` keep it
//! alive for as long as their query runs, so a query always sees one
//! consistent generation (snapshot isolation) and the writer never waits
//! for readers to finish.

use bdi_core::catalog::{Catalog, CatalogEntry};
use bdi_linkage::blocking::normalize_identifier;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// The atomic publication point: writers replace the `Arc`, readers
/// clone it. The write lock is held only for the pointer swap, so reads
/// are wait-free in practice and a slow reader can never delay the next
/// generation — it just keeps its own snapshot alive.
#[derive(Debug, Default)]
pub struct Swap<T> {
    slot: RwLock<Arc<T>>,
}

impl<T> Swap<T> {
    /// Wrap an initial value.
    pub fn new(value: T) -> Self {
        Self {
            slot: RwLock::new(Arc::new(value)),
        }
    }

    /// Load the current snapshot. The returned `Arc` stays valid across
    /// any number of subsequent [`Swap::store`] calls.
    pub fn load(&self) -> Arc<T> {
        self.slot.read().clone()
    }

    /// Publish a new snapshot, returning the one it replaced.
    pub fn store(&self, value: Arc<T>) -> Arc<T> {
        std::mem::replace(&mut *self.slot.write(), value)
    }
}

/// Identifier → entry index, split across shards by key hash. Sharding
/// keeps the per-generation rebuild embarrassingly parallel-friendly and
/// bounds the probe cost of any one lookup to a single shard's map.
#[derive(Clone, Debug)]
pub struct ShardedIndex {
    shards: Vec<HashMap<String, usize>>,
}

impl ShardedIndex {
    /// Build over a catalog's identifier index. On identifier collision
    /// the lowest cluster id wins, matching [`Catalog::lookup`].
    pub fn build(catalog: &Catalog, shards: usize) -> Self {
        let n = shards.max(1);
        let mut out = vec![HashMap::new(); n];
        for (pos, entry) in catalog.entries().iter().enumerate() {
            for id in &entry.identifiers {
                out[shard_of(id, n)].entry(id.clone()).or_insert(pos);
            }
        }
        Self { shards: out }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Entry position for an identifier (any published formatting).
    pub fn get(&self, identifier: &str) -> Option<usize> {
        let norm = normalize_identifier(identifier);
        self.shards[shard_of(&norm, self.shards.len())]
            .get(&norm)
            .copied()
    }

    /// Total number of indexed identifiers.
    pub fn len(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(HashMap::is_empty)
    }
}

/// FNV-1a over the key bytes; deterministic across processes (unlike the
/// std hasher's per-instance random state), so shard layout is stable.
/// The router tier uses the same function to partition records across
/// backends — in-process index shards and cross-process backend shards
/// are the same hash space at different granularities.
pub fn shard_of(key: &str, shards: usize) -> usize {
    (fnv64(key) % shards as u64) as usize
}

/// The raw FNV-1a hash [`shard_of`] reduces. Exposed so the routing
/// table ([`crate::fleet::RoutingTable`]) can consume the *same* hash at
/// two granularities — slot (`h % base`) and within-slot chain position
/// (`h / base`) — and stay bit-compatible with `shard_of` until the
/// first split.
pub fn fnv64(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One immutable published snapshot of the integrated catalog.
#[derive(Clone, Debug)]
pub struct Generation {
    /// Monotonic generation number (0 = the empty boot generation).
    pub seq: u64,
    /// The fused catalog.
    pub catalog: Arc<Catalog>,
    /// Sharded identifier index over `catalog`.
    pub index: ShardedIndex,
    /// Records integrated into this generation.
    pub records: usize,
}

impl Generation {
    /// The empty boot generation.
    pub fn empty(shards: usize) -> Self {
        let catalog = Arc::new(Catalog::default());
        let index = ShardedIndex::build(&catalog, shards);
        Self {
            seq: 0,
            catalog,
            index,
            records: 0,
        }
    }

    /// Resolve an identifier to its catalog entry via the sharded index.
    pub fn lookup(&self, identifier: &str) -> Option<&CatalogEntry> {
        self.index
            .get(identifier)
            .map(|i| &self.catalog.entries()[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi_types::{RecordId, SourceId, Value};
    use std::collections::BTreeMap;

    fn entry(id: usize, idents: &[&str]) -> CatalogEntry {
        CatalogEntry {
            id,
            title: format!("p{id}"),
            pages: vec![RecordId::new(SourceId(0), id as u32)],
            attributes: BTreeMap::from([("w".to_string(), Value::num(id as f64))]),
            identifiers: idents.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn swap_isolates_readers() {
        let swap = Swap::new(1u32);
        let before = swap.load();
        swap.store(Arc::new(2));
        assert_eq!(*before, 1, "held snapshot survives the store");
        assert_eq!(*swap.load(), 2);
    }

    #[test]
    fn sharded_index_resolves_all_formats() {
        let catalog =
            Catalog::from_entries(vec![entry(0, &["CAMLUM00100"]), entry(1, &["MONVIS00900"])]);
        let idx = ShardedIndex::build(&catalog, 4);
        assert_eq!(idx.shard_count(), 4);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.get("cam-lum-00100"), Some(0));
        assert_eq!(idx.get("MON VIS 00900"), Some(1));
        assert_eq!(idx.get("nope"), None);
    }

    #[test]
    fn sharded_index_collision_prefers_lowest_id() {
        let catalog = Catalog::from_entries(vec![entry(3, &["SHARED01"]), entry(7, &["SHARED01"])]);
        let idx = ShardedIndex::build(&catalog, 2);
        let pos = idx.get("shared01").unwrap();
        assert_eq!(catalog.entries()[pos].id, 3);
        assert_eq!(
            catalog.lookup("shared01").unwrap().id,
            3,
            "matches Catalog::lookup"
        );
    }

    #[test]
    fn generation_lookup_round_trips() {
        let catalog = Arc::new(Catalog::from_entries(vec![entry(0, &["ABC123"])]));
        let index = ShardedIndex::build(&catalog, 8);
        let g = Generation {
            seq: 1,
            catalog,
            index,
            records: 1,
        };
        assert_eq!(g.lookup("abc-123").unwrap().id, 0);
        assert!(Generation::empty(4).lookup("abc-123").is_none());
    }
}
