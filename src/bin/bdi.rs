//! `bdi` — the command-line face of the integration pipeline.
//!
//! ```sh
//! bdi generate  --seed 42 --entities 500 --sources 40 --out ./ds
//! bdi integrate --in ./ds [--fusion accucopy] [--json]
//! bdi integrate --seed 42 --entities 300 --sources 20
//! bdi lookup    --in ./ds --id CAM-LUM-01042
//! bdi serve     --addr 127.0.0.1:7171 [--seed 42 --entities 300]
//! bdi route     --addr 127.0.0.1:7070 --backends 127.0.0.1:7171,127.0.0.1:7172
//! bdi load      --addr 127.0.0.1:7171 [--readers 4] [--max-source-size 60]
//! bdi stats     --addr 127.0.0.1:7171 [--prometheus]
//! ```
//!
//! `generate` writes `dataset.json`, `ground_truth.json` and
//! `config.json`; `integrate` runs linkage → alignment → fusion over a
//! generated or loaded dataset and prints a run report (with oracle
//! quality when ground truth is available); `lookup` integrates and then
//! resolves one product identifier against the fused catalog; `serve`
//! runs the live integration daemon (JSON lines and HTTP/1.1 over TCP,
//! autodetected per connection — see `bdi-serve` and
//! `docs/HTTP_API.md`); `route` runs the router tier, making N backends look
//! like one server (hash-partitioned ingest, scatter-gather reads);
//! `load` replays a synthetic world against a running server and
//! reports throughput and latency; `stats` prints a running server's
//! counters, or its full metrics registry as Prometheus text
//! exposition with `--prometheus`.

use bdi::core::report::RunReport;
use bdi::core::{metrics, run_pipeline, Catalog, FusionMethod, PipelineConfig};
use bdi::synth::{World, WorldConfig};
use bdi::types::{Dataset, GroundTruth};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match parse_opts(cmd, rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "integrate" => cmd_integrate(&opts),
        "lookup" => cmd_lookup(&opts),
        "serve" => cmd_serve(&opts),
        "route" => cmd_route(&opts),
        "load" => cmd_load(&opts),
        "stats" => cmd_stats(&opts),
        "admin" => cmd_admin(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
bdi — big data integration pipeline

USAGE:
  bdi generate  --seed N [--entities N] [--sources N] --out DIR
  bdi integrate (--in DIR | --seed N [--entities N] [--sources N])
                [--fusion vote|truthfinder|accu|accucopy] [--json]
  bdi lookup    (--in DIR | --seed N) --id IDENTIFIER
  bdi serve     [--addr HOST:PORT] [--http HOST:PORT] [--in DIR | --seed N [--entities N] [--sources N]]
                [--threshold X] [--queue N] [--shards N] [--engine-threads N]
                [--workers N] [--threaded] [--no-binary]
                [--data-dir DIR [--sync-interval N] [--snapshot-every N] | --no-wal]
                [--metrics-file PATH [--metrics-interval SECS]] [--slow-ms MS]
                [--trace-sample N]
  bdi route     --backends HOST:PORT,HOST:PORT,... [--addr HOST:PORT] [--http HOST:PORT]
                [--replicas N] [--retries N] [--workers N]
                [--threshold X] [--batch N] [--pipeline N] [--queue N]
                [--trace-sample N]
  bdi load      [--addr HOST:PORT] [--seed N] [--entities N] [--sources N] [--max-source-size N] [--readers N] [--batch N] [--http] [--binary] [--trace-sample N]
  bdi stats     [--addr HOST:PORT] [--prometheus]
  bdi admin     --addr HOST:PORT (--hello
                | --split SHARD --backends HOST:PORT,...
                | --replace SHARD:REPLICA --backend HOST:PORT
                | --trace ID | --trace-recent N)
  bdi help

Front-end: serve and route accept any number of connections on one
readiness loop (epoll) with a small dispatch pool (--workers, default
0 = CPU count); each connection autodetects its protocol from the
first bytes — JSON lines or HTTP/1.1 (see docs/HTTP_API.md). --http
binds an extra HTTP-flavored listener on its own port for gateway
separation; --threaded falls back to the thread-per-connection
front-end (JSON lines only, benchmark baseline). `bdi load --http`
drives the load over the HTTP gateway instead of JSON lines.

Binary frames: servers and routers advertise the `binary-frames`
feature on `hello`; peers that see it ship the hot write-path commands
(ingest_batch, flush, sync, restore) as length-framed binary records
instead of JSON lines (see docs/PROTOCOL.md). `bdi serve --no-binary`
withdraws the feature, pinning every peer of that backend to JSON.
`bdi load --binary` asks the load driver to negotiate the upgrade for
its ingest stream (it falls back to JSON against a --no-binary
server).

Durability: --data-dir enables the write-ahead log and generation
snapshots; restarting with the same directory recovers the ingested
state. --sync-interval batches fsyncs (records per fsync, default 64);
--snapshot-every bounds the WAL tail before compaction (default 4096);
--no-wal forces purely in-memory serving.

Sharding: bdi route hash-partitions ingest across its --backends (all
started with the same --threshold) over pipelined, batched connections
and scatter-gathers reads, so clients talk to one address. --batch sets
records per backend request (default 64), --pipeline the batches in
flight per backend (default 4), --queue the per-backend router buffer
(default 1024). --engine-threads caps one backend's linkage thread pool
(default 0 = all cores) — set it to cores/backends when packing several
backends onto one machine.

Replication: with --replicas R, consecutive groups of R --backends
form one shard; ingest mirrors onto every replica and reads fail over
between them, so losing R-1 replicas of a shard loses nothing.
--retries sets extra connect attempts (exponential backoff, default 2)
before a backend is declared dead. bdi admin drives the elastic-fleet
commands against a running router: --hello prints the protocol
version/features of any peer, --split replays half of SHARD's keyspace
onto fresh backends (one per replica) and flips routing live, and
--replace rebuilds one replica on a fresh backend via WAL shipping
from a live peer.

Observability: --metrics-file atomically rewrites PATH as Prometheus
text exposition every --metrics-interval seconds (default 5);
--slow-ms logs any request slower than MS milliseconds to stderr (and,
with tracing, auto-captures a full trace of each slow request).
`bdi stats` queries a running server; with --prometheus it prints the
full metrics registry in exposition format instead of the counters.

Tracing: serve/route --trace-sample N records every Nth request as a
span tree in an in-memory flight recorder (0 = off; slow requests are
always kept when --slow-ms is set). `bdi load --trace-sample N` mints
client-side trace ids instead and prints the last one. Fetch a tree
with `bdi admin --trace ID` (ID in hex, as logged/printed), list
recent ids with `bdi admin --trace-recent N`, or use the HTTP gateway
(`GET /trace/:id`, `X-Bdi-Trace` — see docs/HTTP_API.md).";

fn parse_opts(cmd: &str, args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, got '{flag}'"));
        };
        // `--http` is a boolean for `load` (drive the server over HTTP)
        // but takes a bind address for `serve`/`route`.
        let boolean = matches!(
            key,
            "json" | "no-wal" | "prometheus" | "hello" | "threaded" | "no-binary" | "binary"
        ) || (key == "http" && cmd == "load");
        if boolean {
            out.insert(key.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("--{key} needs a value"));
        };
        out.insert(key.to_string(), value.clone());
    }
    Ok(out)
}

fn num<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse '{v}'")),
    }
}

fn world_from_opts(opts: &HashMap<String, String>) -> Result<World, String> {
    let cfg = WorldConfig {
        seed: num(opts, "seed", 42u64)?,
        n_entities: num(opts, "entities", 500usize)?,
        n_sources: num(opts, "sources", 40usize)?,
        max_source_size: num(opts, "entities", 500usize)?.max(20) / 2 + 50,
        min_source_size: 5,
        ..WorldConfig::default()
    };
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(World::generate(cfg))
}

/// Load `(dataset, truth?)` from `--in`, or generate from `--seed`.
fn load_or_generate(
    opts: &HashMap<String, String>,
) -> Result<(Dataset, Option<GroundTruth>), String> {
    if let Some(dir) = opts.get("in") {
        let ds_text = std::fs::read_to_string(format!("{dir}/dataset.json"))
            .map_err(|e| format!("{dir}/dataset.json: {e}"))?;
        let mut ds: Dataset = serde_json::from_str(&ds_text).map_err(|e| e.to_string())?;
        ds.rebuild_index();
        let truth = std::fs::read_to_string(format!("{dir}/ground_truth.json"))
            .ok()
            .and_then(|t| serde_json::from_str(&t).ok());
        Ok((ds, truth))
    } else {
        let w = world_from_opts(opts)?;
        Ok((w.dataset, Some(w.truth)))
    }
}

fn pipeline_config(opts: &HashMap<String, String>) -> Result<PipelineConfig, String> {
    let fusion = match opts.get("fusion").map(String::as_str) {
        None | Some("accucopy") => FusionMethod::AccuCopy,
        Some("accu") => FusionMethod::Accu,
        Some("vote") => FusionMethod::Vote,
        Some("truthfinder") => FusionMethod::TruthFinder,
        Some(other) => return Err(format!("--fusion: unknown method '{other}'")),
    };
    Ok(PipelineConfig {
        fusion,
        ..PipelineConfig::default()
    })
}

fn cmd_generate(opts: &HashMap<String, String>) -> Result<(), String> {
    let out = opts.get("out").ok_or("generate needs --out DIR")?;
    let w = world_from_opts(opts)?;
    std::fs::create_dir_all(out).map_err(|e| e.to_string())?;
    let dump = |name: &str, json: String| -> Result<(), String> {
        std::fs::write(format!("{out}/{name}"), json).map_err(|e| e.to_string())
    };
    dump(
        "dataset.json",
        serde_json::to_string_pretty(&w.dataset).map_err(|e| e.to_string())?,
    )?;
    dump(
        "ground_truth.json",
        serde_json::to_string_pretty(&w.truth).map_err(|e| e.to_string())?,
    )?;
    dump(
        "config.json",
        serde_json::to_string_pretty(&w.config).map_err(|e| e.to_string())?,
    )?;
    println!(
        "wrote {out}/dataset.json ({} records, {} sources, {} entities)",
        w.dataset.len(),
        w.dataset.source_count(),
        w.catalog.len()
    );
    Ok(())
}

fn cmd_integrate(opts: &HashMap<String, String>) -> Result<(), String> {
    let (ds, truth) = load_or_generate(opts)?;
    let cfg = pipeline_config(opts)?;
    let res = run_pipeline(&ds, &cfg).map_err(|e| e.to_string())?;
    let quality = truth.as_ref().map(|t| metrics::evaluate(&res, &ds, t));
    let report = RunReport::new(&ds, &res, quality.as_ref());
    if opts.contains_key("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        print!("{}", report.render());
    }
    Ok(())
}

fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    let preload = if opts.contains_key("in") || opts.contains_key("seed") {
        let (ds, _) = load_or_generate(opts)?;
        ds.into_records()
    } else {
        Vec::new()
    };
    let durability = match opts.get("data-dir") {
        Some(dir) if !opts.contains_key("no-wal") => Some(bdi::serve::DurabilityConfig {
            data_dir: dir.into(),
            sync_every: num(opts, "sync-interval", 64usize)?,
            snapshot_every: num(opts, "snapshot-every", 4096u64)?,
        }),
        _ => None,
    };
    let durable = durability.is_some();
    let metrics_file = opts.get("metrics-file").map(std::path::PathBuf::from);
    let cfg = bdi::serve::ServerConfig {
        addr: opts
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7171".to_string()),
        threshold: num(opts, "threshold", 0.9f64)?,
        queue_capacity: num(opts, "queue", 256usize)?,
        shards: num(opts, "shards", 8usize)?,
        engine_threads: num(opts, "engine-threads", 0usize)?,
        preload,
        durability,
        slow_ms: opts
            .get("slow-ms")
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("--slow-ms: cannot parse '{v}'"))
            })
            .transpose()?,
        metrics_file: metrics_file.clone(),
        metrics_interval: std::time::Duration::from_secs(num(opts, "metrics-interval", 5u64)?),
        trace_sample: num(opts, "trace-sample", 0u64)?,
        http_addr: opts.get("http").cloned(),
        workers: num(opts, "workers", 0usize)?,
        front_end: if opts.contains_key("threaded") {
            bdi::serve::FrontEndKind::Threaded
        } else {
            bdi::serve::FrontEndKind::Readiness
        },
        binary_wire: !opts.contains_key("no-binary"),
        ..Default::default()
    };
    let server = bdi::serve::Server::start(cfg).map_err(|e| e.to_string())?;
    println!(
        "bdi-serve listening on {} (generation {}, {}); send \"shutdown\" to stop",
        server.addr(),
        server.generation(),
        if durable { "durable" } else { "in-memory" }
    );
    if let Some(http) = server.http_addr() {
        println!("HTTP gateway on http://{http}/ (see docs/HTTP_API.md)");
    }
    if let Some(path) = metrics_file {
        println!("metrics exposition at {}", path.display());
    }
    server.wait();
    Ok(())
}

fn cmd_route(opts: &HashMap<String, String>) -> Result<(), String> {
    let backends: Vec<String> = opts
        .get("backends")
        .ok_or("route needs --backends HOST:PORT,HOST:PORT,...")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let cfg = bdi::serve::RouterConfig {
        addr: opts
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7070".to_string()),
        backends,
        replicas: num(opts, "replicas", 1usize)?,
        threshold: num(opts, "threshold", 0.9f64)?,
        batch: num(opts, "batch", 64usize)?,
        pipeline: num(opts, "pipeline", 4usize)?,
        queue_capacity: num(opts, "queue", 1024usize)?,
        retries: num(opts, "retries", 2u32)?,
        http_addr: opts.get("http").cloned(),
        workers: num(opts, "workers", 0usize)?,
        trace_sample: num(opts, "trace-sample", 0u64)?,
    };
    let n = cfg.backends.len();
    let replicas = cfg.replicas.max(1);
    let router = bdi::serve::Router::start(cfg).map_err(|e| e.to_string())?;
    println!(
        "bdi-route listening on {} over {} shard{} x {replicas} replica{}; send \"shutdown\" to stop",
        router.addr(),
        n / replicas,
        if n / replicas == 1 { "" } else { "s" },
        if replicas == 1 { "" } else { "s" }
    );
    if let Some(http) = router.http_addr() {
        println!("HTTP gateway on http://{http}/ (see docs/HTTP_API.md)");
    }
    router.wait();
    Ok(())
}

fn cmd_load(opts: &HashMap<String, String>) -> Result<(), String> {
    let addr = opts
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|_| format!("--addr: cannot parse '{addr}'"))?;
    let cfg = bdi::serve::LoadConfig {
        seed: num(opts, "seed", 7u64)?,
        entities: num(opts, "entities", 120usize)?,
        sources: num(opts, "sources", 12usize)?,
        max_source_size: num(opts, "max-source-size", 60usize)?,
        readers: num(opts, "readers", 4usize)?,
        batch: num(opts, "batch", 1usize)?,
        http: opts.contains_key("http"),
        binary: opts.contains_key("binary"),
        trace_sample: num(opts, "trace-sample", 0u64)?,
    };
    let report = bdi::serve::run_load(addr, &cfg).map_err(|e| e.to_string())?;
    if cfg.binary {
        println!(
            "wire format: {}",
            if report.wire_binary {
                "binary frames (negotiated)"
            } else {
                "JSON lines (server did not offer binary-frames)"
            }
        );
    }
    println!(
        "ingested {} records in {:.2}s ({:.0} rec/s), p50 {}us, p99 {}us, generation {}",
        report.records,
        report.ingest_secs,
        report.ingest_per_sec,
        report.ingest_p50_us,
        report.ingest_p99_us,
        report.generation
    );
    if cfg.batch > 1 {
        println!(
            "batched: {} records per request (median), per-request p50/p99 above",
            report.batch_records_p50
        );
    }
    println!(
        "{} readers: {} lookups ({:.0}/s), p50 {}us, p99 {}us",
        cfg.readers, report.queries, report.reads_per_sec, report.p50_us, report.p99_us
    );
    println!(
        "server-side: ingest p50 {}ns p99 {}ns, lookup p50 {}ns p99 {}ns",
        report.server_ingest_p50_ns,
        report.server_ingest_p99_ns,
        report.server_lookup_p50_ns,
        report.server_lookup_p99_ns
    );
    if report.read_failovers > 0
        || report.backend_retries > 0
        || report.replicas_dropped > 0
        || !report.replica_errors.is_empty()
    {
        println!(
            "fleet: {} read failover{}, {} connect retr{}, {} copy(ies) dropped on down lanes",
            report.read_failovers,
            if report.read_failovers == 1 { "" } else { "s" },
            report.backend_retries,
            if report.backend_retries == 1 {
                "y"
            } else {
                "ies"
            },
            report.replicas_dropped
        );
        for (lane, errors) in &report.replica_errors {
            println!("  {lane} = {errors}");
        }
    }
    if report.traced_requests > 0 {
        if let Some(id) = report.last_trace_id {
            println!(
                "traced {} ingest request(s); last trace id {id:016x} — fetch it with `bdi admin --addr {} --trace {id:016x}` while it's hot",
                report.traced_requests, addr
            );
        }
    }
    Ok(())
}

fn cmd_admin(opts: &HashMap<String, String>) -> Result<(), String> {
    let addr = opts
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let mut client = bdi::serve::Client::connect(&addr).map_err(|e| format!("{addr}: {e}"))?;
    if opts.contains_key("hello") {
        let (version, features) = client.hello().map_err(|e| e.to_string())?;
        println!(
            "{addr}: protocol v{version}, features: {}",
            features.join(", ")
        );
        return Ok(());
    }
    if let Some(shard) = opts.get("split") {
        let shard: usize = shard
            .parse()
            .map_err(|_| format!("--split: cannot parse shard '{shard}'"))?;
        let backends: Vec<String> = opts
            .get("backends")
            .ok_or("--split needs --backends HOST:PORT[,HOST:PORT...] (one per replica)")?
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let (new_shard, moved) = client.split(shard, backends).map_err(|e| e.to_string())?;
        println!("split shard {shard}: shard {new_shard} now serves {moved} replayed record(s)");
        return Ok(());
    }
    if let Some(slot) = opts.get("replace") {
        let (shard, replica) = slot
            .split_once(':')
            .and_then(|(s, r)| Some((s.parse().ok()?, r.parse().ok()?)))
            .ok_or_else(|| format!("--replace: expected SHARD:REPLICA, got '{slot}'"))?;
        let backend = opts
            .get("backend")
            .ok_or("--replace needs --backend HOST:PORT")?
            .clone();
        let synced = client
            .replace(shard, replica, backend.clone())
            .map_err(|e| e.to_string())?;
        println!(
            "replaced shard {shard} replica {replica} with {backend} ({synced} records synced)"
        );
        return Ok(());
    }
    if let Some(id) = opts.get("trace") {
        let id = u64::from_str_radix(id.trim_start_matches("0x"), 16)
            .map_err(|_| format!("--trace: expected a hex trace id, got '{id}'"))?;
        let body = client.trace(id).map_err(|e| e.to_string())?;
        if body.spans.is_empty() {
            return Err(format!(
                "trace {id:016x} is not in the flight recorder (traces age out; re-capture and fetch promptly)"
            ));
        }
        let tree = bdi::serve::TraceTree::from_spans(id, body.spans);
        println!("trace {id:016x}");
        for root in &tree.roots {
            print_trace_node(root, 0);
        }
        return Ok(());
    }
    if let Some(n) = opts.get("trace-recent") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("--trace-recent: cannot parse '{n}'"))?;
        let recent = client.trace_recent(n).map_err(|e| e.to_string())?;
        if recent.is_empty() {
            println!("no retained traces (is --trace-sample set on the server?)");
        }
        for id in recent {
            println!("{id:016x}");
        }
        return Ok(());
    }
    Err("admin needs one of --hello, --split, --replace, --trace, --trace-recent".to_string())
}

/// One line per span: indent by depth, name, command kind, wall and
/// self time, then the small numeric attributes.
fn print_trace_node(node: &bdi::serve::TraceTreeNode, depth: usize) {
    let span = &node.span;
    let cmd = if span.cmd.is_empty() {
        String::new()
    } else {
        format!(" [{}]", span.cmd)
    };
    let attrs = if span.attrs.is_empty() {
        String::new()
    } else {
        let parts: Vec<String> = span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("  {}", parts.join(" "))
    };
    println!(
        "{:indent$}{}{cmd}  {:.1}us (self {:.1}us){attrs}",
        "",
        span.name,
        span.duration_ns() as f64 / 1_000.0,
        node.self_ns as f64 / 1_000.0,
        indent = depth * 2
    );
    for child in &node.children {
        print_trace_node(child, depth + 1);
    }
}

fn cmd_stats(opts: &HashMap<String, String>) -> Result<(), String> {
    let addr = opts
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let mut client = bdi::serve::Client::connect(&addr).map_err(|e| format!("{addr}: {e}"))?;
    if opts.contains_key("prometheus") {
        let body = client.metrics().map_err(|e| e.to_string())?;
        let snapshot = body
            .to_snapshot()
            .ok_or("server sent a malformed metrics body")?;
        print!("{}", snapshot.to_prometheus());
    } else {
        let stats = client.stats().map_err(|e| e.to_string())?;
        println!(
            "{}",
            serde_json::to_string_pretty(&stats).map_err(|e| e.to_string())?
        );
    }
    Ok(())
}

fn cmd_lookup(opts: &HashMap<String, String>) -> Result<(), String> {
    let id = opts.get("id").ok_or("lookup needs --id IDENTIFIER")?;
    let (ds, _) = load_or_generate(opts)?;
    let cfg = pipeline_config(opts)?;
    let res = run_pipeline(&ds, &cfg).map_err(|e| e.to_string())?;
    let catalog = Catalog::materialize(&ds, &res);
    match catalog.lookup(id) {
        Some(entry) => {
            println!(
                "\"{}\" ({} pages on {} sources)",
                entry.title,
                entry.pages.len(),
                entry.sources().len()
            );
            for (attr, value) in &entry.attributes {
                println!("  {attr:<24} = {value}");
            }
            Ok(())
        }
        None => Err(format!("identifier '{id}' not found in the fused catalog")),
    }
}
