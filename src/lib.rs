//! # bdi — Big Data Integration in Rust
//!
//! A full reproduction of the system described in the ICDE 2013 tutorial
//! *"Big Data Integration"* (Dong & Srivastava): schema alignment, record
//! linkage, and data fusion re-architected for the Volume / Velocity /
//! Variety / Veracity of web data, plus every substrate needed to
//! exercise it end-to-end (a generative product-web model, page
//! rendering, wrapper induction, and an identifier-driven discovery
//! crawler).
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a stable module name.
//!
//! ## Quickstart
//!
//! ```
//! use bdi::synth::{World, WorldConfig};
//! use bdi::core::{run_pipeline, PipelineConfig};
//!
//! // generate a small synthetic product web (deterministic by seed) …
//! let world = World::generate(WorldConfig::tiny(42));
//! // … and integrate it: linkage → schema alignment → fusion
//! let result = run_pipeline(&world.dataset, &PipelineConfig::default()).unwrap();
//! assert!(!result.resolution.decided.is_empty());
//!
//! // oracle evaluation (the synthetic world ships its ground truth)
//! let quality = bdi::core::metrics::evaluate(&result, &world.dataset, &world.truth);
//! assert!(quality.linkage_pairwise.f1 > 0.5);
//! ```
//!
//! ## Module map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `bdi-types` | values, records, sources, datasets, ground truth |
//! | [`textsim`] | `bdi-textsim` | string similarities and tokenization |
//! | [`synth`] | `bdi-synth` | the synthetic product-web generator |
//! | [`extract`] | `bdi-extract` | page rendering, wrapper induction, discovery crawl |
//! | [`linkage`] | `bdi-linkage` | blocking, matching, clustering, incremental linkage |
//! | [`schema`] | `bdi-schema` | attribute profiling, matching, p-mediated schemas |
//! | [`fusion`] | `bdi-fusion` | Vote, TruthFinder, Accu, copy detection, AccuCopy |
//! | [`select`] | `bdi-select` | "less is more" source selection |
//! | [`crowd`] | `bdi-crowd` | crowdsourced + active-learning linkage |
//! | [`core`] | `bdi-core` | the end-to-end pipeline, metrics, velocity loop |
//! | [`serve`] | `bdi-serve` | live integration service: concurrent ingest, snapshot queries |
//! | [`obs`] | `bdi-obs` | metrics registry: counters, gauges, latency histograms |

#![forbid(unsafe_code)]

pub use bdi_core as core;
pub use bdi_crowd as crowd;
pub use bdi_extract as extract;
pub use bdi_fusion as fusion;
pub use bdi_linkage as linkage;
pub use bdi_obs as obs;
pub use bdi_schema as schema;
pub use bdi_select as select;
pub use bdi_serve as serve;
pub use bdi_synth as synth;
pub use bdi_textsim as textsim;
pub use bdi_types as types;
