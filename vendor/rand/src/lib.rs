//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access and no
//! registry cache, so the workspace vendors a minimal, dependency-free
//! implementation of the `rand 0.8` API surface it actually uses:
//!
//! * [`SeedableRng::seed_from_u64`] construction (the only construction the
//!   workspace performs — every RNG is seeded for reproducibility),
//! * [`Rng::gen`] for `f64` / `u32` / `u64` / `bool`,
//! * [`Rng::gen_bool`] and [`Rng::gen_range`] over integer and float
//!   ranges (half-open and inclusive),
//! * [`rngs::StdRng`] / [`rngs::SmallRng`].
//!
//! The generator core is **xoshiro256++** seeded via SplitMix64 — a
//! different stream than upstream `StdRng` (ChaCha12), so absolute synthetic
//! worlds differ from runs made with the real crate, but every determinism
//! property holds: the same seed always produces the same stream.

#![forbid(unsafe_code)]

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (only the `seed_from_u64` path is provided).
pub trait SeedableRng: Sized {
    /// Deterministically construct the generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range; panics when empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_impl!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// User-facing sampling adapters over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution (`f64` in `[0,1)`, full-width
    /// integers, fair `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        self.gen::<f64>() < p
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Small generator alias (same core; kept for API compatibility).
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as upstream rand seeds from u64.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes_and_frequency() {
        let mut r = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 drew {hits}/10000");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let i = r.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
            let f = r.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
        // inclusive integer ranges can hit both endpoints
        let draws: Vec<u32> = (0..200).map(|_| r.gen_range(0u32..=1)).collect();
        assert!(draws.contains(&0) && draws.contains(&1));
    }
}
