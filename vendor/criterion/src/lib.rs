//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the call surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::default()
//! .sample_size(n)`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, `black_box` — as a
//! plain wall-clock runner: each benchmark is warmed up, timed over
//! `sample_size` samples, and reported as median / mean / min per
//! iteration on stdout. No statistical analysis, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub use std::hint::black_box;

/// Top-level benchmark configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, self.measurement_time, &mut f);
        self
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: &str, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Time `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &label,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            &mut f,
        );
        self
    }

    /// Time `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &label,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Close the group (marker only; results were already printed).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code to
/// time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` `self.iters` times, recording the total elapsed time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    // Calibrate: run once to size iteration batches to the budget.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = measurement_time / sample_size as u32;
    let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{label}: median {} | mean {} | min {}  ({sample_size} samples x {iters} iters)",
        fmt_time(median),
        fmt_time(mean),
        fmt_time(samples[0]),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Define a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3).measurement_time(
            std::time::Duration::from_millis(10));
        targets = sample_bench
    }

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
