//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Supports the property-test surface this workspace uses:
//!
//! * `proptest! { #[test] fn name(x in strategy, ...) { ... } }`
//! * `prop_assert!` / `prop_assert_eq!` (with optional format message)
//! * strategies: integer/float ranges (half-open and inclusive), string
//!   patterns (a regex subset: char classes, `.`, `{m}`/`{m,n}` repeats),
//!   tuples of strategies, [`collection::vec`], [`array::uniform6`]
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test name (reproducible across runs, no
//! persistence files), there is **no shrinking** (the failing inputs are
//! printed verbatim), and the default case count is 64 (override with the
//! `PROPTEST_CASES` environment variable).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Failure raised by `prop_assert!`-style macros inside a property body.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
    reject: bool,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError {
            message: msg.into(),
            reject: false,
        }
    }

    /// Mark the case as rejected (`prop_assume!` miss): skipped, not failed.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError {
            message: msg.into(),
            reject: true,
        }
    }

    /// Whether this is a rejection rather than an assertion failure.
    pub fn is_reject(&self) -> bool {
        self.reject
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// Number of cases per property (default 64, `PROPTEST_CASES` overrides).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-test, per-case seed (FNV-1a over the test name).
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// RNG for one test case.
pub fn test_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

// ---- range strategies -------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64);

// ---- tuple strategies -------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---- string pattern strategies ----------------------------------------

/// One parsed pattern element: a repeated character source.
struct Atom {
    /// `None` = any printable char (`.`), `Some` = explicit class.
    class: Option<Vec<char>>,
    min: usize,
    max: usize,
}

/// Characters `.` may produce: printable ASCII plus a few multibyte
/// code points so char-based algorithms see non-ASCII input.
const ANY_EXTRA: [char; 6] = ['é', 'ß', 'λ', '中', 'Ω', '±'];

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in pattern `{pattern}`");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern `{pattern}`");
                i += 1; // consume ']'
                Some(set)
            }
            '.' => {
                i += 1;
                None
            }
            '\\' => {
                i += 1;
                let c = chars.get(i).copied().expect("dangling escape");
                i += 1;
                Some(vec![c])
            }
            c => {
                i += 1;
                Some(vec![c])
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repeat in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repeat lower bound"),
                    hi.trim().parse().expect("bad repeat upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom { class, min, max });
    }
    atoms
}

fn gen_from_pattern(atoms: &[Atom], rng: &mut StdRng) -> String {
    let mut out = String::new();
    for atom in atoms {
        let count = rng.gen_range(atom.min..=atom.max);
        for _ in 0..count {
            match &atom.class {
                Some(set) => out.push(set[rng.gen_range(0..set.len())]),
                None => {
                    if rng.gen_range(0u32..8) == 0 {
                        out.push(ANY_EXTRA[rng.gen_range(0..ANY_EXTRA.len())]);
                    } else {
                        out.push(char::from(rng.gen_range(0x20u8..0x7F)));
                    }
                }
            }
        }
    }
    out
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        gen_from_pattern(&parse_pattern(self), rng)
    }
}

// ---- collection / array strategies ------------------------------------

/// `proptest::collection` equivalents.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for vectors with element strategy `S` and a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Vector of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::array` equivalents.
pub mod array {
    use super::{StdRng, Strategy};

    /// Strategy for `[S::Value; 6]`.
    pub struct Uniform6<S> {
        element: S,
    }

    /// Six independent draws from `element`.
    pub fn uniform6<S: Strategy>(element: S) -> Uniform6<S> {
        Uniform6 { element }
    }

    impl<S: Strategy> Strategy for Uniform6<S> {
        type Value = [S::Value; 6];

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            core::array::from_fn(|_| self.element.generate(rng))
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Strategy, TestCaseError};
}

/// Define property tests: each `fn` runs [`cases`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let total = $crate::cases();
            for case in 0..total {
                let mut __rng = $crate::test_rng($crate::seed_for(stringify!($name), case));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = {
                    let mut s = String::new();
                    $(
                        s.push_str(stringify!($arg));
                        s.push_str(" = ");
                        s.push_str(&format!("{:?}; ", $arg));
                    )+
                    s
                };
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    if e.is_reject() {
                        continue; // prop_assume! miss: skip this case
                    }
                    panic!(
                        "property `{}` failed on case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case, total, e, __inputs
                    );
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Assert inside a property body; failure reports the inputs, not a panic
/// backtrace.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Skip the current case unless `cond` holds (rejection, not failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_rng;

    #[test]
    fn pattern_strategies_match_shape() {
        let mut rng = test_rng(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{1,2}", &mut rng);
            assert!((1..=2).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));

            let t = Strategy::generate(&"[A-Za-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&t.chars().count()));
            assert!(t.chars().all(|c| c.is_ascii_alphabetic()));

            let u = Strategy::generate(&"[a-z#]{0,20}", &mut rng);
            assert!(u.chars().all(|c| c == '#' || c.is_ascii_lowercase()));

            let dot = Strategy::generate(&".{0,24}", &mut rng);
            assert!(dot.chars().count() <= 24);
        }
    }

    #[test]
    fn composite_strategies() {
        let mut rng = test_rng(2);
        let v = Strategy::generate(&crate::collection::vec("[a-c]{1,2}", 0..8), &mut rng);
        assert!(v.len() < 8);
        let a = Strategy::generate(&crate::array::uniform6(-5.0f64..5.0), &mut rng);
        assert!(a.iter().all(|x| (-5.0..5.0).contains(x)));
        let (p, q) = Strategy::generate(&(0usize..20, 0usize..20), &mut rng);
        assert!(p < 20 && q < 20);
    }

    proptest! {
        #[test]
        fn macro_runs_and_passes(a in 0usize..10, b in 0usize..10) {
            prop_assert!(a + b < 20);
            prop_assert_eq!(a + b, b + a);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_reports_inputs() {
        proptest! {
            fn always_fails(a in 0usize..10) {
                prop_assert!(a > 100, "a was {a}");
            }
        }
        always_fails();
    }
}
