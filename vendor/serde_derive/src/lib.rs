//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` shim (`Serialize::serialize(&self) -> serde::Value`,
//! `Deserialize::deserialize(&serde::Value) -> Result<Self, serde::Error>`)
//! without `syn`/`quote`: the item is lexed into a small token tree, the
//! shape (named/tuple/unit struct or enum) is extracted by hand, and the
//! impl is emitted as a string parsed back into a `TokenStream`.
//!
//! Supported `#[serde(...)]` attributes — exactly the set this workspace
//! uses: `skip` (omit on serialize, `Default::default()` on deserialize),
//! `transparent` (delegate to the single field), `with = "module"`
//! (call `module::serialize` / `module::deserialize`), and
//! `rename = "name"` on fields and variants. Enum representation follows
//! serde's externally-tagged convention: unit variants serialize to
//! their (wire) name as a string, data variants to a single-key object.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Simplified group delimiter.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Delim {
    Paren,
    Brace,
    Bracket,
}

/// Simplified token for shape parsing.
#[derive(Clone, Debug)]
enum Tok {
    Ident(String),
    Punct(char),
    Group(Delim, Vec<Tok>),
    Lit(String),
}

/// Flatten a `TokenStream` into [`Tok`]s (transparent `None` groups are
/// spliced inline).
fn lex(ts: TokenStream) -> Vec<Tok> {
    let mut out = Vec::new();
    for tt in ts {
        match tt {
            TokenTree::Ident(i) => out.push(Tok::Ident(i.to_string())),
            TokenTree::Punct(p) => out.push(Tok::Punct(p.as_char())),
            TokenTree::Literal(l) => out.push(Tok::Lit(l.to_string())),
            TokenTree::Group(g) => match g.delimiter() {
                Delimiter::Parenthesis => out.push(Tok::Group(Delim::Paren, lex(g.stream()))),
                Delimiter::Brace => out.push(Tok::Group(Delim::Brace, lex(g.stream()))),
                Delimiter::Bracket => out.push(Tok::Group(Delim::Bracket, lex(g.stream()))),
                Delimiter::None => out.extend(lex(g.stream())),
            },
        }
    }
    out
}

/// One field of a struct or struct variant.
#[derive(Clone, Debug)]
struct Field {
    name: Option<String>,
    skip: bool,
    with: Option<String>,
    rename: Option<String>,
}

impl Field {
    /// The key this field uses on the wire.
    fn wire(&self) -> &str {
        self.rename
            .as_deref()
            .or(self.name.as_deref())
            .unwrap_or_default()
    }
}

/// One enum variant.
#[derive(Clone, Debug)]
struct Variant {
    name: String,
    wire: String,
    shape: Shape,
}

/// Variant payload shape.
#[derive(Clone, Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// The parsed derive target.
#[derive(Clone, Debug)]
enum Kind {
    Unit,
    Named(Vec<Field>),
    Tuple(Vec<Field>),
    Enum(Vec<Variant>),
}

/// Full derive input: name, generic params, container attrs, shape.
#[derive(Clone, Debug)]
struct Input {
    name: String,
    generics: Vec<String>,
    transparent: bool,
    kind: Kind,
}

/// A single item from a `#[serde(...)]` attribute.
struct SAttr {
    name: String,
    value: Option<String>,
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// If `inner` is the content of a `#[serde(...)]` attribute, return its
/// comma-separated items.
fn serde_attr_items(inner: &[Tok]) -> Option<Vec<SAttr>> {
    match (inner.first(), inner.get(1)) {
        (Some(Tok::Ident(s)), Some(Tok::Group(Delim::Paren, items))) if s == "serde" => {
            let mut out = Vec::new();
            let mut i = 0;
            while i < items.len() {
                if let Tok::Ident(n) = &items[i] {
                    let mut value = None;
                    if matches!(items.get(i + 1), Some(Tok::Punct('='))) {
                        if let Some(Tok::Lit(l)) = items.get(i + 2) {
                            value = Some(unquote(l));
                        }
                        i += 3;
                    } else {
                        i += 1;
                    }
                    out.push(SAttr {
                        name: n.clone(),
                        value,
                    });
                } else {
                    i += 1;
                }
            }
            Some(out)
        }
        _ => None,
    }
}

/// Attribute payload collected ahead of a field or variant.
#[derive(Default)]
struct TakenAttrs {
    skip: bool,
    with: Option<String>,
    rename: Option<String>,
}

/// Consume leading `#[...]` attributes at `toks[i..]`, returning what any
/// `#[serde(...)]` among them carried plus the next index.
fn take_attrs(toks: &[Tok], mut i: usize) -> (TakenAttrs, usize) {
    let mut out = TakenAttrs::default();
    while matches!(toks.get(i), Some(Tok::Punct('#'))) {
        if let Some(Tok::Group(Delim::Bracket, inner)) = toks.get(i + 1) {
            if let Some(items) = serde_attr_items(inner) {
                for a in items {
                    match a.name.as_str() {
                        "skip" => out.skip = true,
                        "with" => out.with = a.value,
                        "rename" => out.rename = a.value,
                        _ => {}
                    }
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    (out, i)
}

fn expect_ident(tok: Option<&Tok>, what: &str) -> String {
    match tok {
        Some(Tok::Ident(s)) => s.clone(),
        other => panic!("serde_derive: expected {what}, found {other:?}"),
    }
}

/// Parse the fields of a `{ ... }` struct body or struct variant.
fn parse_named_fields(toks: &[Tok]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (attrs, ni) = take_attrs(toks, i);
        i = ni;
        if i >= toks.len() {
            break;
        }
        if matches!(&toks[i], Tok::Ident(s) if s == "pub") {
            i += 1;
            if matches!(toks.get(i), Some(Tok::Group(Delim::Paren, _))) {
                i += 1;
            }
        }
        let name = expect_ident(toks.get(i), "field name");
        i += 1;
        assert!(
            matches!(toks.get(i), Some(Tok::Punct(':'))),
            "serde_derive: expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => depth -= 1,
                Tok::Punct(',') if depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name: Some(name),
            skip: attrs.skip,
            with: attrs.with,
            rename: attrs.rename,
        });
    }
    fields
}

/// Parse the fields of a `( ... )` tuple body.
fn parse_tuple_fields(toks: &[Tok]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (attrs, ni) = take_attrs(toks, i);
        i = ni;
        if i >= toks.len() {
            break;
        }
        if matches!(&toks[i], Tok::Ident(s) if s == "pub") {
            i += 1;
            if matches!(toks.get(i), Some(Tok::Group(Delim::Paren, _))) {
                i += 1;
            }
        }
        let mut depth = 0i32;
        let mut saw_type = false;
        while i < toks.len() {
            match &toks[i] {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => depth -= 1,
                Tok::Punct(',') if depth == 0 => {
                    i += 1;
                    break;
                }
                _ => saw_type = true,
            }
            i += 1;
        }
        if saw_type {
            fields.push(Field {
                name: None,
                skip: attrs.skip,
                with: attrs.with,
                rename: attrs.rename,
            });
        }
    }
    fields
}

/// Parse the variants of an enum body.
fn parse_variants(toks: &[Tok]) -> Vec<Variant> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (attrs, ni) = take_attrs(toks, i);
        i = ni;
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(toks.get(i), "variant name");
        i += 1;
        let shape = match toks.get(i) {
            Some(Tok::Group(Delim::Paren, inner)) => {
                i += 1;
                Shape::Tuple(parse_tuple_fields(inner).len())
            }
            Some(Tok::Group(Delim::Brace, inner)) => {
                i += 1;
                Shape::Struct(parse_named_fields(inner))
            }
            _ => Shape::Unit,
        };
        while i < toks.len() && !matches!(&toks[i], Tok::Punct(',')) {
            i += 1;
        }
        i += 1;
        let wire = attrs.rename.unwrap_or_else(|| name.clone());
        out.push(Variant { name, wire, shape });
    }
    out
}

/// Parse the whole derive input item.
fn parse_input(toks: &[Tok]) -> Input {
    let mut i = 0;
    let mut transparent = false;
    // Container attributes and visibility keywords up to `struct`/`enum`.
    while i < toks.len() {
        match &toks[i] {
            Tok::Punct('#') => {
                if let Some(Tok::Group(Delim::Bracket, inner)) = toks.get(i + 1) {
                    if let Some(items) = serde_attr_items(inner) {
                        for a in items {
                            if a.name == "transparent" {
                                transparent = true;
                            }
                        }
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Tok::Ident(s) if s == "struct" || s == "enum" => break,
            _ => i += 1,
        }
    }
    let is_struct = matches!(&toks[i], Tok::Ident(s) if s == "struct");
    i += 1;
    let name = expect_ident(toks.get(i), "type name");
    i += 1;

    let mut generics = Vec::new();
    if matches!(toks.get(i), Some(Tok::Punct('<'))) {
        i += 1;
        let mut depth = 1i32;
        let mut expect_param = true;
        while i < toks.len() && depth > 0 {
            match &toks[i] {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => depth -= 1,
                Tok::Punct(',') if depth == 1 => expect_param = true,
                Tok::Punct(':') if depth == 1 => expect_param = false,
                Tok::Punct('\'') => expect_param = false,
                Tok::Ident(id) if depth == 1 && expect_param => {
                    if id != "const" {
                        generics.push(id.clone());
                    }
                    expect_param = false;
                }
                _ => {}
            }
            i += 1;
        }
    }

    // Skip any `where` clause; the body is the next brace/paren group or `;`.
    let kind = loop {
        match toks.get(i) {
            Some(Tok::Group(Delim::Brace, inner)) => {
                break if is_struct {
                    Kind::Named(parse_named_fields(inner))
                } else {
                    Kind::Enum(parse_variants(inner))
                };
            }
            Some(Tok::Group(Delim::Paren, inner)) if is_struct => {
                break Kind::Tuple(parse_tuple_fields(inner));
            }
            Some(Tok::Punct(';')) => break Kind::Unit,
            Some(_) => i += 1,
            None => panic!("serde_derive: no body found for `{name}`"),
        }
    };

    Input {
        name,
        generics,
        transparent,
        kind,
    }
}

/// `impl<...>` and `<...>` strings for a generic target.
fn generics_for(input: &Input, bound: &str) -> (String, String) {
    if input.generics.is_empty() {
        return (String::new(), String::new());
    }
    let bounded: Vec<String> = input
        .generics
        .iter()
        .map(|g| format!("{g}: {bound}"))
        .collect();
    (
        format!("<{}>", bounded.join(", ")),
        format!("<{}>", input.generics.join(", ")),
    )
}

fn ser_field_expr(f: &Field, access: &str) -> String {
    match &f.with {
        Some(p) => format!("{p}::serialize({access})"),
        None => format!("serde::Serialize::serialize({access})"),
    }
}

fn de_field_expr(f: &Field, source: &str, label: &str) -> String {
    let call = match &f.with {
        Some(p) => format!("{p}::deserialize({source})"),
        None => format!("serde::Deserialize::deserialize({source})"),
    };
    format!("{call}.map_err(|e| e.field(\"{label}\"))?")
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let (ig, tg) = generics_for(input, "serde::Serialize");
    let body = match &input.kind {
        Kind::Unit => "serde::Value::Null".to_string(),
        Kind::Named(fields) => {
            if input.transparent {
                let f = fields
                    .iter()
                    .find(|f| !f.skip)
                    .expect("serde(transparent) needs a field");
                ser_field_expr(f, &format!("&self.{}", f.name.as_ref().unwrap()))
            } else {
                let mut s = String::from("let mut m = serde::Map::new();\n");
                for f in fields.iter().filter(|f| !f.skip) {
                    let fname = f.name.as_ref().unwrap();
                    let wire = f.wire();
                    let expr = ser_field_expr(f, &format!("&self.{fname}"));
                    s.push_str(&format!("m.insert(String::from(\"{wire}\"), {expr});\n"));
                }
                s.push_str("serde::Value::Object(m)");
                s
            }
        }
        Kind::Tuple(fields) => {
            if fields.len() == 1 || input.transparent {
                ser_field_expr(&fields[0], "&self.0")
            } else {
                let items: Vec<String> = (0..fields.len())
                    .map(|i| ser_field_expr(&fields[i], &format!("&self.{i}")))
                    .collect();
                format!("serde::Value::Array(vec![{}])", items.join(", "))
            }
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                let wn = &v.wire;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::String(String::from(\"{wn}\")),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::serialize(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::serialize({b})"))
                                .collect();
                            format!("serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{ let mut m = serde::Map::new(); \
                             m.insert(String::from(\"{wn}\"), {inner}); \
                             serde::Value::Object(m) }}\n",
                            binds = binds.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let pat: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let fname = f.name.as_ref().unwrap();
                                if f.skip {
                                    format!("{fname}: _")
                                } else {
                                    fname.clone()
                                }
                            })
                            .collect();
                        let mut inner = String::from("let mut inner = serde::Map::new();\n");
                        for f in fields.iter().filter(|f| !f.skip) {
                            let fname = f.name.as_ref().unwrap();
                            let wire = f.wire();
                            let expr = ser_field_expr(f, fname);
                            inner.push_str(&format!(
                                "inner.insert(String::from(\"{wire}\"), {expr});\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pat} }} => {{ {inner} \
                             let mut m = serde::Map::new(); \
                             m.insert(String::from(\"{wn}\"), serde::Value::Object(inner)); \
                             serde::Value::Object(m) }}\n",
                            pat = pat.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl{ig} serde::Serialize for {name}{tg} {{ \
         fn serialize(&self) -> serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let (ig, tg) = generics_for(input, "serde::Deserialize");
    let body = match &input.kind {
        Kind::Unit => format!(
            "match v {{ serde::Value::Null => Ok({name}), \
             _ => Err(serde::Error::custom(\"expected null for {name}\")) }}"
        ),
        Kind::Named(fields) => {
            if input.transparent {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        let fname = f.name.as_ref().unwrap();
                        if f.skip {
                            format!("{fname}: ::std::default::Default::default()")
                        } else {
                            format!("{fname}: {}", de_field_expr(f, "v", fname))
                        }
                    })
                    .collect();
                format!("Ok({name} {{ {} }})", inits.join(", "))
            } else {
                let mut s = format!(
                    "let obj = match v {{ serde::Value::Object(m) => m, \
                     _ => return Err(serde::Error::custom(\"expected object for {name}\")) }};\n"
                );
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        let fname = f.name.as_ref().unwrap();
                        if f.skip {
                            format!("{fname}: ::std::default::Default::default()")
                        } else {
                            let wire = f.wire();
                            let src = format!("obj.get(\"{wire}\").unwrap_or(&serde::Value::Null)");
                            format!("{fname}: {}", de_field_expr(f, &src, wire))
                        }
                    })
                    .collect();
                s.push_str(&format!("Ok({name} {{ {} }})", inits.join(", ")));
                s
            }
        }
        Kind::Tuple(fields) => {
            let n = fields.len();
            if n == 1 {
                format!("Ok({name}({}))", de_field_expr(&fields[0], "v", "0"))
            } else {
                let items: Vec<String> = (0..n)
                    .map(|i| de_field_expr(&fields[i], &format!("&a[{i}]"), &i.to_string()))
                    .collect();
                format!(
                    "let a = match v {{ serde::Value::Array(a) if a.len() == {n} => a, \
                     _ => return Err(serde::Error::custom(\
                     \"expected {n}-element array for {name}\")) }};\nOk({name}({}))",
                    items.join(", ")
                )
            }
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tag_arms = String::new();
            for v in variants {
                let vn = &v.name;
                let wn = &v.wire;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{wn}\" => Ok({name}::{vn}),\n"));
                    }
                    Shape::Tuple(1) => {
                        tag_arms.push_str(&format!(
                            "\"{wn}\" => Ok({name}::{vn}(\
                             serde::Deserialize::deserialize(inner)\
                             .map_err(|e| e.field(\"{vn}\"))?)),\n"
                        ));
                    }
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "serde::Deserialize::deserialize(&a[{i}])\
                                     .map_err(|e| e.field(\"{vn}\"))?"
                                )
                            })
                            .collect();
                        tag_arms.push_str(&format!(
                            "\"{wn}\" => {{ let a = match inner {{ \
                             serde::Value::Array(a) if a.len() == {n} => a, \
                             _ => return Err(serde::Error::custom(\
                             \"expected {n}-element array for {name}::{vn}\")) }}; \
                             Ok({name}::{vn}({items})) }}\n",
                            items = items.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let fname = f.name.as_ref().unwrap();
                                if f.skip {
                                    format!("{fname}: ::std::default::Default::default()")
                                } else {
                                    let wire = f.wire();
                                    let src = format!(
                                        "obj.get(\"{wire}\").unwrap_or(&serde::Value::Null)"
                                    );
                                    format!("{fname}: {}", de_field_expr(f, &src, wire))
                                }
                            })
                            .collect();
                        tag_arms.push_str(&format!(
                            "\"{wn}\" => {{ let obj = match inner {{ \
                             serde::Value::Object(o) => o, \
                             _ => return Err(serde::Error::custom(\
                             \"expected object for {name}::{vn}\")) }}; \
                             Ok({name}::{vn} {{ {inits} }}) }}\n",
                            inits = inits.join(", ")
                        ));
                    }
                }
            }
            let mut s = String::from("match v {\n");
            s.push_str("serde::Value::String(s) => match s.as_str() {\n");
            s.push_str(&unit_arms);
            s.push_str(&format!(
                "other => Err(serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n"
            ));
            s.push_str("},\n");
            s.push_str("serde::Value::Object(m) if m.len() == 1 => {\n");
            s.push_str("let (tag, inner) = m.iter().next().expect(\"len checked\");\n");
            s.push_str("match tag.as_str() {\n");
            s.push_str(&tag_arms);
            s.push_str(&format!(
                "other => Err(serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n"
            ));
            s.push_str("}\n}\n");
            s.push_str(&format!(
                "_ => Err(serde::Error::custom(\
                 \"expected string or single-key object for {name}\")),\n"
            ));
            s.push('}');
            s
        }
    };
    format!(
        "impl{ig} serde::Deserialize for {name}{tg} {{ \
         fn deserialize(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> \
         {{ {body} }} }}"
    )
}

/// Derive `serde::Serialize` (vendored shim semantics).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(&lex(input));
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (vendored shim semantics).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(&lex(input));
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}
