//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! Provides cheaply clonable immutable buffers ([`Bytes`], `Arc<[u8]>`
//! backed) and a growable builder ([`BytesMut`]) with the subset of the
//! upstream API this workspace touches. No zero-copy slicing of shared
//! regions — `slice` copies — which is adequate for the small protocol
//! frames used here.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(Vec::new()),
        }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data.to_vec()),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copying sub-range extraction.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.data[range])
    }

    /// Copy out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

/// Growable byte builder that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Append raw bytes.
    pub fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Discard contents, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Convert into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::BytesMut;

    #[test]
    fn build_freeze_share() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(b"hel");
        b.put_u8(b'l');
        b.put_slice(b"o");
        let frozen = b.freeze();
        let clone = frozen.clone();
        assert_eq!(&*frozen, b"hello");
        assert_eq!(clone.slice(1..3).to_vec(), b"el".to_vec());
    }
}
