//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, covering the two facilities this workspace uses:
//!
//! * [`thread::scope`] — scoped spawning with the crossbeam 0.8 call shape
//!   (`scope(|s| { s.spawn(|_| ...) }).expect(...)`), implemented over
//!   `std::thread::scope`. The closure argument passed to spawned threads is
//!   a zero-sized placeholder, so nested spawning through it is not
//!   supported (the workspace never nests).
//! * [`channel`] — MPMC bounded/unbounded channels built on
//!   `Mutex<VecDeque>` + `Condvar`, with crossbeam's disconnect semantics:
//!   `recv` drains remaining items after all senders drop, `send` fails once
//!   all receivers drop.

#![forbid(unsafe_code)]

/// Scoped thread spawning (crossbeam 0.8 surface).
pub mod thread {
    use std::any::Any;

    /// Placeholder passed to spawned closures where crossbeam passes the
    /// scope itself; supports the idiomatic `|_|` call sites only.
    pub struct SpawnArg {
        _private: (),
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result or panic
        /// payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// A scope in which borrowing threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread that may borrow from the enclosing scope. The
        /// closure receives a placeholder [`SpawnArg`], not the scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&SpawnArg) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner.spawn(move || f(&SpawnArg { _private: () }));
            ScopedJoinHandle { inner }
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. Unlike crossbeam, an unjoined panicking thread propagates
    /// its panic here instead of surfacing through the `Result` — call
    /// sites that `join().expect(...)` every handle behave identically.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// MPMC channels with crossbeam 0.8 semantics.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        items: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; clonable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The channel is disconnected; the unsent value is returned.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The channel is empty and all senders have disconnected.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Non-blocking receive failure.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Empty and no senders remain.
        Disconnected,
    }

    /// Timed receive failure.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with nothing queued.
        Timeout,
        /// Empty and no senders remain.
        Disconnected,
    }

    /// Create a bounded channel; `send` blocks while `cap` items are
    /// queued. A capacity of 0 is treated as 1 (no rendezvous support).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap.max(1)))
    }

    /// Create an unbounded channel; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                items: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Block until the value is queued or every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match st.cap {
                    Some(cap) if st.items.len() >= cap => {
                        st = self.shared.not_full.wait(st).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            st.items.push_back(value);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of queued items (racy snapshot).
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .items
                .len()
        }

        /// Whether the queue is empty (racy snapshot).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Block until an item arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(item) = st.items.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(item) = st.items.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .expect("channel poisoned");
                st = guard;
            }
        }

        /// Number of queued items (racy snapshot).
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .items
                .len()
        }

        /// Whether the queue is empty (racy snapshot).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// See [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = self.shared.state.lock().expect("channel poisoned");
                st.senders -= 1;
                st.senders
            };
            if remaining == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = self.shared.state.lock().expect("channel poisoned");
                st.receivers -= 1;
                st.receivers
            };
            if remaining == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use super::thread as cb_thread;
    use std::time::Duration;

    #[test]
    fn scope_joins_borrowing_threads() {
        let data = [1u64, 2, 3, 4];
        let total = cb_thread::scope(|scope| {
            let mid = data.len() / 2;
            let (a, b) = data.split_at(mid);
            let ha = scope.spawn(move |_| a.iter().sum::<u64>());
            let hb = scope.spawn(move |_| b.iter().sum::<u64>());
            ha.join().expect("left half") + hb.join().expect("right half")
        })
        .expect("thread scope failed");
        assert_eq!(total, 10);
    }

    #[test]
    fn channel_drains_after_sender_drop() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let handle = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a slot frees
            "sent"
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(handle.join().unwrap(), "sent");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn mpmc_fan_in_fan_out() {
        let (tx, rx) = channel::bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..25 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let got: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(got, 100);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = channel::unbounded::<u32>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Timeout);
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
    }
}
