//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Works over the vendored `serde` shim's [`Value`] data model: a strict
//! recursive-descent JSON parser (`\uXXXX` escapes, surrogate pairs,
//! integer fidelity) plus compact and pretty writers. Non-finite floats
//! serialize to `null`, matching upstream behaviour.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::{Map, Number, Value};

/// Parse or write error with byte-offset context on the parse side.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` compactly into a caller-owned `String` (cleared
/// first) — the buffer-reusing analogue of [`to_string`] for hot encode
/// paths that serialize in a loop.
pub fn to_string_into<T: serde::Serialize + ?Sized>(
    value: &T,
    out: &mut String,
) -> Result<(), Error> {
    out.clear();
    write_value(&value.serialize(), out, None, 0);
    Ok(())
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::deserialize(&value).map_err(Error::from)
}

/// Deserialize a `T` from JSON bytes (must be UTF-8).
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Rebuild a `T` from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value).map_err(Error::from)
}

/// Parse a JSON document into a [`Value`], requiring it to span the whole
/// input (trailing whitespace allowed).
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

// ---- writer -----------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) if f.is_finite() => {
            // Emit a decimal point for integral floats so the value
            // round-trips as a float (matches upstream "1.0" output).
            if f.fract() == 0.0 && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected `{`")?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "42", "-17", "1.5", "\"hi\""] {
            let v = parse_value(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":true}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value(r#""é😀""#).unwrap();
        assert_eq!(v, Value::String("é😀".to_string()));
    }

    #[test]
    fn integral_floats_keep_decimal_point() {
        let v = Value::Number(Number::F(3.0));
        assert_eq!(to_string(&v).unwrap(), "3.0");
        let back = parse_value("3.0").unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_indents() {
        let v = parse_value(r#"{"a":1}"#).unwrap();
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(parse_value("\"unterminated").is_err());
    }

    #[test]
    fn typed_round_trip_via_derived_traits() {
        let pairs: Vec<(u32, String)> = vec![(1, "a".into()), (2, "b".into())];
        let text = to_string(&pairs).unwrap();
        let back: Vec<(u32, String)> = from_str(&text).unwrap();
        assert_eq!(back, pairs);
    }
}
