//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The build environment resolves no external crates, so the workspace
//! vendors a minimal serialization framework with the same *surface* the
//! code uses — `#[derive(Serialize, Deserialize)]`, `#[serde(skip)]`,
//! `#[serde(transparent)]`, `#[serde(with = "...")]` — but a radically
//! simpler data model: serialization goes through one concrete JSON value
//! tree ([`Value`]) instead of serde's zero-copy visitor machinery.
//!
//! ```text
//! real serde:   T --Serializer visitor--> any format
//! this shim:    T --Serialize::serialize--> Value --serde_json--> text
//! ```
//!
//! The derive macros (re-exported from `serde_derive`) generate impls of
//! the two traits below and follow serde's externally-tagged enum and
//! newtype-struct conventions, so the JSON produced is shape-compatible
//! with what the real crate would emit for this workspace's types.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// JSON object map (ordered, for deterministic output).
pub type Map = BTreeMap<String, Value>;

/// A JSON value tree — the single intermediate data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object.
    Object(Map),
}

/// JSON number with integer fidelity (u64/i64 preserved exactly).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// Value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// Value as `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// Value as `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            _ => None,
        }
    }
}

impl Value {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// `&str` view of a JSON string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Numeric view as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization / deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// Attach the field name being deserialized to the message.
    pub fn field(self, name: &str) -> Self {
        Error(format!("field `{name}`: {}", self.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Produce the JSON value tree for `self`.
    fn serialize(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a JSON value tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---- identity ---------------------------------------------------------

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

// ---- primitives -------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom(concat!(stringify!($t), " overflow")))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Number(Number::U(i as u64))
                } else {
                    Value::Number(Number::I(i))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom(concat!(stringify!($t), " overflow")))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(f64::deserialize(v)? as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// ---- containers -------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of {N} elements, got {n}")))
    }
}

macro_rules! tuple_impls {
    ($(($($t:ident . $idx:tt),+ ; $len:literal))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                if a.len() != $len {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, got {} elements", $len, a.len()
                    )));
                }
                Ok(($($t::deserialize(&a[$idx])?,)+))
            }
        }
    )+};
}
tuple_impls! {
    (A.0 ; 1)
    (A.0, B.1 ; 2)
    (A.0, B.1, C.2 ; 3)
    (A.0, B.1, C.2, D.3 ; 4)
}

/// Render a map key: JSON object keys must be strings, so string keys
/// pass through and integer-like keys are stringified (matching
/// `serde_json`'s integer-key behaviour).
pub fn key_to_string(v: &Value) -> Result<String, Error> {
    match v {
        Value::String(s) => Ok(s.clone()),
        Value::Number(n) => Ok(match *n {
            Number::U(u) => u.to_string(),
            Number::I(i) => i.to_string(),
            Number::F(f) => f.to_string(),
        }),
        _ => Err(Error::custom(
            "map key must serialize to a string or number",
        )),
    }
}

/// Rebuild a key type from its string form (string first, then number).
pub fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize(&Value::String(s.to_owned())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize(&Value::Number(Number::U(u))) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize(&Value::Number(Number::I(i))) {
            return Ok(k);
        }
    }
    if let Ok(f) = s.parse::<f64>() {
        if let Ok(k) = K::deserialize(&Value::Number(Number::F(f))) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!(
        "cannot rebuild map key from \"{s}\""
    )))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            let key = key_to_string(&k.serialize()).expect("unstringifiable map key");
            m.insert(key, v.serialize());
        }
        Value::Object(m)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        let mut out = BTreeMap::new();
        for (k, val) in obj {
            out.insert(key_from_string::<K>(k)?, V::deserialize(val)?);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::deserialize(v)?.into_iter().collect())
    }
}

/// Compatibility modules mirroring the paths `use serde::de::...` /
/// `use serde::ser::...` resolve to.
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// See [`crate::ser`].
pub mod de {
    pub use crate::{Deserialize, Error};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);
        let o: Option<String> = None;
        assert_eq!(Option::<String>::deserialize(&o.serialize()).unwrap(), None);
        let t = (3u32, "x".to_string());
        assert_eq!(<(u32, String)>::deserialize(&t.serialize()).unwrap(), t);
        let a = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::deserialize(&a.serialize()).unwrap(), a);
    }

    #[test]
    fn integer_keyed_map_round_trips() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "c".to_string());
        m.insert(1u32, "a".to_string());
        let back = BTreeMap::<u32, String>::deserialize(&m.serialize()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn u64_precision_preserved() {
        let big = u64::MAX - 1;
        assert_eq!(u64::deserialize(&big.serialize()).unwrap(), big);
    }
}
