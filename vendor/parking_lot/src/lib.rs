//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Thin wrappers over `std::sync` locks exposing parking_lot's poison-free
//! API: `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A panic while holding a lock does not poison it here — the
//! wrapper recovers the inner guard — matching parking_lot semantics for
//! the operations this workspace performs.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Guard types are std's own; only the acquisition API differs.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// See [`MutexGuard`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// See [`MutexGuard`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Poison-free mutual exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Block until shared read access is held.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until exclusive write access is held.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Shared access only if no writer holds or awaits the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access only if the lock is free right now.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_readers_share() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // Not poisoned: the value is still reachable.
        assert_eq!(*m.lock(), 5);
    }
}
